//! The translation layer (§4): device operations → protocol commands.
//!
//! Translation is mostly a one-to-one mapping (a fill becomes `SFILL`,
//! an image upload becomes `RAW`, …). The value of the layer is in the
//! cases that are *not* one-to-one:
//!
//! - **Offscreen drawing awareness** (§4.1): a command queue is kept
//!   per offscreen pixmap. Drawing to a pixmap queues the translated
//!   command instead of sending anything. Copying pixmap→pixmap copies
//!   the queued commands (translated to the new location — the
//!   commands cannot be *moved*, since a pixmap may be copy-source
//!   many times). Copying pixmap→screen *executes* the queue: the
//!   stored commands are emitted, preserving the original drawing
//!   semantics instead of falling back to raw pixels.
//! - **Raw fallback**: anything that cannot be expressed exactly
//!   (phase-broken tile translations, clipped bitmaps, disabled
//!   offscreen tracking) is covered by `RAW` data read from the
//!   drawable's post-operation contents — correct by construction.
//!
//! The translator is pure: it returns the onscreen protocol commands
//! each operation produces, and the server façade decides scheduling.

use std::collections::HashMap;

use thinc_display::drawable::{DrawableId, DrawableStore};
use thinc_protocol::commands::{DisplayCommand, RawEncoding, Tile};
use thinc_raster::{Color, Framebuffer, Rect, Region};
use thinc_telemetry::{CommandKind, TranslatorMetrics};

use crate::queue::CommandQueue;

/// Translation statistics (exposed for tests and ablation reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslatorStats {
    /// Commands produced for the screen, by protocol type.
    pub raw: u64,
    /// `COPY` commands produced.
    pub copy: u64,
    /// `SFILL` commands produced.
    pub sfill: u64,
    /// `PFILL` commands produced.
    pub pfill: u64,
    /// `BITMAP` commands produced.
    pub bitmap: u64,
    /// Bytes of RAW pixel data produced by fallback paths.
    pub raw_fallback_bytes: u64,
    /// Operations queued offscreen instead of sent.
    pub offscreen_queued: u64,
    /// Offscreen queue executions (pixmap → screen copies).
    pub queue_executions: u64,
}

/// The THINC translation layer.
#[derive(Debug, Default)]
pub struct Translator {
    /// Per-pixmap command queues (the offscreen awareness state).
    offscreen: HashMap<DrawableId, CommandQueue>,
    /// When `false`, offscreen drawing is ignored and copies to the
    /// screen fall back to raw pixels — the behaviour of thin clients
    /// without THINC's optimization (ablation switch).
    offscreen_awareness: bool,
    stats: TranslatorStats,
    metrics: TranslatorMetrics,
}

impl Translator {
    /// A translator with offscreen awareness enabled (the THINC
    /// design point).
    pub fn new() -> Self {
        Self {
            offscreen_awareness: true,
            ..Self::default()
        }
    }

    /// A translator with offscreen awareness disabled (ablation:
    /// "thin-client systems typically ignore all offscreen commands").
    pub fn without_offscreen_awareness() -> Self {
        Self {
            offscreen_awareness: false,
            ..Self::default()
        }
    }

    /// Whether offscreen awareness is active.
    pub fn offscreen_awareness(&self) -> bool {
        self.offscreen_awareness
    }

    /// Translation statistics.
    pub fn stats(&self) -> TranslatorStats {
        self.stats
    }

    /// Translation-layer telemetry (per-kind translated counts, raw
    /// fallbacks, offscreen queue activity).
    pub fn metrics(&self) -> &TranslatorMetrics {
        &self.metrics
    }

    /// Pending commands in a pixmap's queue (tests/inspection).
    pub fn offscreen_queue_len(&self, id: DrawableId) -> usize {
        self.offscreen.get(&id).map(|q| q.len()).unwrap_or(0)
    }

    fn count(&mut self, cmd: &DisplayCommand) {
        let kind = match cmd {
            DisplayCommand::Raw { .. } => {
                self.stats.raw += 1;
                CommandKind::Raw
            }
            DisplayCommand::Copy { .. } => {
                self.stats.copy += 1;
                CommandKind::Copy
            }
            DisplayCommand::Sfill { .. } => {
                self.stats.sfill += 1;
                CommandKind::Sfill
            }
            DisplayCommand::Pfill { .. } => {
                self.stats.pfill += 1;
                CommandKind::Pfill
            }
            DisplayCommand::Bitmap { .. } => {
                self.stats.bitmap += 1;
                CommandKind::Bitmap
            }
        };
        self.metrics.record_translated(kind);
    }

    fn count_all(&mut self, cmds: &[DisplayCommand]) {
        for c in cmds {
            self.count(c);
        }
    }

    /// Pixmap creation: start a queue seeded with the zero-fill that
    /// matches the pixmap's initial contents, so queue coverage is
    /// total from birth.
    pub fn create_pixmap(&mut self, id: DrawableId, w: u32, h: u32) {
        if !self.offscreen_awareness {
            return;
        }
        let mut q = CommandQueue::new();
        q.push(
            DisplayCommand::Sfill {
                rect: Rect::new(0, 0, w, h),
                color: Color::TRANSPARENT,
            },
            false,
        );
        self.offscreen.insert(id, q);
    }

    /// Pixmap destruction: drop its queue.
    pub fn free_pixmap(&mut self, id: DrawableId) {
        self.offscreen.remove(&id);
    }

    /// Routes a translated command: to the wire (screen target) or to
    /// the pixmap's queue (offscreen target, §4.1).
    fn route(
        &mut self,
        store: &DrawableStore,
        target: DrawableId,
        cmd: DisplayCommand,
    ) -> Vec<DisplayCommand> {
        if target.is_screen() {
            self.count(&cmd);
            return vec![cmd];
        }
        if self.offscreen_awareness {
            // Clip to the pixmap: the queue must never claim output
            // beyond the drawable's bounds, or a later extraction
            // would replay ink the rasterizer clipped away.
            let bounds = store
                .get(target)
                .map(|fb| fb.bounds())
                .unwrap_or_default();
            if let Some(clipped) = crate::queue::clip_command(&cmd, &bounds) {
                if let Some(q) = self.offscreen.get_mut(&target) {
                    q.push(clipped, false);
                    self.stats.offscreen_queued += 1;
                    self.metrics.record_offscreen_queued();
                }
            } else {
                // Unclippable and partially out of bounds: snapshot
                // the in-bounds footprint from the (already drawn)
                // pixmap as RAW — exact by construction.
                let r = cmd.dest_rect().intersection(&bounds);
                if let Some(raw) = self.raw_from(store, target, &r) {
                    if let Some(q) = self.offscreen.get_mut(&target) {
                        q.push(raw, false);
                        self.stats.offscreen_queued += 1;
                    self.metrics.record_offscreen_queued();
                    }
                }
            }
        }
        // Offscreen drawing sends nothing.
        Vec::new()
    }

    /// Translates a solid fill.
    pub fn solid_fill(
        &mut self,
        store: &DrawableStore,
        target: DrawableId,
        rect: Rect,
        color: Color,
    ) -> Vec<DisplayCommand> {
        self.route(store, target, DisplayCommand::Sfill { rect, color })
    }

    /// Translates a pattern (tile) fill.
    pub fn pattern_fill(
        &mut self,
        store: &DrawableStore,
        target: DrawableId,
        rect: Rect,
        tile: &Framebuffer,
    ) -> Vec<DisplayCommand> {
        let (_, pixels) = tile.get_raw(&tile.bounds());
        let cmd = DisplayCommand::Pfill {
            rect,
            tile: Tile {
                width: tile.width(),
                height: tile.height(),
                pixels,
            },
        };
        self.route(store, target, cmd)
    }

    /// Translates a stipple fill.
    pub fn stipple_fill(
        &mut self,
        store: &DrawableStore,
        target: DrawableId,
        rect: Rect,
        bits: &[u8],
        fg: Color,
        bg: Option<Color>,
    ) -> Vec<DisplayCommand> {
        let cmd = DisplayCommand::Bitmap {
            rect,
            bits: bits.to_vec(),
            fg,
            bg,
        };
        self.route(store, target, cmd)
    }

    /// Translates an image upload.
    pub fn put_image(
        &mut self,
        store: &DrawableStore,
        target: DrawableId,
        rect: Rect,
        data: &[u8],
    ) -> Vec<DisplayCommand> {
        let cmd = DisplayCommand::Raw {
            rect,
            encoding: RawEncoding::None,
            data: data.to_vec().into(),
        };
        self.route(store, target, cmd)
    }

    /// Translates a compositing operation. The server has already
    /// rendered the Porter–Duff blend in software (the §3 fallback for
    /// clients without compositing hardware), so the result travels as
    /// RAW data of the blended region — onscreen directly, offscreen
    /// into the pixmap's queue.
    pub fn composite(
        &mut self,
        store: &DrawableStore,
        target: DrawableId,
        rect: Rect,
    ) -> Vec<DisplayCommand> {
        if target.is_screen() {
            let out: Vec<_> = self.raw_from(store, target, &rect).into_iter().collect();
            self.count_all(&out);
            return out;
        }
        if self.offscreen_awareness {
            let bounds = store.get(target).map(|f| f.bounds()).unwrap_or_default();
            let r = rect.intersection(&bounds);
            if let Some(raw) = self.raw_from(store, target, &r) {
                if let Some(q) = self.offscreen.get_mut(&target) {
                    q.push(raw, false);
                    self.stats.offscreen_queued += 1;
                    self.metrics.record_offscreen_queued();
                }
            }
        }
        Vec::new()
    }

    /// Reads `rect` of drawable `d` as a RAW command (the fallback
    /// path; reads post-operation contents, so it is always correct).
    fn raw_from(&mut self, store: &DrawableStore, d: DrawableId, rect: &Rect) -> Option<DisplayCommand> {
        let fb = store.get(d)?;
        let (clip, data) = fb.get_raw(rect);
        if clip.is_empty() {
            return None;
        }
        self.stats.raw_fallback_bytes += data.len() as u64;
        self.metrics.record_raw_fallback(data.len() as u64);
        Some(DisplayCommand::Raw {
            rect: clip,
            encoding: RawEncoding::None,
            data: data.into(),
        })
    }

    /// Translates a copy between drawables — the interesting case.
    pub fn copy_area(
        &mut self,
        store: &DrawableStore,
        src: DrawableId,
        dst: DrawableId,
        src_rect: Rect,
        dst_x: i32,
        dst_y: i32,
    ) -> Vec<DisplayCommand> {
        let dx = dst_x - src_rect.x;
        let dy = dst_y - src_rect.y;
        match (src.is_screen(), dst.is_screen()) {
            (true, true) => {
                // Screen-to-screen: the protocol COPY — scrolling and
                // window movement without resending pixels.
                let cmd = DisplayCommand::Copy {
                    src_rect,
                    dst_x,
                    dst_y,
                };
                self.count(&cmd);
                vec![cmd]
            }
            (false, true) => {
                // Offscreen data goes onscreen: execute the queue.
                let dst_rect = Rect::new(dst_x, dst_y, src_rect.w, src_rect.h)
                    .intersection(&store.get(dst).map(|f| f.bounds()).unwrap_or_default());
                if dst_rect.is_empty() {
                    return Vec::new();
                }
                // Restrict the source to what lands onscreen.
                let eff_src = dst_rect.translated(-dx, -dy);
                if self.offscreen_awareness {
                    if let Some(q) = self.offscreen.get(&src) {
                        let (cmds, covered) = q.extract_region(&eff_src, dx, dy);
                        self.stats.queue_executions += 1;
                        self.metrics.record_queue_execution();
                        let mut out = cmds;
                        // Cover whatever the queue could not express
                        // with RAW from the (already-drawn) screen.
                        let mut uncovered = Region::from_rect(dst_rect);
                        uncovered.subtract(&covered);
                        for r in uncovered.rects().to_vec() {
                            if let Some(raw) = self.raw_from(store, dst, &r) {
                                out.push(raw);
                            }
                        }
                        self.count_all(&out);
                        return out;
                    }
                }
                // No tracking: raw pixels from the screen (what
                // "systems that ignore offscreen drawing" must do).
                let out: Vec<_> = self.raw_from(store, dst, &dst_rect).into_iter().collect();
                self.count_all(&out);
                out
            }
            (false, false) => {
                // Pixmap-to-pixmap: mirror the copy at the command
                // level ("copying the group of commands that draw on
                // the source region to the destination region's
                // queue").
                if !self.offscreen_awareness {
                    return Vec::new();
                }
                let Some(src_q) = self.offscreen.get(&src) else {
                    return Vec::new();
                };
                let (cmds, covered) = src_q.extract_region(&src_rect, dx, dy);
                let dst_rect = Rect::new(dst_x, dst_y, src_rect.w, src_rect.h);
                let mut uncovered = Region::from_rect(
                    dst_rect.intersection(&store.get(dst).map(|f| f.bounds()).unwrap_or_default()),
                );
                uncovered.subtract(&covered);
                let mut fallbacks = Vec::new();
                for r in uncovered.rects().to_vec() {
                    if let Some(raw) = self.raw_from(store, dst, &r) {
                        fallbacks.push(raw);
                    }
                }
                // Clip every copied command to the destination pixmap
                // before queuing (out-of-bounds remnants would replay
                // nonexistent ink on a later extraction).
                let dst_bounds = store.get(dst).map(|f| f.bounds()).unwrap_or_default();
                let mut to_queue = Vec::new();
                for c in cmds.into_iter().chain(fallbacks) {
                    if let Some(clipped) = crate::queue::clip_command(&c, &dst_bounds) {
                        to_queue.push(clipped);
                    } else {
                        let r = c.dest_rect().intersection(&dst_bounds);
                        if let Some(raw) = self.raw_from(store, dst, &r) {
                            to_queue.push(raw);
                        }
                    }
                }
                if let Some(dst_q) = self.offscreen.get_mut(&dst) {
                    for c in to_queue {
                        dst_q.push(c, false);
                        self.stats.offscreen_queued += 1;
                    self.metrics.record_offscreen_queued();
                    }
                }
                Vec::new()
            }
            (true, false) => {
                // Screen-to-pixmap: snapshot the pixels as RAW in the
                // pixmap's queue (semantics of the screen region are
                // client-side state, not queued commands).
                if !self.offscreen_awareness {
                    return Vec::new();
                }
                let dst_rect = Rect::new(dst_x, dst_y, src_rect.w, src_rect.h);
                if let Some(raw) = self.raw_from(store, dst, &dst_rect) {
                    if let Some(q) = self.offscreen.get_mut(&dst) {
                        q.push(raw, false);
                        self.stats.offscreen_queued += 1;
                    self.metrics.record_offscreen_queued();
                    }
                }
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_display::drawable::SCREEN;
    use thinc_raster::PixelFormat;

    /// Replays protocol commands into a framebuffer the way a THINC
    /// client would.
    fn replay(fb: &mut Framebuffer, cmds: &[DisplayCommand]) {
        for c in cmds {
            match c {
                DisplayCommand::Raw {
                    rect,
                    encoding: RawEncoding::None,
                    data,
                } => fb.put_raw(rect, data),
                DisplayCommand::Raw { .. } => panic!("unexpected compressed RAW in test"),
                DisplayCommand::Copy {
                    src_rect,
                    dst_x,
                    dst_y,
                } => fb.copy_rect(src_rect, *dst_x, *dst_y),
                DisplayCommand::Sfill { rect, color } => fb.fill_rect(rect, *color),
                DisplayCommand::Pfill { rect, tile } => {
                    let mut t = Framebuffer::new(tile.width, tile.height, fb.format());
                    t.put_raw(&Rect::new(0, 0, tile.width, tile.height), &tile.pixels);
                    fb.tile_rect(rect, &t);
                }
                DisplayCommand::Bitmap { rect, bits, fg, bg } => {
                    fb.bitmap_rect(rect, bits, *fg, *bg)
                }
            }
        }
    }

    fn store() -> DrawableStore {
        DrawableStore::new(64, 64, PixelFormat::Rgb888)
    }

    #[test]
    fn onscreen_fill_maps_one_to_one() {
        let mut t = Translator::new();
        let s = store();
        let cmds = t.solid_fill(&s, SCREEN, Rect::new(1, 2, 3, 4), Color::WHITE);
        assert_eq!(cmds.len(), 1);
        assert!(matches!(cmds[0], DisplayCommand::Sfill { .. }));
        assert_eq!(t.stats().sfill, 1);
    }

    #[test]
    fn offscreen_fill_queues_sends_nothing() {
        let mut t = Translator::new();
        let mut s = store();
        let pm = s.create_pixmap(16, 16);
        t.create_pixmap(pm, 16, 16);
        let cmds = t.solid_fill(&s, pm, Rect::new(0, 0, 8, 8), Color::WHITE);
        assert!(cmds.is_empty());
        assert!(t.offscreen_queue_len(pm) >= 1);
        assert_eq!(t.stats().offscreen_queued, 1);
    }

    #[test]
    fn offscreen_to_screen_executes_queue_with_semantics() {
        let mut t = Translator::new();
        let mut s = store();
        let pm = s.create_pixmap(16, 16);
        t.create_pixmap(pm, 16, 16);
        // Draw a fill and text-like stipple offscreen.
        s.get_mut(pm)
            .unwrap()
            .fill_rect(&Rect::new(0, 0, 16, 16), Color::rgb(1, 2, 3));
        t.solid_fill(&s, pm, Rect::new(0, 0, 16, 16), Color::rgb(1, 2, 3));
        // Rasterize the copy (as WindowServer would), then translate.
        let (_, data) = s.get(pm).unwrap().get_raw(&Rect::new(0, 0, 16, 16));
        s.screen_mut().put_raw(&Rect::new(10, 10, 16, 16), &data);
        let cmds = t.copy_area(&s, pm, SCREEN, Rect::new(0, 0, 16, 16), 10, 10);
        // Semantics preserved: an SFILL, not raw pixels.
        assert!(
            cmds.iter()
                .any(|c| matches!(c, DisplayCommand::Sfill { .. })),
            "{cmds:?}"
        );
        assert!(!cmds.iter().any(|c| matches!(c, DisplayCommand::Raw { .. })));
        // Client replay reproduces the screen.
        let mut client = Framebuffer::new(64, 64, PixelFormat::Rgb888);
        replay(&mut client, &cmds);
        assert_eq!(
            client.get_pixel(12, 12),
            s.screen().get_pixel(12, 12),
            "client must match server"
        );
    }

    #[test]
    fn disabled_awareness_falls_back_to_raw() {
        let mut t = Translator::without_offscreen_awareness();
        let mut s = store();
        let pm = s.create_pixmap(16, 16);
        t.create_pixmap(pm, 16, 16);
        t.solid_fill(&s, pm, Rect::new(0, 0, 16, 16), Color::WHITE);
        // Rasterize the copy result onscreen first.
        let (_, data) = s.get(pm).unwrap().get_raw(&Rect::new(0, 0, 16, 16));
        s.screen_mut().put_raw(&Rect::new(0, 0, 16, 16), &data);
        let cmds = t.copy_area(&s, pm, SCREEN, Rect::new(0, 0, 16, 16), 0, 0);
        assert_eq!(cmds.len(), 1);
        assert!(matches!(cmds[0], DisplayCommand::Raw { .. }));
        assert!(t.stats().raw_fallback_bytes > 0);
    }

    #[test]
    fn screen_to_screen_copy_is_protocol_copy() {
        let mut t = Translator::new();
        let s = store();
        let cmds = t.copy_area(&s, SCREEN, SCREEN, Rect::new(0, 0, 32, 32), 0, 16);
        assert_eq!(cmds.len(), 1);
        assert!(matches!(cmds[0], DisplayCommand::Copy { .. }));
    }

    #[test]
    fn pixmap_to_pixmap_copies_commands() {
        let mut t = Translator::new();
        let mut s = store();
        let a = s.create_pixmap(16, 16);
        let b = s.create_pixmap(32, 32);
        t.create_pixmap(a, 16, 16);
        t.create_pixmap(b, 32, 32);
        t.solid_fill(&s, a, Rect::new(0, 0, 16, 16), Color::rgb(5, 5, 5));
        let before = t.offscreen_queue_len(b);
        t.copy_area(&s, a, b, Rect::new(0, 0, 16, 16), 8, 8);
        assert!(t.offscreen_queue_len(b) > 0);
        let _ = before;
        // Source queue is intact (copy, not move — a pixmap can be
        // copy-source many times).
        assert!(t.offscreen_queue_len(a) >= 1);
        // Executing b onto the screen now reproduces the fill, moved.
        s.get_mut(b)
            .unwrap()
            .fill_rect(&Rect::new(8, 8, 16, 16), Color::rgb(5, 5, 5));
        let (_, data) = s.get(b).unwrap().get_raw(&Rect::new(0, 0, 32, 32));
        s.screen_mut().put_raw(&Rect::new(0, 0, 32, 32), &data);
        let cmds = t.copy_area(&s, b, SCREEN, Rect::new(0, 0, 32, 32), 0, 0);
        let mut client = Framebuffer::new(64, 64, PixelFormat::Rgb888);
        replay(&mut client, &cmds);
        assert_eq!(client.get_pixel(12, 12), Some(Color::rgb(5, 5, 5)));
    }

    #[test]
    fn hierarchy_of_offscreen_regions() {
        // Small pixmap -> big pixmap -> screen: semantics survive two
        // hops (the §4.1 hierarchy case).
        let mut t = Translator::new();
        let mut s = store();
        let small = s.create_pixmap(8, 8);
        let big = s.create_pixmap(32, 32);
        t.create_pixmap(small, 8, 8);
        t.create_pixmap(big, 32, 32);
        t.solid_fill(&s, small, Rect::new(0, 0, 8, 8), Color::rgb(7, 7, 7));
        s.get_mut(small)
            .unwrap()
            .fill_rect(&Rect::new(0, 0, 8, 8), Color::rgb(7, 7, 7));
        t.copy_area(&s, small, big, Rect::new(0, 0, 8, 8), 4, 4);
        // Mirror the raster copy.
        let (_, d) = s.get(small).unwrap().get_raw(&Rect::new(0, 0, 8, 8));
        s.get_mut(big).unwrap().put_raw(&Rect::new(4, 4, 8, 8), &d);
        // big -> screen.
        let (_, d2) = s.get(big).unwrap().get_raw(&Rect::new(0, 0, 32, 32));
        s.screen_mut().put_raw(&Rect::new(16, 16, 32, 32), &d2);
        let cmds = t.copy_area(&s, big, SCREEN, Rect::new(0, 0, 32, 32), 16, 16);
        assert!(cmds
            .iter()
            .any(|c| matches!(c, DisplayCommand::Sfill { .. })));
        let mut client = Framebuffer::new(64, 64, PixelFormat::Rgb888);
        replay(&mut client, &cmds);
        // Small landed at big(4,4), big landed at screen(16,16):
        // the fill shows at (20..28, 20..28).
        assert_eq!(client.get_pixel(24, 24), Some(Color::rgb(7, 7, 7)));
        assert_eq!(client.get_pixel(24, 24), s.screen().get_pixel(24, 24));
    }

    #[test]
    fn freeing_pixmap_drops_queue() {
        let mut t = Translator::new();
        let mut s = store();
        let pm = s.create_pixmap(8, 8);
        t.create_pixmap(pm, 8, 8);
        t.solid_fill(&s, pm, Rect::new(0, 0, 8, 8), Color::WHITE);
        t.free_pixmap(pm);
        assert_eq!(t.offscreen_queue_len(pm), 0);
    }

    #[test]
    fn put_image_becomes_raw() {
        let mut t = Translator::new();
        let s = store();
        let data = vec![9u8; 4 * 4 * 3];
        let cmds = t.put_image(&s, SCREEN, Rect::new(0, 0, 4, 4), &data);
        assert!(matches!(&cmds[0], DisplayCommand::Raw { data: d, .. } if d.len() == 48));
    }

    #[test]
    fn stipple_becomes_bitmap() {
        let mut t = Translator::new();
        let s = store();
        let cmds = t.stipple_fill(
            &s,
            SCREEN,
            Rect::new(0, 0, 8, 1),
            &[0xF0],
            Color::BLACK,
            None,
        );
        assert!(matches!(&cmds[0], DisplayCommand::Bitmap { .. }));
        assert_eq!(t.stats().bitmap, 1);
    }

    #[test]
    fn pattern_fill_carries_tile_pixels() {
        let mut t = Translator::new();
        let s = store();
        let mut tile = Framebuffer::new(4, 4, PixelFormat::Rgb888);
        tile.fill_rect(&Rect::new(0, 0, 4, 4), Color::rgb(3, 1, 4));
        let cmds = t.pattern_fill(&s, SCREEN, Rect::new(0, 0, 16, 16), &tile);
        if let DisplayCommand::Pfill { tile: tl, .. } = &cmds[0] {
            assert_eq!(tl.width, 4);
            assert_eq!(tl.pixels.len(), 48);
        } else {
            panic!("expected PFILL");
        }
    }
}
