//! The sharded session manager: broadcast fan-out at 1k+ clients.
//!
//! A single [`SharedSession`] already fans per-client flush work over
//! a worker pool, but every caller drives one monolithic
//! [`flush_all`] over one flat link array. At fan-out scale the
//! manager partitions clients into deterministic *shards* — stable
//! FNV hash of the client id, so a client's shard never depends on
//! who else is attached — each owning its members' links. A flush
//! *epoch* runs every shard through the simulated-time reactor
//! ([`EventQueue`]): all shards are scheduled at the epoch time and
//! popped in deterministic order, each flushing its members against
//! one shared encode-once [`WirePlane`] so payload equivalence
//! classes amortize across shard boundaries.
//!
//! Output is merged in client-id order and every client flushes at
//! every epoch time, so the byte streams are bit-identical for every
//! shard count and every worker count — the property the
//! `shard_determinism` suite and the perfgate fan-out macro pin down.
//!
//! [`flush_all`]: SharedSession::flush_all
//! [`EventQueue`]: thinc_net::EventQueue

use std::time::Instant;

use thinc_net::tcp::TcpPipe;
use thinc_net::time::SimTime;
use thinc_net::trace::PacketTrace;
use thinc_net::EventQueue;
use thinc_protocol::{fnv64, Message};
use thinc_telemetry::ShardMetrics;

use crate::plane::WirePlane;
use crate::session::{AuthError, ClientId, Credentials, SharedSession};

/// The stable shard for a client id under an `shards`-way partition:
/// FNV-1a of the id bytes, so the assignment depends on nothing but
/// the id itself. This is the partition [`ShardedManager`] uses;
/// external drivers (the chaos runner) call it to route
/// [`SharedSession::flush_subset`] shards identically.
pub fn shard_index(id: ClientId, shards: usize) -> usize {
    (fnv64(&id.0.to_le_bytes()) % shards.max(1) as u64) as usize
}

/// One shard: its member ids (ascending) and their links, in the
/// same order, plus the shard's telemetry.
#[derive(Debug)]
struct Shard {
    ids: Vec<ClientId>,
    links: Vec<(TcpPipe, PacketTrace)>,
    metrics: ShardMetrics,
}

impl Shard {
    fn new() -> Self {
        Self {
            ids: Vec::new(),
            links: Vec::new(),
            metrics: ShardMetrics::new(),
        }
    }
}

/// A [`SharedSession`] plus the shard partition of its clients and
/// their links. Drive drawing through [`session_mut`]
/// (Self::session_mut) (the session implements `VideoDriver`) and
/// delivery through [`flush_epoch`](Self::flush_epoch).
#[derive(Debug)]
pub struct ShardedManager {
    session: SharedSession,
    shards: Vec<Shard>,
    events: EventQueue<usize>,
}

impl ShardedManager {
    /// Wraps `session` with `shards` shard slots (clamped to ≥ 1).
    /// Clients already attached are partitioned by their stable
    /// hash, but their links must then be registered via
    /// [`adopt_link`](Self::adopt_link) in id order — attaching
    /// through [`attach`](Self::attach) is simpler.
    pub fn new(session: SharedSession, shards: usize) -> Self {
        let n = shards.max(1);
        let mut m = Self {
            session,
            shards: (0..n).map(|_| Shard::new()).collect(),
            events: EventQueue::new(),
        };
        for id in m.session.client_ids() {
            let s = m.shard_of(id);
            m.shards[s].ids.push(id);
        }
        m
    }

    /// Rebuilds a manager from a [`SharedSession::checkpoint`] image:
    /// the session is restored, then re-partitioned into `shards`
    /// slots. Redialing clients' fresh links must be registered via
    /// [`adopt_link`](Self::adopt_link) (in any order — the partition
    /// is a pure function of the ids) before the next flush epoch.
    pub fn restore(
        bytes: &[u8],
        shards: usize,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        Ok(Self::new(SharedSession::restore(bytes)?, shards))
    }

    /// The shard a client id maps to: a stable content hash of the
    /// id, independent of attach order and of every other client.
    pub fn shard_of(&self, id: ClientId) -> usize {
        shard_index(id, self.shards.len())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The wrapped session, for reads.
    pub fn session(&self) -> &SharedSession {
        &self.session
    }

    /// The wrapped session, for drawing (`VideoDriver`), resyncs,
    /// cache-miss routing, and the rest of the per-client API.
    pub fn session_mut(&mut self) -> &mut SharedSession {
        &mut self.session
    }

    /// Attaches a client and registers its link with the owning
    /// shard.
    pub fn attach(
        &mut self,
        creds: &Credentials,
        viewport_w: u32,
        viewport_h: u32,
        link: (TcpPipe, PacketTrace),
    ) -> Result<ClientId, AuthError> {
        let id = self.session.attach(creds, viewport_w, viewport_h)?;
        let s = self.shard_of(id);
        let shard = &mut self.shards[s];
        let pos = shard.ids.partition_point(|x| *x < id);
        shard.ids.insert(pos, id);
        shard.links.insert(pos, link);
        shard.metrics.set_clients(shard.ids.len());
        Ok(id)
    }

    /// Registers the link of an already-attached client (one whose
    /// attach predates this manager). Ids must be adopted before the
    /// next [`flush_epoch`](Self::flush_epoch).
    pub fn adopt_link(&mut self, id: ClientId, link: (TcpPipe, PacketTrace)) {
        let s = self.shard_of(id);
        let shard = &mut self.shards[s];
        let pos = shard.ids.partition_point(|x| *x < id);
        assert!(
            shard.ids.get(pos) == Some(&id),
            "adopt_link: client not in shard partition"
        );
        shard.links.insert(pos, link);
        shard.metrics.set_clients(shard.ids.len());
    }

    /// Detaches a client and drops its link. Returns the link for
    /// callers that want to inspect the pipe post-mortem.
    pub fn detach(&mut self, id: ClientId) -> Option<(TcpPipe, PacketTrace)> {
        let s = self.shard_of(id);
        let shard = &mut self.shards[s];
        let pos = shard.ids.iter().position(|x| *x == id)?;
        shard.ids.remove(pos);
        let link = shard.links.remove(pos);
        shard.metrics.set_clients(shard.ids.len());
        self.session.detach(id);
        Some(link)
    }

    /// Mutable access to one client's link (fault injection, drain
    /// checks).
    pub fn link_mut(&mut self, id: ClientId) -> Option<&mut (TcpPipe, PacketTrace)> {
        let s = self.shard_of(id);
        let shard = &mut self.shards[s];
        let pos = shard.ids.iter().position(|x| *x == id)?;
        Some(&mut shard.links[pos])
    }

    /// One shard's telemetry.
    pub fn shard_metrics(&self, shard: usize) -> &ShardMetrics {
        &self.shards[shard].metrics
    }

    /// Runs one flush epoch at `now`: every shard is scheduled on the
    /// virtual-time reactor at the epoch time, popped in
    /// deterministic (insertion) order, and flushed against one
    /// shared encode-once plane. The per-client streams come back
    /// merged in ascending client-id order — the same order, and the
    /// same bytes, no matter how many shards or workers are in play.
    pub fn flush_epoch(
        &mut self,
        now: SimTime,
    ) -> Vec<(ClientId, Vec<(SimTime, Message)>)> {
        self.session.set_time(now);
        let plane = WirePlane::new();
        for s in 0..self.shards.len() {
            self.events.schedule(now, s);
        }
        let mut merged: Vec<(ClientId, Vec<(SimTime, Message)>)> = Vec::new();
        while self.events.peek_time().is_some_and(|t| t <= now) {
            let (_, s) = self.events.pop().expect("peeked above");
            let shard = &mut self.shards[s];
            if shard.ids.is_empty() {
                continue;
            }
            let wall = Instant::now();
            let (out, counters) =
                self.session
                    .flush_subset(now, &shard.ids, &mut shard.links, Some(&plane));
            shard.metrics.record_epoch(
                wall.elapsed().as_micros() as u64,
                counters.shared_sends,
                counters.shared_bytes,
                counters.encodes,
                counters.encoded_bytes,
            );
            merged.extend(out);
        }
        merged.sort_by_key(|(id, _)| *id);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_net::tcp::TcpParams;
    use thinc_net::time::SimDuration;
    use thinc_raster::PixelFormat;

    fn link() -> (TcpPipe, PacketTrace) {
        (
            TcpPipe::new(TcpParams {
                bandwidth_bps: 10_000_000,
                rtt: SimDuration::from_millis(2),
                ..TcpParams::default()
            }),
            PacketTrace::new(),
        )
    }

    fn manager(clients: usize, shards: usize) -> ShardedManager {
        let mut session = SharedSession::new(64, 48, PixelFormat::Rgb888, "host");
        session.auth_mut().enable_sharing("pw");
        let mut m = ShardedManager::new(session, shards);
        m.attach(&Credentials::Owner { user: "host".into() }, 64, 48, link())
            .unwrap();
        for i in 1..clients {
            m.attach(
                &Credentials::Peer { user: format!("p{i}"), password: "pw".into() },
                64,
                48,
                link(),
            )
            .unwrap();
        }
        m
    }

    #[test]
    fn partition_is_stable_and_total() {
        let m = manager(16, 4);
        let mut seen = Vec::new();
        for s in &m.shards {
            assert_eq!(s.ids.len(), s.links.len());
            for id in &s.ids {
                assert_eq!(m.shard_of(*id), m.shards.iter().position(|x| std::ptr::eq(x, s)).unwrap());
                seen.push(*id);
            }
        }
        seen.sort();
        assert_eq!(seen, m.session().client_ids());
    }

    #[test]
    fn detach_removes_link_and_client() {
        let mut m = manager(8, 3);
        let victim = m.session().client_ids()[3];
        assert!(m.detach(victim).is_some());
        assert!(m.link_mut(victim).is_none());
        assert_eq!(m.session().client_count(), 7);
        assert!(m.detach(victim).is_none());
    }

    #[test]
    fn epoch_merges_in_id_order() {
        let mut m = manager(9, 4);
        let screen = thinc_raster::Framebuffer::new(64, 48, PixelFormat::Rgb888);
        m.session_mut().repay_refreshes(&screen);
        let out = m.flush_epoch(SimTime::ZERO);
        let ids: Vec<ClientId> = out.iter().map(|(id, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        assert_eq!(ids, m.session().client_ids());
        assert!(out.iter().all(|(_, msgs)| !msgs.is_empty()));
    }
}
