//! Crash-consistent session checkpointing (the failover layer).
//!
//! A checkpoint is a deterministic, self-validating serialization of
//! one [`SharedSession`](crate::session::SharedSession)'s full
//! delivery state: framebuffer tile digests, every client's pending
//! command queues (with their exact clipped visibility and scheduler
//! slots), refresh/overflow debt, degradation-ladder level, cache
//! ledger contents in LRU order, and sequence counters. A warm
//! standby that restores the checkpoint and receives redialing
//! clients converges byte-exact with a server that never crashed —
//! the delta between checkpoint-time and live screen content travels
//! as ordinary refresh debt, not a full-screen retransmit.
//!
//! ## Format
//!
//! ```text
//! [magic "THNC"][version u16 LE][payload_len u32 LE][crc32 u32 LE]
//! [payload: payload_len bytes]
//! ```
//!
//! The CRC32 (same polynomial as the wire's integrity frames) covers
//! the payload. [`open`] enforces the exact total length, so *any*
//! truncation, extension or bit flip of a valid checkpoint yields a
//! typed [`CheckpointError`] — never a panic, never a silently wrong
//! restore. The payload is a flat little-endian stream with no
//! self-describing structure; the version field gates layout changes.
//!
//! Like the chaos engine's JSON codec, everything here is hand-rolled
//! and dependency-free.

use thinc_protocol::hash::fnv64;
use thinc_raster::{Framebuffer, PixelFormat, Rect, Region};

/// Leading magic of every checkpoint image.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"THNC";

/// Layout version written by this build.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Header bytes before the payload: magic + version + length + CRC.
pub const CHECKPOINT_HEADER_LEN: usize = 4 + 2 + 4 + 4;

/// Why a checkpoint image could not be restored.
///
/// Every variant is a *typed* refusal: a corrupted, truncated or
/// stale checkpoint can never panic the server — the caller falls
/// back to a cold start (fresh session, full-screen refresh).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The image does not start with the `THNC` magic.
    BadMagic,
    /// The image was written by an unknown layout version.
    UnsupportedVersion(u16),
    /// The image is shorter (or longer) than its header promises, or
    /// a field ran off the end of the payload.
    Truncated,
    /// The payload bytes do not match the header checksum.
    CrcMismatch,
    /// The payload decoded structurally but carried an impossible
    /// value (bad enum tag, malformed embedded message, ...).
    Malformed(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a THINC checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::CrcMismatch => write!(f, "checkpoint payload checksum mismatch"),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Seals `payload` into a versioned, CRC-guarded checkpoint image.
pub fn seal(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(CHECKPOINT_HEADER_LEN + payload.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&thinc_protocol::wire::crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validates a checkpoint image and returns its payload slice.
///
/// Enforces magic, version, *exact* total length and the payload
/// CRC, in that order — so every way an image can be damaged maps to
/// one deterministic [`CheckpointError`].
pub fn open(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    if bytes.len() < CHECKPOINT_HEADER_LEN {
        // Too short to even read the magic/header: if what's there
        // doesn't match the magic, say so (more useful than
        // "truncated" for a file that was never a checkpoint).
        if !bytes.starts_with(&CHECKPOINT_MAGIC[..bytes.len().min(4)]) {
            return Err(CheckpointError::BadMagic);
        }
        return Err(CheckpointError::Truncated);
    }
    if bytes[..4] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let len = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
    if bytes.len() != CHECKPOINT_HEADER_LEN + len {
        return Err(CheckpointError::Truncated);
    }
    let crc = u32::from_le_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]);
    let payload = &bytes[CHECKPOINT_HEADER_LEN..];
    if thinc_protocol::wire::crc32(payload) != crc {
        return Err(CheckpointError::CrcMismatch);
    }
    Ok(payload)
}

/// FNV-1a 64 digest over a sorted cache key set — the value a client
/// folds into its resume token (over its store) and the server
/// recomputes over its restored ledger. Equal digests mean the
/// eviction mirror survived the failover; anything else cold-starts.
pub fn cache_digest(sorted_keys: &[u64]) -> u64 {
    thinc_protocol::cache::store_digest(sorted_keys)
}

/// Wire byte for a pixel format inside a checkpoint.
pub(crate) fn format_to_u8(f: PixelFormat) -> u8 {
    match f {
        PixelFormat::Indexed8 => 0,
        PixelFormat::Rgb565 => 1,
        PixelFormat::Rgb888 => 2,
        PixelFormat::Rgba8888 => 3,
    }
}

/// Inverse of [`format_to_u8`]; anything else is malformed.
pub(crate) fn format_from_u8(b: u8) -> Result<PixelFormat, CheckpointError> {
    Ok(match b {
        0 => PixelFormat::Indexed8,
        1 => PixelFormat::Rgb565,
        2 => PixelFormat::Rgb888,
        3 => PixelFormat::Rgba8888,
        _ => return Err(CheckpointError::Malformed("pixel format")),
    })
}

/// Tile edge (pixels) of the screen digest grid.
pub const DIGEST_TILE: u32 = 16;

/// Per-tile content digests of a framebuffer: the checkpoint's record
/// of *what the screen looked like* when it was taken. Comparing a
/// restored checkpoint's digests against the live screen yields the
/// exact region a warm-resumed client must be refreshed over — the
/// delta — instead of the whole screen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileDigests {
    /// Screen width the grid was computed over.
    pub width: u32,
    /// Screen height the grid was computed over.
    pub height: u32,
    /// Grid columns (`ceil(width / DIGEST_TILE)`).
    pub cols: u32,
    /// Grid rows (`ceil(height / DIGEST_TILE)`).
    pub rows: u32,
    /// Row-major FNV-1a 64 digests, one per tile.
    pub digests: Vec<u64>,
}

impl TileDigests {
    /// Digests every `DIGEST_TILE`-edge tile of `screen`.
    pub fn of(screen: &Framebuffer) -> Self {
        let width = screen.width();
        let height = screen.height();
        let cols = width.div_ceil(DIGEST_TILE).max(1);
        let rows = height.div_ceil(DIGEST_TILE).max(1);
        let mut digests = Vec::with_capacity((cols * rows) as usize);
        for ty in 0..rows {
            for tx in 0..cols {
                let rect = Rect::new(
                    (tx * DIGEST_TILE) as i32,
                    (ty * DIGEST_TILE) as i32,
                    DIGEST_TILE.min(width - tx * DIGEST_TILE),
                    DIGEST_TILE.min(height - ty * DIGEST_TILE),
                );
                let (_, data) = screen.get_raw(&rect);
                digests.push(fnv64(&data));
            }
        }
        Self { width, height, cols, rows, digests }
    }

    /// The session-space region whose tiles differ between `self`
    /// (the checkpoint-time screen) and `live` (the current screen).
    /// Mismatched geometry returns the whole live screen — the safe
    /// overapproximation.
    pub fn delta(&self, live: &TileDigests) -> Region {
        if self.width != live.width
            || self.height != live.height
            || self.digests.len() != live.digests.len()
        {
            return Region::from_rect(Rect::new(0, 0, live.width, live.height));
        }
        let mut delta = Region::new();
        for ty in 0..self.rows {
            for tx in 0..self.cols {
                let i = (ty * self.cols + tx) as usize;
                if self.digests[i] != live.digests[i] {
                    delta.union_rect(&Rect::new(
                        (tx * DIGEST_TILE) as i32,
                        (ty * DIGEST_TILE) as i32,
                        DIGEST_TILE.min(self.width - tx * DIGEST_TILE),
                        DIGEST_TILE.min(self.height - ty * DIGEST_TILE),
                    ));
                }
            }
        }
        delta
    }
}

/// How the server answered a [`Message::SessionResume`] token.
///
/// [`Message::SessionResume`]: thinc_protocol::Message::SessionResume
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeOutcome {
    /// The token matched checkpointed state: the client keeps its
    /// buffered queues and cache store, and is owed only the region
    /// that changed since the checkpoint was taken.
    Warm {
        /// Pixels of screen area enqueued as delta refresh (0 when
        /// the screen never changed — nothing retransmits at all).
        delta_area: u64,
    },
    /// The token could not be honored; the caller must run the
    /// ordinary cold reconnect path (fresh hello, cleared caches,
    /// full-view refresh). Never a panic, whatever the token said.
    Cold {
        /// Why the warm path was refused.
        reason: &'static str,
    },
}

/// Byte-stream writer for checkpoint payloads (little-endian, no
/// self-description — the layout *is* the schema).
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub(crate) fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub(crate) fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    pub(crate) fn opt_str(&mut self, v: Option<&str>) {
        match v {
            Some(s) => {
                self.bool(true);
                self.str(s);
            }
            None => self.bool(false),
        }
    }

    pub(crate) fn rect(&mut self, r: &Rect) {
        self.i32(r.x);
        self.i32(r.y);
        self.u32(r.w);
        self.u32(r.h);
    }

    pub(crate) fn region(&mut self, r: &Region) {
        // Written in *canonical* y-x banded form, which is a unique
        // function of the pixel set. A live region's internal banding
        // depends on the history of unions and subtractions that built
        // it, so serializing it verbatim would make
        // checkpoint(restore(c)) differ from c byte-for-byte even
        // though the state is identical — the failover-fidelity
        // invariant pins the canonical form instead.
        let rects = canonical_bands(r.rects());
        self.u32(rects.len() as u32);
        for rect in &rects {
            self.rect(rect);
        }
    }
}

/// The unique canonical y-x banding of a disjoint rectangle set:
/// bands split at every distinct y-edge, x-spans merged within each
/// band, vertically adjacent bands with identical x-spans coalesced.
/// Two regions covering the same pixels always produce the same list.
fn canonical_bands(rects: &[Rect]) -> Vec<Rect> {
    if rects.is_empty() {
        return Vec::new();
    }
    let mut ys: Vec<i32> = Vec::with_capacity(rects.len() * 2);
    for r in rects {
        ys.push(r.y);
        ys.push(r.bottom());
    }
    ys.sort_unstable();
    ys.dedup();
    // (y0, y1, merged x-intervals) per occupied band.
    type Band = (i32, i32, Vec<(i32, i32)>);
    let mut groups: Vec<Band> = Vec::new();
    for win in ys.windows(2) {
        let (y0, y1) = (win[0], win[1]);
        let mut xs: Vec<(i32, i32)> = rects
            .iter()
            .filter(|r| r.y < y1 && r.bottom() > y0)
            .map(|r| (r.x, r.right()))
            .collect();
        if xs.is_empty() {
            continue;
        }
        xs.sort_unstable();
        let mut merged: Vec<(i32, i32)> = Vec::new();
        for (a, b) in xs {
            match merged.last_mut() {
                Some(last) if a <= last.1 => last.1 = last.1.max(b),
                _ => merged.push((a, b)),
            }
        }
        match groups.last_mut() {
            Some(last) if last.1 == y0 && last.2 == merged => last.1 = y1,
            _ => groups.push((y0, y1, merged)),
        }
    }
    let mut out = Vec::new();
    for (y0, y1, xs) in groups {
        for (a, b) in xs {
            out.push(Rect::new(a, y0, (b - a) as u32, (y1 - y0) as u32));
        }
    }
    out
}

/// Byte-stream reader mirroring [`Writer`]; every read is
/// bounds-checked and fails with [`CheckpointError::Truncated`]
/// rather than panicking.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Whether every payload byte was consumed — restores check this
    /// so trailing garbage is detected even when the prefix parses.
    pub(crate) fn exhausted(&self) -> bool {
        self.pos == self.data.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.data.len() - self.pos < n {
            return Err(CheckpointError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Malformed("bool tag")),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn i32(&mut self) -> Result<i32, CheckpointError> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>, CheckpointError> {
        Ok(if self.bool()? { Some(self.u64()?) } else { None })
    }

    pub(crate) fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    pub(crate) fn str(&mut self) -> Result<String, CheckpointError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| CheckpointError::Malformed("utf-8 string"))
    }

    pub(crate) fn opt_str(&mut self) -> Result<Option<String>, CheckpointError> {
        Ok(if self.bool()? { Some(self.str()?) } else { None })
    }

    pub(crate) fn rect(&mut self) -> Result<Rect, CheckpointError> {
        let x = self.i32()?;
        let y = self.i32()?;
        let w = self.u32()?;
        let h = self.u32()?;
        Ok(Rect::new(x, y, w, h))
    }

    pub(crate) fn region(&mut self) -> Result<Region, CheckpointError> {
        let n = self.u32()? as usize;
        // A region over a screen holds at most a few thousand bands;
        // cap the claimed count so a corrupted length can't balloon
        // the allocation before the (inevitable) Truncated error.
        if n > self.data.len() / 4 {
            return Err(CheckpointError::Truncated);
        }
        let mut region = Region::new();
        for _ in 0..n {
            let r = self.rect()?;
            region.union_rect(&r);
        }
        Ok(region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_raster::PixelFormat;

    #[test]
    fn seal_open_roundtrip() {
        let payload = b"display state".to_vec();
        let image = seal(payload.clone());
        assert_eq!(open(&image).unwrap(), &payload[..]);
    }

    #[test]
    fn every_corruption_is_a_typed_error() {
        let image = seal(vec![1, 2, 3, 4, 5, 6, 7, 8]);
        // Truncation at every prefix length.
        for cut in 0..image.len() {
            assert!(open(&image[..cut]).is_err(), "prefix {cut} accepted");
        }
        // Extension.
        let mut long = image.clone();
        long.push(0);
        assert_eq!(open(&long), Err(CheckpointError::Truncated));
        // Every single-bit flip.
        for byte in 0..image.len() {
            for bit in 0..8 {
                let mut bad = image.clone();
                bad[byte] ^= 1 << bit;
                assert!(open(&bad).is_err(), "flip {byte}.{bit} accepted");
            }
        }
        // Wrong magic and version map to their own variants.
        let mut bad = image.clone();
        bad[0] = b'X';
        assert_eq!(open(&bad), Err(CheckpointError::BadMagic));
        let mut bad = image.clone();
        bad[4] = 0xFE;
        match open(&bad) {
            Err(CheckpointError::UnsupportedVersion(_)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn writer_reader_mirror() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.i32(-42);
        w.u64(u64::MAX - 1);
        w.f64(0.5);
        w.opt_u64(Some(99));
        w.opt_u64(None);
        w.str("owner");
        w.opt_str(Some("pw"));
        w.opt_str(None);
        w.rect(&Rect::new(-1, 2, 3, 4));
        let mut region = Region::new();
        region.union_rect(&Rect::new(0, 0, 10, 10));
        region.union_rect(&Rect::new(20, 20, 5, 5));
        w.region(&region);
        let buf = w.into_inner();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), 0.5);
        assert_eq!(r.opt_u64().unwrap(), Some(99));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.str().unwrap(), "owner");
        assert_eq!(r.opt_str().unwrap(), Some("pw".into()));
        assert_eq!(r.opt_str().unwrap(), None);
        assert_eq!(r.rect().unwrap(), Rect::new(-1, 2, 3, 4));
        assert_eq!(r.region().unwrap(), region);
        assert!(r.exhausted());
        assert_eq!(r.u8(), Err(CheckpointError::Truncated));
    }

    #[test]
    fn tile_digests_localize_the_delta() {
        let mut fb = Framebuffer::new(64, 48, PixelFormat::Rgb888);
        let before = TileDigests::of(&fb);
        assert!(before.delta(&before).is_empty(), "same screen, no delta");
        fb.fill_rect(&Rect::new(20, 20, 4, 4), thinc_raster::Color::rgb(9, 9, 9));
        let after = TileDigests::of(&fb);
        let delta = before.delta(&after);
        assert!(!delta.is_empty());
        assert!(delta.contains_rect(&Rect::new(20, 20, 4, 4)));
        // The change touched one 16x16 tile; the delta must not grow
        // past the tiles it actually dirtied.
        assert!(delta.area() <= (2 * DIGEST_TILE * DIGEST_TILE) as u64);
        // Mismatched geometry overapproximates to the full screen.
        let small = TileDigests::of(&Framebuffer::new(32, 32, PixelFormat::Rgb888));
        assert_eq!(
            small.delta(&after).bounds(),
            Rect::new(0, 0, 64, 48)
        );
    }

    #[test]
    fn cache_digest_is_order_and_content_sensitive() {
        assert_eq!(cache_digest(&[]), cache_digest(&[]));
        assert_eq!(cache_digest(&[1, 2, 3]), cache_digest(&[1, 2, 3]));
        assert_ne!(cache_digest(&[1, 2, 3]), cache_digest(&[1, 2, 4]));
        assert_ne!(cache_digest(&[1, 2]), cache_digest(&[1, 2, 3]));
    }
}
