//! Session management: authentication and multi-client screen
//! sharing (§7).
//!
//! "Our authentication model requires the user to have a valid
//! account on the server system and to be the owner of the session
//! she is connecting to. To support multiple users collaborating in a
//! screen-sharing session, the authentication model is extended to
//! allow host users to specify a session password that is then used
//! by peers connecting to the shared session."
//!
//! [`SharedSession`] multiplexes one display over any number of
//! clients: operations are translated once, and the resulting
//! commands fan out to a per-client buffer with per-client viewport
//! scaling — so a PDA peer can watch a desktop host's session.
//!
//! Per-client work (command scaling, buffering, flush-time RAW
//! compression) is embarrassingly parallel: every client owns its
//! delivery state. [`SharedSession::with_workers`] fans that work out
//! over [`crate::parallel::for_each_mut`] scoped threads; results are
//! merged in client-id order, so output is bit-identical for every
//! worker count.

use thinc_display::drawable::{DrawableId, DrawableStore};
use thinc_display::driver::VideoDriver;
use thinc_net::tcp::TcpPipe;
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::PacketTrace;
use thinc_protocol::commands::DisplayCommand;
use thinc_protocol::message::Message;
use thinc_raster::{Color, Framebuffer, PixelFormat, Rect, Region, YuvFrame};

use crate::buffer::ClientBuffer;
use crate::checkpoint::{
    cache_digest, format_from_u8, format_to_u8, CheckpointError, Reader, ResumeOutcome,
    TileDigests, Writer,
};
use crate::degradation::{DegradationConfig, DegradationController, DegradationLevel, EpochSignals};
use crate::liveness::{LivenessConfig, LivenessTracker, LivenessVerdict};
use crate::plane::{PlaneCounters, WirePlane};
use crate::scaling::ScalePolicy;
use crate::translator::Translator;
use crate::video::VideoStreamManager;

/// Credentials presented by a connecting client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Credentials {
    /// The session owner, authenticated by the host system (the
    /// prototype uses PAM; here, an account registry).
    Owner {
        /// Account name.
        user: String,
    },
    /// A collaborating peer presenting the session password.
    Peer {
        /// Display name of the peer.
        user: String,
        /// The shared-session password.
        password: String,
    },
}

/// Why a connection was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// The claimed owner does not own this session.
    NotOwner,
    /// Peer connections are not enabled (no session password set).
    SharingDisabled,
    /// The session password did not match.
    BadPassword,
}

/// The session's authentication policy.
#[derive(Debug, Clone)]
pub struct SessionAuth {
    owner: String,
    session_password: Option<String>,
}

impl SessionAuth {
    /// A session owned by `owner`, with sharing disabled.
    pub fn new(owner: &str) -> Self {
        Self {
            owner: owner.to_string(),
            session_password: None,
        }
    }

    /// Enables screen sharing with the given session password.
    pub fn enable_sharing(&mut self, password: &str) {
        self.session_password = Some(password.to_string());
    }

    /// Disables peer connections.
    pub fn disable_sharing(&mut self) {
        self.session_password = None;
    }

    /// Validates credentials.
    pub fn authenticate(&self, creds: &Credentials) -> Result<(), AuthError> {
        match creds {
            Credentials::Owner { user } => {
                if user == &self.owner {
                    Ok(())
                } else {
                    Err(AuthError::NotOwner)
                }
            }
            Credentials::Peer { password, .. } => match &self.session_password {
                None => Err(AuthError::SharingDisabled),
                Some(expected) if expected == password => Ok(()),
                Some(_) => Err(AuthError::BadPassword),
            },
        }
    }
}

/// Identifier of an attached client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u32);

/// Per-client timestamped message streams produced by a flush round,
/// in client-id order — the return shape of
/// [`SharedSession::flush_all`] and [`SharedSession::flush_subset`].
pub type FlushOutput = Vec<(ClientId, Vec<(SimTime, Message)>)>;

/// Per-client delivery state.
struct ClientState {
    user: String,
    buffer: ClientBuffer,
    scale: ScalePolicy,
    video: VideoStreamManager,
    /// Audio/video messages awaiting this client's next flush.
    pending_av: Vec<Message>,
    /// Liveness tracking for this client (when the session enables it).
    liveness: Option<LivenessTracker>,
    /// Session geometry (needed to rebuild the scale policy when the
    /// degradation ladder moves).
    session: (u32, u32),
    /// The viewport this client announced at attach.
    viewport: (u32, u32),
    /// Per-client adaptive degradation (when the session enables it).
    /// Per-client — not shared — so parallel flush fan-out stays
    /// deterministic: each worker only touches its own controller.
    degradation: Option<DegradationController>,
    /// This client owes a full-view refresh (fresh attach, explicit
    /// resync, or a degradation transition re-aimed its scale).
    /// Repaid by the next broadcast, which has the screen in hand.
    refresh_owed: bool,
    /// Per-client resilience accounting (pings, timeouts, resyncs,
    /// degradation steps) — per-client attribution for shared
    /// sessions, merged with buffer evictions at read time.
    resilience: thinc_telemetry::ResilienceMetrics,
    /// Set when this client's flush panicked under the parallel
    /// fan-out: the panic was contained, the client is isolated from
    /// all further broadcast/flush work, and the session keeps
    /// serving everyone else. A quarantined client's state is
    /// unspecified (the panic may have struck mid-mutation); the only
    /// way back is detach + re-attach.
    quarantined: bool,
    /// Test/chaos hook: the next flush of this client panics
    /// deliberately, exercising the quarantine path.
    poison_flush: bool,
}

impl ClientState {
    /// The viewport actually targeted: the announced viewport shrunk
    /// by the degradation ladder's scale divisor.
    fn effective_viewport(&self) -> (u32, u32) {
        let div = self
            .degradation
            .as_ref()
            .map(|c| c.level().scale_divisor())
            .unwrap_or(1)
            .max(1);
        ((self.viewport.0 / div).max(1), (self.viewport.1 / div).max(1))
    }

    /// Rebuilds scale and video resampling for the current effective
    /// viewport, preserving the zoom view. Pending commands target the
    /// outgoing coordinate space, so they are dropped and replaced by
    /// a full-view refresh on the next broadcast.
    fn rescale_for_degradation(&mut self) {
        let _ = self.buffer.drop_pending_for_rescale();
        let view = self.scale.view;
        let (ew, eh) = self.effective_viewport();
        self.scale =
            ScalePolicy::new(self.session.0, self.session.1, ew, eh).with_view(view);
        self.video.set_scale(ew, self.session.0, eh, self.session.1);
        self.refresh_owed = true;
    }

    /// Queues the owed full-view refresh, if any. Scaling runs on the
    /// current (post-transition) policy, so the client converges to
    /// the effective viewport's rendition of the screen.
    fn repay_refresh(&mut self, screen: &Framebuffer) {
        if !self.refresh_owed {
            return;
        }
        self.refresh_owed = false;
        let view = self.scale.view;
        let (clip, data) = screen.get_raw(&view);
        if clip.is_empty() {
            return;
        }
        let cmd = DisplayCommand::Raw {
            rect: clip,
            encoding: thinc_protocol::commands::RawEncoding::None,
            data: data.into(),
        };
        if self.scale.is_identity() {
            self.buffer.push(cmd, false);
        } else if let Some(scaled) = self.scale.transform(&cmd, screen) {
            self.buffer.push(scaled, false);
        }
    }

    /// Requeues screen content for regions the buffer evicted under
    /// its byte bound. Debt is recorded in the buffer's (viewport)
    /// coordinate space, so each rect is unmapped to session space
    /// before reading the screen and re-scaled exactly once on the
    /// way back in.
    fn repay_debt(&mut self, screen: &Framebuffer) {
        if !self.buffer.has_overflow_debt() {
            return;
        }
        let debt = self.buffer.take_overflow_debt();
        for rect in debt.rects() {
            let session_rect = if self.scale.is_identity() {
                *rect
            } else {
                self.scale.unmap_rect(rect)
            };
            if session_rect.is_empty() {
                continue;
            }
            let (clip, data) = screen.get_raw(&session_rect);
            if clip.is_empty() {
                continue;
            }
            let cmd = DisplayCommand::Raw {
                rect: clip,
                encoding: thinc_protocol::commands::RawEncoding::None,
                data: data.into(),
            };
            if self.scale.is_identity() {
                self.buffer.push_unbounded(cmd, false);
            } else if let Some(scaled) = self.scale.transform(&cmd, screen) {
                self.buffer.push_unbounded(scaled, false);
            }
        }
    }
}

/// One display session shared by any number of authenticated clients.
///
/// Implements [`VideoDriver`], so it attaches below a window server
/// exactly like [`crate::server::ThincServer`] — but fans every
/// translated command out to each client's buffer, scaled to that
/// client's viewport.
pub struct SharedSession {
    width: u32,
    height: u32,
    format: PixelFormat,
    auth: SessionAuth,
    translator: Translator,
    /// Attached clients in id (= attach) order. A `Vec` rather than a
    /// map: ids are sequential, iteration order is the deterministic
    /// merge order for parallel fan-out, and sessions hold few clients.
    clients: Vec<(ClientId, ClientState)>,
    next_client: u32,
    now: SimTime,
    /// Liveness policy applied to every attached client.
    liveness: Option<LivenessConfig>,
    /// Degradation policy applied to every attached client.
    degradation: Option<DegradationConfig>,
    /// Byte bound applied to every client buffer attached from now on.
    buffer_bound: Option<u64>,
    /// Content-cache budget for every client attached from now on
    /// (`None` keeps the cache off — the pre-revision-3 behaviour).
    cache_budget: Option<u64>,
    /// Scoped-thread workers for per-client fan-out (1 = inline).
    workers: usize,
    /// Cumulative encode-once plane accounting across flush rounds.
    fanout: PlaneCounters,
    /// Stable identity carried by resume tokens: a digest of owner +
    /// geometry + format, so a redialing client can prove it is
    /// resuming *this* session and not a coincidentally-numbered one.
    session_id: u64,
    /// Per-tile screen digests captured when this session was
    /// checkpointed (`None` on a fresh session). Warm resume diffs
    /// these against the live screen to ship only the tiles that
    /// changed while the session was down.
    restored_tiles: Option<TileDigests>,
}

impl std::fmt::Debug for SharedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSession")
            .field("clients", &self.clients.len())
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl SharedSession {
    /// Creates a session of the given geometry owned by `owner`.
    pub fn new(width: u32, height: u32, format: PixelFormat, owner: &str) -> Self {
        Self {
            width,
            height,
            format,
            auth: SessionAuth::new(owner),
            translator: Translator::new(),
            clients: Vec::new(),
            next_client: 0,
            now: SimTime::ZERO,
            liveness: None,
            degradation: None,
            buffer_bound: None,
            cache_budget: None,
            workers: 1,
            fanout: PlaneCounters::default(),
            session_id: compute_session_id(owner, width, height, format),
            restored_tiles: None,
        }
    }

    /// Enables liveness tracking: every client attached from now on
    /// is probed when silent and declared dead past the timeout.
    pub fn with_liveness(mut self, config: LivenessConfig) -> Self {
        self.liveness = Some(config);
        self
    }

    /// Enables per-client adaptive degradation: every attached client
    /// gets its own hysteretic ladder controller, fed that client's
    /// link telemetry at flush time. Per-client controllers keep the
    /// parallel flush fan-out deterministic — a struggling PDA peer
    /// degrades without touching the desktop owner's fidelity.
    pub fn with_degradation(mut self, config: DegradationConfig) -> Self {
        self.degradation = Some(config);
        self
    }

    /// Bounds every per-client display buffer attached from now on
    /// (overflow evicts oldest non-realtime; the footprint is owed as
    /// a refresh).
    pub fn with_buffer_bound(mut self, bytes: u64) -> Self {
        self.buffer_bound = Some(bytes);
        self
    }

    /// Enables the content-addressed cache (protocol revision 3) for
    /// every client attached from now on: each client buffer keeps a
    /// per-client ledger with this byte budget and substitutes
    /// [`Message::CacheRef`] for payloads that client already holds.
    /// Only attach revision-3 clients when this is on — older peers
    /// cannot resolve references. Per-client state keeps the parallel
    /// fan-out deterministic.
    pub fn with_cache(mut self, budget: u64) -> Self {
        self.cache_budget = Some(budget);
        self
    }

    /// Fans per-client broadcast and flush work out over up to
    /// `workers` scoped threads. Output is identical for every worker
    /// count (see [`crate::parallel`]); the default is 1 (inline).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    fn state(&self, id: ClientId) -> Option<&ClientState> {
        self.clients
            .iter()
            .find(|(cid, _)| *cid == id)
            .map(|(_, s)| s)
    }

    fn state_mut(&mut self, id: ClientId) -> Option<&mut ClientState> {
        self.clients
            .iter_mut()
            .find(|(cid, _)| *cid == id)
            .map(|(_, s)| s)
    }

    /// The authentication policy (enable/disable sharing here).
    pub fn auth_mut(&mut self) -> &mut SessionAuth {
        &mut self.auth
    }

    /// Advances the virtual clock (stamps video frames).
    pub fn set_time(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Attaches a client with a viewport, after authentication.
    pub fn attach(
        &mut self,
        creds: &Credentials,
        viewport_w: u32,
        viewport_h: u32,
    ) -> Result<ClientId, AuthError> {
        self.auth.authenticate(creds)?;
        let id = ClientId(self.next_client);
        self.next_client += 1;
        let user = match creds {
            Credentials::Owner { user } | Credentials::Peer { user, .. } => user.clone(),
        };
        let vw = viewport_w.clamp(1, self.width);
        let vh = viewport_h.clamp(1, self.height);
        let mut video = VideoStreamManager::new();
        video.set_scale(vw, self.width, vh, self.height);
        let mut buffer = ClientBuffer::new().with_raw_compression(self.format.bytes_per_pixel());
        if let Some(bound) = self.buffer_bound {
            buffer = buffer.with_byte_bound(bound);
        }
        if let Some(budget) = self.cache_budget {
            buffer.enable_cache(budget);
        }
        self.clients.push((
            id,
            ClientState {
                user,
                buffer,
                scale: ScalePolicy::new(self.width, self.height, vw, vh),
                video,
                pending_av: Vec::new(),
                liveness: self.liveness.map(|c| LivenessTracker::new(c, self.now)),
                session: (self.width, self.height),
                viewport: (vw, vh),
                degradation: self.degradation.map(DegradationController::new),
                // A fresh attach owes the full view: the client's
                // framebuffer starts empty.
                refresh_owed: true,
                resilience: thinc_telemetry::ResilienceMetrics::new(),
                quarantined: false,
                poison_flush: false,
            },
        ));
        Ok(id)
    }

    /// Records traffic from a client (input — anything but a pong
    /// proves the connection lives; pongs go through
    /// [`note_client_pong`](Self::note_client_pong) so stale ones
    /// can be rejected).
    pub fn note_client_activity(&mut self, id: ClientId, now: SimTime) {
        if let Some(t) = self.state_mut(id).and_then(|c| c.liveness.as_mut()) {
            t.note_activity(now);
        }
    }

    /// Records a pong from a client. Only a pong answering the
    /// latest outstanding probe counts as fresh traffic (returns
    /// `true`); a stale or unsolicited one is ignored.
    pub fn note_client_pong(&mut self, id: ClientId, seq: u32, now: SimTime) -> bool {
        self.state_mut(id)
            .and_then(|c| c.liveness.as_mut())
            .is_some_and(|t| t.note_pong(seq, now))
    }

    /// Evaluates a client's liveness at `now`: a silent client gets a
    /// ping queued on its A/V channel; silence past the timeout marks
    /// it dead (its resources become reclaimable via
    /// [`reap_dead`](Self::reap_dead)). Returns `Alive` for unknown
    /// clients or when liveness is disabled.
    pub fn poll_client_liveness(&mut self, id: ClientId, now: SimTime) -> LivenessVerdict {
        let Some(state) = self.state_mut(id) else {
            return LivenessVerdict::Alive;
        };
        if state.quarantined {
            // A quarantined client cannot be served; report it dead
            // without queueing probes its flush would never carry.
            return LivenessVerdict::Dead;
        }
        let Some(t) = state.liveness.as_mut() else {
            return LivenessVerdict::Alive;
        };
        let was_dead = t.is_dead();
        let verdict = t.poll(now);
        match verdict {
            LivenessVerdict::SendPing { seq } => {
                state.pending_av.push(Message::Ping {
                    seq,
                    timestamp_us: now.as_micros(),
                });
                state.resilience.record_ping_sent();
            }
            LivenessVerdict::Dead if !was_dead => {
                state.resilience.record_liveness_timeout();
            }
            _ => {}
        }
        verdict
    }

    /// Whether a client has been declared dead.
    pub fn client_dead(&self, id: ClientId) -> bool {
        self.state(id)
            .and_then(|c| c.liveness.as_ref())
            .is_some_and(|t| t.is_dead())
    }

    /// Detaches every dead client, freeing its buffers (a dead
    /// client's queues would otherwise accumulate updates forever).
    /// Returns the reaped ids; a reaped client reconnects by
    /// re-attaching and resyncing.
    pub fn reap_dead(&mut self) -> Vec<ClientId> {
        let dead: Vec<ClientId> = self
            .clients
            .iter()
            .filter(|(_, c)| c.liveness.as_ref().is_some_and(|t| t.is_dead()))
            .map(|(id, _)| *id)
            .collect();
        self.clients
            .retain(|(_, c)| !c.liveness.as_ref().is_some_and(|t| t.is_dead()));
        dead
    }

    /// Detaches a client.
    pub fn detach(&mut self, id: ClientId) {
        self.clients.retain(|(cid, _)| *cid != id);
    }

    /// Number of attached clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// The user name of an attached client.
    pub fn client_user(&self, id: ClientId) -> Option<&str> {
        self.state(id).map(|c| c.user.as_str())
    }

    /// Pending commands for a client.
    pub fn backlog(&self, id: ClientId) -> usize {
        self.state(id).map(|c| c.buffer.len()).unwrap_or(0)
    }

    /// Fans translated commands out to every client, scaled. Clients
    /// are independent, so the scaling/buffering runs on the session's
    /// worker pool; per-client push order is the command order either
    /// way.
    fn broadcast(&mut self, cmds: Vec<DisplayCommand>, screen: &Framebuffer) {
        // `screen` already reflects the commands being broadcast
        // (the store is mutated before the driver call). COPY is
        // the one non-idempotent command: applied on top of a
        // snapshot that already contains its effect it scrolls
        // twice wherever source and destination overlap. So a
        // client owed a refresh — whose snapshot covers the whole
        // view — must not receive this round's COPYs; and a
        // client with partial overflow debt cannot soundly take a
        // COPY either (the debt repaint may cover only part of
        // the copy's footprint), so its debt escalates to a full
        // refresh first. Idempotent repaints still flow: redundant
        // over a snapshot, but they keep the content cache warm.
        let has_copy = cmds
            .iter()
            .any(|c| matches!(c, DisplayCommand::Copy { .. }));
        // Serial pre-pass: settle the COPY/debt escalation, snapshot
        // refresh owage, and group clients into scale-equivalence
        // classes. Clients at the same scale policy receive identical
        // command streams, so each class is translated once below and
        // shared by reference (`Bytes` payloads make the per-client
        // clone an `Arc` bump, not a copy).
        let mut classes: Vec<BroadcastClass> = Vec::new();
        let mut class_of: Vec<usize> = Vec::with_capacity(self.clients.len());
        let mut repaid: Vec<bool> = Vec::with_capacity(self.clients.len());
        for (_, state) in self.clients.iter_mut() {
            if state.quarantined {
                class_of.push(usize::MAX);
                repaid.push(false);
                continue;
            }
            if has_copy && state.buffer.has_overflow_debt() {
                state.refresh_owed = true;
            }
            repaid.push(state.refresh_owed);
            let idx = match classes.iter().position(|c| c.policy == state.scale) {
                Some(i) => i,
                None => {
                    classes.push(BroadcastClass {
                        policy: state.scale,
                        transformed: Vec::new(),
                        refresh: None,
                        refresh_wanted: false,
                    });
                    classes.len() - 1
                }
            };
            classes[idx].refresh_wanted |= state.refresh_owed;
            class_of.push(idx);
        }
        // Translate each class once, in parallel across classes.
        let cmds = &cmds;
        crate::parallel::for_each_mut(&mut classes, self.workers, |_, class| {
            class.transformed = cmds
                .iter()
                .map(|c| {
                    if class.policy.is_identity() {
                        Some(c.clone())
                    } else {
                        class.policy.transform(c, screen)
                    }
                })
                .collect();
            if class.refresh_wanted {
                class.refresh = shared_refresh(&class.policy, screen);
            }
        });
        // Per-client fan-out: push the class's shared commands.
        let classes = &classes;
        let class_of = &class_of;
        let repaid = &repaid;
        crate::parallel::for_each_mut(&mut self.clients, self.workers, |i, (_, state)| {
            let ci = class_of[i];
            if ci == usize::MAX {
                return;
            }
            let class = &classes[ci];
            if state.refresh_owed {
                state.refresh_owed = false;
                if let Some(r) = &class.refresh {
                    state.buffer.push(r.clone(), false);
                }
            }
            state.repay_debt(screen);
            for (cmd, shared) in cmds.iter().zip(&class.transformed) {
                if repaid[i] && matches!(cmd, DisplayCommand::Copy { .. }) {
                    continue;
                }
                if let Some(sc) = shared {
                    state.buffer.push(sc.clone(), false);
                }
            }
        });
    }

    /// Settles every client's owed refreshes and eviction debt
    /// against the current screen without requiring a draw. Call this
    /// before flushing when the display is quiescent — a freshly
    /// attached or resynced client is owed the full view even if
    /// nothing paints.
    pub fn repay_refreshes(&mut self, screen: &Framebuffer) {
        // Same class sharing as `broadcast`: one refresh rendition per
        // scale policy, cloned (= `Arc`-bumped) per owing client.
        let mut classes: Vec<(ScalePolicy, Option<DisplayCommand>)> = Vec::new();
        let mut class_of: Vec<usize> = Vec::with_capacity(self.clients.len());
        for (_, state) in self.clients.iter() {
            if state.quarantined || !state.refresh_owed {
                class_of.push(usize::MAX);
                continue;
            }
            let idx = match classes.iter().position(|(p, _)| *p == state.scale) {
                Some(i) => i,
                None => {
                    classes.push((state.scale, None));
                    classes.len() - 1
                }
            };
            class_of.push(idx);
        }
        crate::parallel::for_each_mut(&mut classes, self.workers, |_, (policy, refresh)| {
            *refresh = shared_refresh(policy, screen);
        });
        let classes = &classes;
        let class_of = &class_of;
        crate::parallel::for_each_mut(&mut self.clients, self.workers, |i, (_, state)| {
            if state.quarantined {
                return;
            }
            if class_of[i] != usize::MAX {
                state.refresh_owed = false;
                if let Some(r) = &classes[class_of[i]].1 {
                    state.buffer.push(r.clone(), false);
                }
            }
            state.repay_debt(screen);
        });
    }

    /// Handles a client's explicit resync request: drops that
    /// client's (possibly stale) pending commands and owes it a
    /// full-view refresh, settled immediately against `screen`.
    pub fn resync_client(&mut self, id: ClientId, screen: &Framebuffer) {
        let Some(state) = self.state_mut(id) else {
            return;
        };
        if state.quarantined {
            return;
        }
        let _ = state.buffer.drop_pending_for_rescale();
        let _ = state.buffer.take_overflow_debt();
        state.refresh_owed = true;
        state.resilience.record_resync();
        state.repay_refresh(screen);
    }

    /// The degradation ladder level a client currently runs at
    /// ([`DegradationLevel::Full`] when degradation is disabled or
    /// the client is unknown).
    pub fn client_degradation_level(&self, id: ClientId) -> DegradationLevel {
        self.state(id)
            .and_then(|s| s.degradation.as_ref().map(|c| c.level()))
            .unwrap_or(DegradationLevel::Full)
    }

    /// A snapshot of one client's resilience counters (per-client
    /// attribution: pings, timeouts, resyncs, degradation steps),
    /// with that client's buffer evictions and content-cache counters
    /// folded in.
    pub fn client_resilience(&self, id: ClientId) -> Option<thinc_telemetry::ResilienceMetrics> {
        self.state(id).map(|s| {
            let mut m = s.resilience.clone();
            m.add_overflow_evictions(s.buffer.stats().overflow_evicted);
            let (hits, misses, evictions, saved) = s.buffer.cache_counts();
            m.add_cache_counts(hits, misses, evictions, saved);
            m
        })
    }

    /// Handles a [`Message::CacheMiss`] from a client: queues the
    /// byte-exact full payload from that client's ledger. Returns
    /// `false` when the entry was evicted on both sides — the client
    /// skipped an update, so the caller should follow with
    /// [`resync_client`](Self::resync_client) (the miss is recorded
    /// and the client is owed a full-view refresh on the next
    /// broadcast either way).
    pub fn client_cache_miss(&mut self, id: ClientId, hash: u64) -> bool {
        let Some(state) = self.state_mut(id) else {
            return false;
        };
        if state.quarantined {
            return false;
        }
        let satisfied = state.buffer.satisfy_cache_miss(hash);
        if !satisfied {
            state.refresh_owed = true;
        }
        satisfied
    }

    /// Flushes one client's buffer over its own connection.
    pub fn flush_client(
        &mut self,
        id: ClientId,
        now: SimTime,
        pipe: &mut TcpPipe,
        trace: &mut PacketTrace,
    ) -> Vec<(SimTime, Message)> {
        let Some(state) = self.state_mut(id) else {
            return Vec::new();
        };
        if state.quarantined {
            return Vec::new();
        }
        flush_client_state(state, now, pipe, trace, None, &mut PlaneCounters::default())
    }

    /// Flushes **every** client's buffer, each over its own
    /// connection, fanning the per-client work (A/V pacing, SRSF
    /// scheduling, flush-time RAW compression) out over the session's
    /// worker pool.
    ///
    /// `links[i]` is the `(pipe, trace)` pair of the i-th attached
    /// client — the same order as attach/[`ClientId`] order. The
    /// result is merged back in that order, so the output is
    /// bit-identical for every worker count.
    ///
    /// # Panics
    ///
    /// Panics if `links.len()` differs from [`client_count`]
    /// (Self::client_count).
    pub fn flush_all(
        &mut self,
        now: SimTime,
        links: &mut [(TcpPipe, PacketTrace)],
    ) -> FlushOutput {
        assert_eq!(
            links.len(),
            self.clients.len(),
            "one (pipe, trace) link per attached client"
        );
        // One encode-once plane per round: identical payloads across
        // clients are compressed and framed a single time (see
        // [`crate::plane`]); output bytes are unchanged.
        let plane = WirePlane::new();
        let ids = self.client_ids();
        let (out, counters) = self.flush_subset_inner(now, &ids, links, Some(&plane));
        self.fanout.merge(&counters);
        out
    }

    /// Flushes the listed clients (a *shard* of the session), each
    /// over its own link, optionally against a shared encode-once
    /// [`WirePlane`] — the sharded manager passes one plane per epoch
    /// so equivalence classes amortize across shards, not just within
    /// one.
    ///
    /// `ids` must be sorted ascending and each must be attached;
    /// `links[i]` pairs with `ids[i]`. Returns the per-client message
    /// streams in id order plus this call's plane counters (also
    /// accumulated into [`fanout_counters`](Self::fanout_counters)).
    ///
    /// # Panics
    ///
    /// Panics if `links.len() != ids.len()` or an id is not attached.
    pub fn flush_subset(
        &mut self,
        now: SimTime,
        ids: &[ClientId],
        links: &mut [(TcpPipe, PacketTrace)],
        plane: Option<&WirePlane>,
    ) -> (FlushOutput, PlaneCounters) {
        let (out, counters) = self.flush_subset_inner(now, ids, links, plane);
        self.fanout.merge(&counters);
        (out, counters)
    }

    fn flush_subset_inner(
        &mut self,
        now: SimTime,
        ids: &[ClientId],
        links: &mut [(TcpPipe, PacketTrace)],
        plane: Option<&WirePlane>,
    ) -> (FlushOutput, PlaneCounters) {
        assert_eq!(links.len(), ids.len(), "one (pipe, trace) link per flushed client");
        let mut jobs: Vec<_> = self
            .clients
            .iter_mut()
            .filter(|(id, _)| ids.binary_search(id).is_ok())
            .zip(links.iter_mut())
            .map(|((id, state), link)| {
                (*id, state, link, Vec::new(), PlaneCounters::default())
            })
            .collect();
        assert_eq!(jobs.len(), ids.len(), "every flushed id must be attached");
        let caught = crate::parallel::try_for_each_mut(
            &mut jobs,
            self.workers,
            |_, (_, state, link, out, counters)| {
                if state.quarantined {
                    return;
                }
                *out = flush_client_state(state, now, &mut link.0, &mut link.1, plane, counters);
            },
        );
        // Panic containment: a client whose flush panicked is
        // quarantined — its partial output is discarded, the panic is
        // counted in its resilience metrics, and every other client's
        // output is delivered untouched.
        let mut total = PlaneCounters::default();
        for ((_, state, _, out, counters), panic_msg) in jobs.iter_mut().zip(&caught) {
            if panic_msg.is_some() {
                state.quarantined = true;
                state.resilience.record_panic_quarantined();
                out.clear();
            } else {
                total.merge(counters);
            }
        }
        (
            jobs.into_iter().map(|(id, _, _, out, _)| (id, out)).collect(),
            total,
        )
    }

    /// Cumulative encode-once plane counters over every flush round
    /// so far (shared sends, amortized bytes, actual encodes).
    pub fn fanout_counters(&self) -> PlaneCounters {
        self.fanout
    }

    /// Total wire bytes sent to a client so far (fairness metric for
    /// the fan-out gate).
    pub fn client_sent_bytes(&self, id: ClientId) -> u64 {
        self.state(id).map(|s| s.buffer.stats().sent_bytes).unwrap_or(0)
    }

    /// A client's enqueue-to-wire flush-latency histogram
    /// (microseconds of virtual time), for cross-client percentile
    /// merging.
    pub fn client_flush_latency(&self, id: ClientId) -> Option<&thinc_telemetry::Histogram> {
        self.state(id).map(|s| s.buffer.scheduler_metrics().flush_latency_us())
    }

    /// Applies a client's viewport change mid-session (window resize,
    /// device switch). Pending commands target the outgoing
    /// coordinate space, so they — and any queued cache-miss
    /// fallbacks — are dropped, and the client is owed a full-view
    /// refresh at the new scale (settled by the next broadcast or
    /// [`repay_refreshes`](Self::repay_refreshes)). Counted as a
    /// resync in the client's resilience metrics.
    pub fn resize_client(&mut self, id: ClientId, viewport_w: u32, viewport_h: u32) {
        let (sw, sh) = (self.width, self.height);
        let Some(state) = self.state_mut(id) else {
            return;
        };
        if state.quarantined {
            return;
        }
        state.viewport = (viewport_w.clamp(1, sw), viewport_h.clamp(1, sh));
        state.resilience.record_resync();
        state.rescale_for_degradation();
    }

    /// Changes the content-cache budget applied to clients attached
    /// from now on (already-attached clients keep their ledgers — the
    /// budget must stay in lockstep with each client's store for the
    /// eviction mirror to hold). `None` disables the cache for future
    /// attaches.
    pub fn set_cache_budget(&mut self, budget: Option<u64>) {
        self.cache_budget = budget;
    }

    /// The content-cache budget future attaches will receive.
    pub fn cache_budget(&self) -> Option<u64> {
        self.cache_budget
    }

    /// Attached client ids, in attach (= flush merge) order.
    pub fn client_ids(&self) -> Vec<ClientId> {
        self.clients.iter().map(|(id, _)| *id).collect()
    }

    /// Whether a client has been quarantined by flush panic
    /// containment.
    pub fn client_quarantined(&self, id: ClientId) -> bool {
        self.state(id).is_some_and(|s| s.quarantined)
    }

    /// Number of currently quarantined clients.
    pub fn quarantined_count(&self) -> usize {
        self.clients.iter().filter(|(_, s)| s.quarantined).count()
    }

    /// Test/chaos hook: arms a deliberate panic inside `id`'s next
    /// flush, on whatever worker thread the fan-out assigns it —
    /// exercising the quarantine path end to end.
    pub fn poison_next_flush(&mut self, id: ClientId) {
        if let Some(state) = self.state_mut(id) {
            state.poison_flush = true;
        }
    }

    /// Every key in a client's cache ledger, sorted ascending (empty
    /// when the cache is off or the client is unknown). For coherence
    /// checks against the client store.
    pub fn client_cache_keys(&self, id: ClientId) -> Vec<u64> {
        self.state(id).map(|s| s.buffer.cache_keys()).unwrap_or_default()
    }

    /// Pending buffered bytes for a client.
    pub fn client_pending_bytes(&self, id: ClientId) -> u64 {
        self.state(id).map(|s| s.buffer.pending_bytes()).unwrap_or(0)
    }

    /// The byte bound a client's buffer currently enforces.
    pub fn client_effective_byte_bound(&self, id: ClientId) -> Option<u64> {
        self.state(id).and_then(|s| s.buffer.effective_byte_bound())
    }

    /// Whether a client is owed a full-view refresh.
    pub fn client_refresh_owed(&self, id: ClientId) -> bool {
        self.state(id).is_some_and(|s| s.refresh_owed)
    }

    /// Whether a client's buffer carries unsettled overflow debt.
    pub fn client_has_overflow_debt(&self, id: ClientId) -> bool {
        self.state(id).is_some_and(|s| s.buffer.has_overflow_debt())
    }

    /// Cache-miss fallbacks queued for a client but not yet delivered.
    pub fn client_fallbacks_pending(&self, id: ClientId) -> usize {
        self.state(id).map(|s| s.buffer.fallbacks_pending()).unwrap_or(0)
    }

    /// The session's stable identity, as carried by resume tokens.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Serializes the full session — policy, every client's delivery
    /// state, and per-tile digests of `screen` — into a versioned,
    /// CRC-guarded checkpoint image ([`crate::checkpoint`]).
    ///
    /// Crash consistency comes from serializing raw internal state at
    /// a quiescent point (between flush epochs), never mid-mutation.
    /// Quarantined clients are skipped entirely: a quarantine means a
    /// panic may have struck mid-mutation, so their state is exactly
    /// what a checkpoint must not trust.
    ///
    /// Deliberately not captured (all reconstructed or reset at
    /// [`restore`](Self::restore)): the translator's pixmap queues
    /// (offscreen drawings replay into fresh queues), video stream
    /// internals (active streams are torn down across a failover and
    /// re-announced), liveness trackers (restarted from config — a
    /// restored server must not inherit pre-crash silence), telemetry
    /// counters, and the encode-once plane accounting.
    pub fn checkpoint(&self, screen: &Framebuffer) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.width);
        w.u32(self.height);
        w.u8(format_to_u8(self.format));
        w.u64(self.session_id);
        w.str(&self.auth.owner);
        w.opt_str(self.auth.session_password.as_deref());
        w.u32(self.next_client);
        w.u64(self.now.0);
        match self.liveness {
            Some(cfg) => {
                w.bool(true);
                w.u64(cfg.timeout.0);
                w.u64(cfg.ping_interval.0);
            }
            None => w.bool(false),
        }
        match self.degradation {
            Some(cfg) => {
                w.bool(true);
                w.u32(cfg.degrade_after);
                w.u32(cfg.promote_after);
                w.f64(cfg.pressure_fraction);
                w.u8(cfg.max_level.index() as u8);
            }
            None => w.bool(false),
        }
        w.opt_u64(self.buffer_bound);
        w.opt_u64(self.cache_budget);
        w.u32(self.workers as u32);
        let tiles = TileDigests::of(screen);
        w.u32(tiles.width);
        w.u32(tiles.height);
        w.u32(tiles.cols);
        w.u32(tiles.rows);
        for d in &tiles.digests {
            w.u64(*d);
        }
        let live: Vec<&(ClientId, ClientState)> = self
            .clients
            .iter()
            .filter(|(_, s)| !s.quarantined)
            .collect();
        w.u32(live.len() as u32);
        for (id, state) in live {
            w.u32(id.0);
            w.str(&state.user);
            w.u32(state.viewport.0);
            w.u32(state.viewport.1);
            w.rect(&state.scale.view);
            w.bool(state.refresh_owed);
            w.u8(match &state.degradation {
                Some(c) => c.level().index() as u8,
                None => 0xFF,
            });
            state.buffer.encode_checkpoint(&mut w);
            // Liveness probes are incarnation-local and never
            // checkpointed: the restored standby's fresh tracker
            // issues its own pings, and a carried-over probe would
            // draw a pong the standby's reset telemetry never
            // accounted for (breaking pong<=ping conservation).
            let av: Vec<&Message> = state
                .pending_av
                .iter()
                .filter(|m| !matches!(m, Message::Ping { .. }))
                .collect();
            w.u32(av.len() as u32);
            for msg in av {
                w.bytes(&thinc_protocol::wire::encode_message(msg));
            }
        }
        crate::checkpoint::seal(w.into_inner())
    }

    /// Rebuilds a session from a [`checkpoint`](Self::checkpoint)
    /// image. Every corruption — bad magic, foreign version, any
    /// truncation or bit flip, malformed interior structure, trailing
    /// garbage — yields a typed error; nothing panics, and a failed
    /// restore leaves no partial state behind (the caller keeps its
    /// cold path).
    pub fn restore(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let payload = crate::checkpoint::open(bytes)?;
        let mut r = Reader::new(payload);
        let width = r.u32()?;
        let height = r.u32()?;
        let format = format_from_u8(r.u8()?)?;
        let session_id = r.u64()?;
        let owner = r.str()?;
        let session_password = r.opt_str()?;
        let next_client = r.u32()?;
        let now = SimTime(r.u64()?);
        let liveness = if r.bool()? {
            Some(LivenessConfig {
                timeout: SimDuration(r.u64()?),
                ping_interval: SimDuration(r.u64()?),
            })
        } else {
            None
        };
        let degradation = if r.bool()? {
            Some(DegradationConfig {
                degrade_after: r.u32()?,
                promote_after: r.u32()?,
                pressure_fraction: r.f64()?,
                max_level: level_from_u8(r.u8()?)?,
            })
        } else {
            None
        };
        let buffer_bound = r.opt_u64()?;
        let cache_budget = r.opt_u64()?;
        let workers = (r.u32()? as usize).max(1);
        let tiles = {
            let (tw, th, cols, rows) = (r.u32()?, r.u32()?, r.u32()?, r.u32()?);
            let n = u64::from(cols) * u64::from(rows);
            // Reads fail fast at the payload boundary, so a corrupt
            // count cannot balloon the allocation.
            let mut digests = Vec::new();
            for _ in 0..n {
                digests.push(r.u64()?);
            }
            TileDigests { width: tw, height: th, cols, rows, digests }
        };
        let n_clients = r.u32()?;
        let mut clients = Vec::new();
        for _ in 0..n_clients {
            let id = ClientId(r.u32()?);
            let user = r.str()?;
            let vw = r.u32()?.clamp(1, width);
            let vh = r.u32()?.clamp(1, height);
            let view = r.rect()?;
            let refresh_owed = r.bool()?;
            let level_byte = r.u8()?;
            let buffer = ClientBuffer::decode_checkpoint(&mut r)?;
            let controller = match (degradation, level_byte) {
                (Some(_), 0xFF) => {
                    return Err(CheckpointError::Malformed("missing degradation level"))
                }
                (Some(cfg), b) => Some(DegradationController::restore(cfg, level_from_u8(b)?)),
                (None, 0xFF) => None,
                (None, _) => {
                    return Err(CheckpointError::Malformed("orphan degradation level"))
                }
            };
            let div = controller
                .as_ref()
                .map(|c| c.level().scale_divisor())
                .unwrap_or(1)
                .max(1);
            let (ew, eh) = ((vw / div).max(1), (vh / div).max(1));
            let mut video = VideoStreamManager::new();
            video.set_scale(ew, width, eh, height);
            let n_av = r.u32()?;
            let mut pending_av = Vec::new();
            for _ in 0..n_av {
                pending_av.push(crate::buffer::decode_checkpoint_message(r.bytes()?)?);
            }
            clients.push((
                id,
                ClientState {
                    user,
                    buffer,
                    scale: ScalePolicy::new(width, height, ew, eh).with_view(view),
                    video,
                    pending_av,
                    liveness: liveness.map(|c| LivenessTracker::new(c, now)),
                    session: (width, height),
                    viewport: (vw, vh),
                    degradation: controller,
                    refresh_owed,
                    resilience: thinc_telemetry::ResilienceMetrics::new(),
                    quarantined: false,
                    poison_flush: false,
                },
            ));
        }
        if !r.exhausted() {
            return Err(CheckpointError::Malformed("trailing bytes after checkpoint"));
        }
        Ok(Self {
            width,
            height,
            format,
            auth: SessionAuth { owner, session_password },
            translator: Translator::new(),
            clients,
            next_client,
            now,
            liveness,
            degradation,
            buffer_bound,
            cache_budget,
            workers,
            fanout: PlaneCounters::default(),
            session_id,
            restored_tiles: Some(tiles),
        })
    }

    /// Handles a redialing client's `MSG_SESSION_RESUME` token against
    /// the live screen.
    ///
    /// Warm resume (token matches: right session, known client, cache
    /// ledger digest equal to the client's store digest) ships only
    /// the delta between the checkpointed screen digests and `screen`
    /// — the client's framebuffer and content store are trusted
    /// as-is. Any mismatch falls back cold: pending state is dropped,
    /// both cache sides reset, and a full-view refresh is queued —
    /// the same path a brand-new attach takes, so a stale or
    /// corrupted token can never do worse than a cold reconnect.
    pub fn resume_client(
        &mut self,
        session_id: u64,
        id: ClientId,
        store_digest: u64,
        screen: &Framebuffer,
    ) -> ResumeOutcome {
        if session_id != self.session_id {
            // Wrong session entirely: nothing here belongs to this
            // client, so nothing is touched.
            return ResumeOutcome::Cold { reason: "unknown session" };
        }
        if self.state(id).is_none() {
            return ResumeOutcome::Cold { reason: "unknown client" };
        }
        if self.state(id).is_some_and(|s| s.quarantined) {
            // Quarantined state is unspecified (the panic may have
            // struck mid-mutation); it must not be revived or mutated.
            return ResumeOutcome::Cold { reason: "quarantined" };
        }
        let ledger_digest =
            cache_digest(&self.state(id).map(|s| s.buffer.cache_keys()).unwrap_or_default());
        if ledger_digest != store_digest {
            return self.cold_fallback(id, screen, "cache digest mismatch");
        }
        let delta = match &self.restored_tiles {
            Some(t) => t.delta(&TileDigests::of(screen)),
            None => Region::new(),
        };
        let delta_area = delta.area();
        let state = self.state_mut(id).expect("presence checked above");
        state.resilience.record_resume();
        if state.scale.is_identity() {
            // Debt lives in viewport coordinates; at identity scale
            // the session-space delta maps one-to-one, so only the
            // changed tiles are requeued.
            state.buffer.owe_refresh_region(&delta);
            state.repay_debt(screen);
        } else if !delta.is_empty() {
            // A scaled client resamples whole views; re-rendering the
            // full view is both simpler and still far cheaper than a
            // cold restart (no cache reset, no pending-state drop).
            state.refresh_owed = true;
            state.repay_refresh(screen);
        }
        ResumeOutcome::Warm { delta_area }
    }

    /// The cold half of [`resume_client`](Self::resume_client): drop
    /// everything mid-flight, clear the cache ledger (the redialing
    /// client clears its store in the same breath, keeping the
    /// eviction mirror intact), and queue a full-view refresh.
    fn cold_fallback(
        &mut self,
        id: ClientId,
        screen: &Framebuffer,
        reason: &'static str,
    ) -> ResumeOutcome {
        if let Some(state) = self.state_mut(id) {
            state.resilience.record_cold_fallback();
            let _ = state.buffer.drop_pending_for_rescale();
            let _ = state.buffer.take_overflow_debt();
            state.buffer.reset_cache();
            state.pending_av.clear();
            state.refresh_owed = true;
            state.repay_refresh(screen);
        }
        ResumeOutcome::Cold { reason }
    }
}

/// The session identity folded into resume tokens: owner plus
/// geometry, so two sessions only collide when they are genuinely
/// interchangeable from the client's perspective.
fn compute_session_id(owner: &str, width: u32, height: u32, format: PixelFormat) -> u64 {
    use thinc_protocol::hash::{fnv64, fnv64_update};
    let mut h = fnv64(owner.as_bytes());
    h = fnv64_update(h, &width.to_le_bytes());
    h = fnv64_update(h, &height.to_le_bytes());
    h = fnv64_update(h, &[format_to_u8(format)]);
    h
}

/// Decodes a degradation-ladder level from its checkpoint byte.
pub(crate) fn level_from_u8(b: u8) -> Result<DegradationLevel, CheckpointError> {
    DegradationLevel::ALL
        .get(b as usize)
        .copied()
        .ok_or(CheckpointError::Malformed("degradation level"))
}

/// The per-client flush body: A/V first (paced data), then the SRSF
/// display queues. A free function so the parallel fan-out can borrow
/// one client's state without holding the session.
fn flush_client_state(
    state: &mut ClientState,
    now: SimTime,
    pipe: &mut TcpPipe,
    trace: &mut PacketTrace,
    plane: Option<&WirePlane>,
    counters: &mut PlaneCounters,
) -> Vec<(SimTime, Message)> {
    if state.poison_flush {
        state.poison_flush = false;
        panic!("injected poison: client flush panicked");
    }
    observe_client_degradation(state, now, pipe);
    let mut out = Vec::new();
    let mut i = 0;
    while i < state.pending_av.len() {
        let size = thinc_protocol::wire::encoded_len(&state.pending_av[i]);
        if pipe.would_block(now, size) {
            break;
        }
        let msg = state.pending_av.remove(i);
        let (_, arrival) = pipe.send(now, size);
        trace.record(now, arrival, size, thinc_net::trace::Direction::Down, "video");
        out.push((arrival, msg));
        // `remove` shifted; keep index at 0 semantics.
        i = 0;
    }
    out.extend(state.buffer.flush_shared(now, pipe, trace, plane, counters));
    out
}

/// One scale-equivalence class of a broadcast round: the shared
/// translation of the round's commands and (when any member owes one)
/// the shared full-view refresh rendition.
struct BroadcastClass {
    policy: ScalePolicy,
    transformed: Vec<Option<DisplayCommand>>,
    refresh: Option<DisplayCommand>,
    refresh_wanted: bool,
}

/// Renders the full-view refresh a [`ScalePolicy`] class is owed —
/// the class-shared twin of [`ClientState::repay_refresh`], with the
/// identical output bytes.
fn shared_refresh(policy: &ScalePolicy, screen: &Framebuffer) -> Option<DisplayCommand> {
    let (clip, data) = screen.get_raw(&policy.view);
    if clip.is_empty() {
        return None;
    }
    let cmd = DisplayCommand::Raw {
        rect: clip,
        encoding: thinc_protocol::commands::RawEncoding::None,
        data: data.into(),
    };
    if policy.is_identity() {
        Some(cmd)
    } else {
        policy.transform(&cmd, screen)
    }
}

/// Feeds one flush epoch of this client's link telemetry to its
/// degradation controller and applies any resulting transition. Runs
/// inside the parallel fan-out: every input is per-client (own
/// buffer, own pipe, own controller), so worker count cannot change
/// the outcome.
fn observe_client_degradation(state: &mut ClientState, now: SimTime, pipe: &TcpPipe) {
    let transition = {
        let Some(ctrl) = state.degradation.as_mut() else {
            return;
        };
        let fs = pipe.fault_stats();
        let signals = EpochSignals {
            pending_bytes: state.buffer.pending_bytes(),
            byte_bound: state.buffer.byte_bound(),
            overflow_evictions: state.buffer.stats().overflow_evicted,
            outage_defers: fs.outage_defers,
            collapsed_rounds: fs.collapsed_rounds,
            stale_av_drops: 0,
            corrupt_events: fs.corrupt_events,
            segments_reordered: fs.segments_reordered,
            segments_duplicated: fs.segments_duplicated,
            link_impaired: pipe.fault_window_active(now),
        };
        ctrl.observe(&signals)
    };
    if let Some(t) = transition {
        state
            .resilience
            .record_degradation_step(t.to.index() as u64, t.is_demotion());
        state.rescale_for_degradation();
    }
}

impl VideoDriver for SharedSession {
    fn create_pixmap(&mut self, _store: &DrawableStore, id: DrawableId, w: u32, h: u32) {
        self.translator.create_pixmap(id, w, h);
    }

    fn free_pixmap(&mut self, _store: &DrawableStore, id: DrawableId) {
        self.translator.free_pixmap(id);
    }

    fn solid_fill(&mut self, store: &DrawableStore, target: DrawableId, rect: Rect, color: Color) {
        let cmds = self.translator.solid_fill(store, target, rect, color);
        self.broadcast(cmds, store.screen());
    }

    fn pattern_fill(
        &mut self,
        store: &DrawableStore,
        target: DrawableId,
        rect: Rect,
        tile: &Framebuffer,
    ) {
        let cmds = self.translator.pattern_fill(store, target, rect, tile);
        self.broadcast(cmds, store.screen());
    }

    fn stipple_fill(
        &mut self,
        store: &DrawableStore,
        target: DrawableId,
        rect: Rect,
        bits: &[u8],
        fg: Color,
        bg: Option<Color>,
    ) {
        let cmds = self.translator.stipple_fill(store, target, rect, bits, fg, bg);
        self.broadcast(cmds, store.screen());
    }

    fn copy_area(
        &mut self,
        store: &DrawableStore,
        src: DrawableId,
        dst: DrawableId,
        src_rect: Rect,
        dst_x: i32,
        dst_y: i32,
    ) {
        let cmds = self
            .translator
            .copy_area(store, src, dst, src_rect, dst_x, dst_y);
        self.broadcast(cmds, store.screen());
    }

    fn put_image(&mut self, store: &DrawableStore, target: DrawableId, rect: Rect, data: &[u8]) {
        let cmds = self.translator.put_image(store, target, rect, data);
        self.broadcast(cmds, store.screen());
    }

    fn composite(
        &mut self,
        store: &DrawableStore,
        target: DrawableId,
        rect: Rect,
        _data: &[u8],
        _op: thinc_raster::CompositeOp,
    ) {
        let cmds = self.translator.composite(store, target, rect);
        self.broadcast(cmds, store.screen());
    }

    fn video_display(&mut self, _store: &DrawableStore, frame: &YuvFrame, dst: Rect) {
        let ts = self.now.as_micros();
        for (_, state) in self.clients.iter_mut() {
            if state.quarantined {
                continue;
            }
            // Video messages bypass the display buffer ordering and go
            // through each client's own stream manager (which also
            // resamples for small viewports).
            let msgs = state.video.display_frame(frame, dst, ts);
            for m in msgs {
                // Wrap as display-path content so flushing stays
                // single-channel per client: the buffer only carries
                // DisplayCommand, so A/V keeps a side-channel. For
                // the shared session we deliver video immediately at
                // flush time via the pending list below.
                state.pending_av.push(m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_authenticates() {
        let auth = SessionAuth::new("ricardo");
        assert!(auth
            .authenticate(&Credentials::Owner {
                user: "ricardo".into()
            })
            .is_ok());
        assert_eq!(
            auth.authenticate(&Credentials::Owner { user: "mallory".into() }),
            Err(AuthError::NotOwner)
        );
    }

    #[test]
    fn silent_peer_is_pinged_then_reaped_while_active_owner_survives() {
        use thinc_net::time::SimDuration;
        let mut s = SharedSession::new(64, 64, PixelFormat::Rgb888, "host").with_liveness(
            LivenessConfig {
                timeout: SimDuration::from_secs_f64(10.0),
                ping_interval: SimDuration::from_secs_f64(2.0),
            },
        );
        s.auth_mut().enable_sharing("pw");
        let owner = s
            .attach(&Credentials::Owner { user: "host".into() }, 64, 64)
            .unwrap();
        let peer = s
            .attach(
                &Credentials::Peer {
                    user: "guest".into(),
                    password: "pw".into(),
                },
                32,
                32,
            )
            .unwrap();
        let secs = |x: f64| SimTime((x * 1e6) as u64);
        // The owner keeps talking; the peer goes silent.
        s.note_client_activity(owner, secs(3.0));
        assert!(matches!(
            s.poll_client_liveness(peer, secs(3.0)),
            LivenessVerdict::SendPing { .. }
        ));
        assert!(matches!(
            s.poll_client_liveness(owner, secs(4.0)),
            LivenessVerdict::Alive
        ));
        assert!(matches!(
            s.poll_client_liveness(peer, secs(11.0)),
            LivenessVerdict::Dead
        ));
        assert!(s.client_dead(peer));
        assert!(!s.client_dead(owner));
        assert_eq!(s.reap_dead(), vec![peer]);
        assert_eq!(s.client_count(), 1);
    }

    #[test]
    fn sharing_requires_password() {
        let mut auth = SessionAuth::new("host");
        let peer = Credentials::Peer {
            user: "guest".into(),
            password: "sosp2005".into(),
        };
        assert_eq!(auth.authenticate(&peer), Err(AuthError::SharingDisabled));
        auth.enable_sharing("sosp2005");
        assert!(auth.authenticate(&peer).is_ok());
        assert_eq!(
            auth.authenticate(&Credentials::Peer {
                user: "guest".into(),
                password: "wrong".into()
            }),
            Err(AuthError::BadPassword)
        );
        auth.disable_sharing();
        assert_eq!(auth.authenticate(&peer), Err(AuthError::SharingDisabled));
    }

    /// Per-client message streams, per-client final framebuffers, the
    /// screen bytes, and the session itself.
    type ScenarioOutcome = (Vec<Vec<Message>>, Vec<Vec<u8>>, Vec<u8>, SharedSession);

    /// Runs a two-client degradation scenario (owner on a clean link,
    /// peer behind a one-second collapse window) and returns the
    /// per-client message streams plus the final framebuffer of each
    /// client and the screen.
    fn run_degradation_scenario(workers: usize) -> ScenarioOutcome {
        use thinc_display::drawable::SCREEN;
        use thinc_net::fault::FaultPlan;
        use thinc_net::link::NetworkConfig;
        use thinc_net::time::SimDuration;
        use crate::degradation::DegradationConfig;

        let mut s = SharedSession::new(64, 64, PixelFormat::Rgb888, "host")
            .with_degradation(DegradationConfig {
                degrade_after: 1,
                promote_after: 1,
                ..DegradationConfig::default()
            })
            .with_workers(workers);
        s.auth_mut().enable_sharing("pw");
        let owner = s
            .attach(&Credentials::Owner { user: "host".into() }, 64, 64)
            .unwrap();
        let peer = s
            .attach(
                &Credentials::Peer {
                    user: "guest".into(),
                    password: "pw".into(),
                },
                64,
                64,
            )
            .unwrap();

        let mut store = DrawableStore::new(64, 64, PixelFormat::Rgb888);
        let clean = NetworkConfig::lan_desktop();
        let plan = FaultPlan::seeded(7).with_collapse(
            SimTime(0),
            SimDuration::from_secs(1),
            0.05,
        );
        let faulted = NetworkConfig::lan_desktop().with_faults(plan);
        let mut links = vec![
            (clean.connect().down, PacketTrace::new()),
            (faulted.connect().down, PacketTrace::new()),
        ];
        let secs = |t: f64| SimTime((t * 1e6) as u64);

        let mut streams = vec![Vec::new(), Vec::new()];
        let collect = |out: Vec<(ClientId, Vec<(SimTime, Message)>)>,
                           streams: &mut Vec<Vec<Message>>| {
            for (id, msgs) in out {
                let idx = if id == owner { 0 } else { 1 };
                streams[idx].extend(msgs.into_iter().map(|(_, m)| m));
            }
        };

        store
            .screen_mut()
            .fill_rect(&Rect::new(0, 0, 64, 64), Color::rgb(30, 90, 50));
        s.solid_fill(&store, SCREEN, Rect::new(0, 0, 64, 64), Color::rgb(30, 90, 50));
        // Three flush epochs inside the collapse window: the peer's
        // ladder walks to Survival while the owner stays at Full.
        for i in 0..3 {
            let out = s.flush_all(secs(0.1 * (i + 1) as f64), &mut links);
            collect(out, &mut streams);
        }
        assert_eq!(s.client_degradation_level(owner), DegradationLevel::Full);
        assert_eq!(s.client_degradation_level(peer), DegradationLevel::Survival);
        let m = s.client_resilience(peer).unwrap();
        assert_eq!(m.degrade_steps(), 3);
        assert_eq!(m.max_degradation_level(), 3);
        assert_eq!(s.client_resilience(owner).unwrap().degrade_steps(), 0);

        // The window clears: three clear epochs climb back to Full.
        for i in 0..3 {
            let out = s.flush_all(secs(1.5 + 0.1 * i as f64), &mut links);
            collect(out, &mut streams);
        }
        assert_eq!(s.client_degradation_level(peer), DegradationLevel::Full);
        assert_eq!(s.client_resilience(peer).unwrap().promote_steps(), 3);

        // A fresh draw triggers the owed full-view refresh; drain.
        store
            .screen_mut()
            .fill_rect(&Rect::new(8, 8, 16, 16), Color::rgb(200, 40, 40));
        s.solid_fill(&store, SCREEN, Rect::new(8, 8, 16, 16), Color::rgb(200, 40, 40));
        for i in 0..20 {
            let out = s.flush_all(secs(3.0 + 0.2 * i as f64), &mut links);
            collect(out, &mut streams);
            if (0..s.client_count() as u32).all(|c| s.backlog(ClientId(c)) == 0) {
                break;
            }
        }

        let mut fbs = Vec::new();
        for stream in &streams {
            let mut client = thinc_client::ThincClient::new(64, 64, PixelFormat::Rgb888);
            for m in stream {
                client.apply(m);
            }
            fbs.push(client.framebuffer().data().to_vec());
        }
        let screen = store.screen().data().to_vec();
        (streams, fbs, screen, s)
    }

    #[test]
    fn faulted_peer_degrades_alone_and_recovers_byte_exact() {
        let (_, fbs, screen, _) = run_degradation_scenario(1);
        assert_eq!(fbs[0], screen, "owner never left full fidelity");
        assert_eq!(
            fbs[1], screen,
            "peer converges byte-exact after the refresh"
        );
    }

    #[test]
    fn worker_count_does_not_change_degradation_outcome() {
        let (a, fa, _, _) = run_degradation_scenario(1);
        let (b, fb, _, _) = run_degradation_scenario(4);
        assert_eq!(a, b, "message streams identical for any worker count");
        assert_eq!(fa, fb);
    }

    #[test]
    fn poisoned_flush_quarantines_only_that_client() {
        use thinc_display::drawable::SCREEN;
        use thinc_net::link::NetworkConfig;

        crate::parallel::silence_panics(|| {
            for workers in [1, 4] {
                let mut s =
                    SharedSession::new(64, 64, PixelFormat::Rgb888, "host").with_workers(workers);
                s.auth_mut().enable_sharing("pw");
                let owner = s
                    .attach(&Credentials::Owner { user: "host".into() }, 64, 64)
                    .unwrap();
                let peer = s
                    .attach(
                        &Credentials::Peer {
                            user: "guest".into(),
                            password: "pw".into(),
                        },
                        64,
                        64,
                    )
                    .unwrap();
                let mut store = DrawableStore::new(64, 64, PixelFormat::Rgb888);
                let mut links = vec![
                    (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
                    (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
                ];
                store
                    .screen_mut()
                    .fill_rect(&Rect::new(0, 0, 64, 64), Color::rgb(10, 20, 30));
                s.solid_fill(&store, SCREEN, Rect::new(0, 0, 64, 64), Color::rgb(10, 20, 30));
                s.poison_next_flush(peer);
                let mut stream = Vec::new();
                for i in 0..20u64 {
                    let out = s.flush_all(SimTime((i + 1) * 100_000), &mut links);
                    for (id, msgs) in out {
                        if id == owner {
                            stream.extend(msgs.into_iter().map(|(_, m)| m));
                        } else {
                            assert!(msgs.is_empty(), "quarantined client delivers nothing");
                        }
                    }
                    if s.backlog(owner) == 0 {
                        break;
                    }
                }
                assert!(s.client_quarantined(peer), "workers={workers}");
                assert!(!s.client_quarantined(owner));
                assert_eq!(s.quarantined_count(), 1);
                assert_eq!(s.client_resilience(peer).unwrap().panics_quarantined(), 1);
                assert_eq!(s.client_resilience(owner).unwrap().panics_quarantined(), 0);
                // The session kept serving: the healthy client
                // converges byte-exact.
                let mut client = thinc_client::ThincClient::new(64, 64, PixelFormat::Rgb888);
                for m in &stream {
                    client.apply(m);
                }
                assert_eq!(client.framebuffer().data(), store.screen().data());
            }
        });
    }

    /// Runs a two-client cached session over clean links: the same
    /// tile is redrawn every round, so rounds after the first travel
    /// as cache references. Returns the per-client message streams,
    /// the per-client framebuffers after stream-layer resolution, and
    /// the screen bytes.
    fn run_cache_scenario(workers: usize) -> (Vec<Vec<Message>>, Vec<Vec<u8>>, Vec<u8>) {
        use thinc_display::drawable::SCREEN;
        use thinc_net::link::NetworkConfig;

        let mut s = SharedSession::new(64, 64, PixelFormat::Rgb888, "host")
            .with_cache(thinc_protocol::DEFAULT_CACHE_BUDGET)
            .with_workers(workers);
        s.auth_mut().enable_sharing("pw");
        let owner = s
            .attach(&Credentials::Owner { user: "host".into() }, 64, 64)
            .unwrap();
        let _peer = s
            .attach(
                &Credentials::Peer {
                    user: "guest".into(),
                    password: "pw".into(),
                },
                64,
                64,
            )
            .unwrap();
        let mut store = DrawableStore::new(64, 64, PixelFormat::Rgb888);
        let mut links = vec![
            (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
            (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
        ];
        let secs = |t: f64| SimTime((t * 1e6) as u64);
        let mut streams = vec![Vec::new(), Vec::new()];
        let tile = vec![123u8; 16 * 16 * 3];
        for round in 0..3 {
            store
                .screen_mut()
                .put_raw(&Rect::new(0, 0, 16, 16), &tile);
            s.put_image(&store, SCREEN, Rect::new(0, 0, 16, 16), &tile);
            for epoch in 0..10 {
                let out = s.flush_all(secs(round as f64 + 0.05 * (epoch + 1) as f64), &mut links);
                for (id, msgs) in out {
                    let idx = if id == owner { 0 } else { 1 };
                    streams[idx].extend(msgs.into_iter().map(|(_, m)| m));
                }
                if (0..s.client_count() as u32).all(|c| s.backlog(ClientId(c)) == 0) {
                    break;
                }
            }
        }
        // Resolve each stream through the client's wire layer (which
        // owns the content store) and read back the framebuffers.
        let mut fbs = Vec::new();
        for stream in &streams {
            let mut sc = thinc_client::StreamClient::new(64, 64, PixelFormat::Rgb888);
            for m in stream {
                sc.feed(&thinc_protocol::wire::encode_message(m));
            }
            assert!(sc.take_cache_miss().is_none(), "no misses on clean links");
            fbs.push(sc.client().framebuffer().data().to_vec());
        }
        (streams, fbs, store.screen().data().to_vec())
    }

    #[test]
    fn cached_session_substitutes_refs_and_converges_byte_exact() {
        let (streams, fbs, screen) = run_cache_scenario(1);
        for (stream, fb) in streams.iter().zip(&fbs) {
            let refs = stream
                .iter()
                .filter(|m| matches!(m, Message::CacheRef { .. }))
                .count();
            assert!(refs >= 2, "repeat rounds must travel as references");
            assert_eq!(fb, &screen, "cached stream resolves byte-exact");
        }
    }

    #[test]
    fn worker_count_does_not_change_cached_streams() {
        let (a, fa, _) = run_cache_scenario(1);
        let (b, fb, _) = run_cache_scenario(4);
        assert_eq!(a, b, "cached streams identical for any worker count");
        assert_eq!(fa, fb);
    }

    #[test]
    fn client_cache_miss_requeues_the_exact_payload() {
        use thinc_display::drawable::SCREEN;
        use thinc_net::link::NetworkConfig;
        let mut s = SharedSession::new(64, 64, PixelFormat::Rgb888, "host")
            .with_cache(thinc_protocol::DEFAULT_CACHE_BUDGET);
        let id = s
            .attach(&Credentials::Owner { user: "host".into() }, 64, 64)
            .unwrap();
        let store = DrawableStore::new(64, 64, PixelFormat::Rgb888);
        let mut links = vec![(
            NetworkConfig::lan_desktop().connect().down,
            PacketTrace::new(),
        )];
        let secs = |t: f64| SimTime((t * 1e6) as u64);
        let tile = vec![9u8; 16 * 16 * 3];
        s.put_image(&store, SCREEN, Rect::new(0, 0, 16, 16), &tile);
        let mut sent = Vec::new();
        for epoch in 0..10 {
            let out = s.flush_all(secs(0.05 * (epoch + 1) as f64), &mut links);
            sent.extend(out.into_iter().flat_map(|(_, m)| m).map(|(_, m)| m));
            if s.backlog(id) == 0 {
                break;
            }
        }
        let cached = sent
            .iter()
            .find(|m| m.cache_key().is_some())
            .expect("a cacheable payload was sent");
        let hash = cached.cache_key().unwrap();
        // A miss for a held hash queues the byte-exact payload again.
        assert!(s.client_cache_miss(id, hash));
        let (pipe, trace) = &mut links[0];
        let out = s.flush_client(id, secs(2.0), pipe, trace);
        let resent = &out[0].1;
        assert_eq!(
            thinc_protocol::wire::encode_message(resent),
            thinc_protocol::wire::encode_message(cached),
            "fallback must be byte-exact"
        );
        // A miss for an unknown hash cannot be satisfied.
        assert!(!s.client_cache_miss(id, 0xDEAD_BEEF));
        let m = s.client_resilience(id).unwrap();
        assert_eq!(m.cache_misses(), 2);
    }

    // ---- checkpoint / restore / warm failover ----

    /// A fully-featured two-client session with some delivered traffic
    /// and some backlog, plus the drawable store driving it and the
    /// per-client messages its internal flush epochs already delivered
    /// (a client replaying the stream from scratch needs them too).
    fn checkpointable_session() -> (
        SharedSession,
        thinc_display::drawable::DrawableStore,
        Vec<Vec<Message>>,
    ) {
        use thinc_display::drawable::SCREEN;
        use thinc_net::link::NetworkConfig;

        let mut s = SharedSession::new(64, 64, PixelFormat::Rgb888, "host")
            .with_liveness(LivenessConfig::default())
            .with_degradation(DegradationConfig::default())
            .with_buffer_bound(512 * 1024)
            .with_cache(thinc_protocol::DEFAULT_CACHE_BUDGET)
            .with_workers(2);
        s.auth_mut().enable_sharing("pw");
        s.attach(&Credentials::Owner { user: "host".into() }, 64, 64)
            .unwrap();
        s.attach(
            &Credentials::Peer { user: "guest".into(), password: "pw".into() },
            32,
            32,
        )
        .unwrap();
        let mut store = DrawableStore::new(64, 64, PixelFormat::Rgb888);
        store
            .screen_mut()
            .fill_rect(&Rect::new(0, 0, 64, 64), Color::rgb(40, 80, 120));
        s.solid_fill(&store, SCREEN, Rect::new(0, 0, 64, 64), Color::rgb(40, 80, 120));
        let mut links = vec![
            (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
            (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
        ];
        // A couple of flush epochs: populates ledgers and stats but
        // deliberately leaves backlog (mid-flight state).
        let mut delivered = vec![Vec::new(), Vec::new()];
        for i in 0..2u64 {
            for (j, (_, msgs)) in s
                .flush_all(SimTime((i + 1) * 10_000), &mut links)
                .into_iter()
                .enumerate()
            {
                delivered[j].extend(msgs.into_iter().map(|(_, m)| m));
            }
        }
        store
            .screen_mut()
            .fill_rect(&Rect::new(4, 4, 24, 24), Color::rgb(200, 10, 10));
        s.solid_fill(&store, SCREEN, Rect::new(4, 4, 24, 24), Color::rgb(200, 10, 10));
        (s, store, delivered)
    }

    #[test]
    fn restore_re_checkpoints_byte_exact() {
        let (s, store, _) = checkpointable_session();
        let c1 = s.checkpoint(store.screen());
        let restored = SharedSession::restore(&c1).expect("valid image restores");
        let c2 = restored.checkpoint(store.screen());
        assert_eq!(c1, c2, "checkpoint(restore(c)) must equal c");
        assert_eq!(restored.session_id(), s.session_id());
        assert_eq!(restored.client_ids(), s.client_ids());
        for id in s.client_ids() {
            assert_eq!(restored.client_pending_bytes(id), s.client_pending_bytes(id));
            assert_eq!(restored.client_cache_keys(id), s.client_cache_keys(id));
        }
    }

    #[test]
    fn queued_liveness_probes_are_not_checkpointed() {
        use thinc_net::link::NetworkConfig;

        let (mut s, store, _) = checkpointable_session();
        let owner = s.client_ids()[0];
        // Past the ping interval: polling queues a probe (and counts
        // it) on the live incarnation.
        let t = SimTime(6_000_000);
        s.set_time(t);
        assert!(matches!(
            s.poll_client_liveness(owner, t),
            LivenessVerdict::SendPing { .. }
        ));
        let image = s.checkpoint(store.screen());
        // The image still restores and re-checkpoints byte-exact with
        // the probe queued on the live side...
        let restored = SharedSession::restore(&image).expect("valid image restores");
        assert_eq!(restored.checkpoint(store.screen()), image);
        // ...and the standby never delivers the dead incarnation's
        // ping — its own fresh tracker issues (and counts) probes —
        // so pong<=ping conservation survives the takeover.
        let mut restored = restored;
        let mut links = vec![
            (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
            (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
        ];
        for i in 0..20u64 {
            for (_, msgs) in restored.flush_all(SimTime(t.0 + (i + 1) * 10_000), &mut links) {
                for (_, m) in msgs {
                    assert!(
                        !matches!(m, Message::Ping { .. }),
                        "standby delivered a probe its telemetry never counted"
                    );
                }
            }
        }
    }

    #[test]
    fn corrupt_session_checkpoints_are_typed_errors() {
        let (s, store, _) = checkpointable_session();
        let image = s.checkpoint(store.screen());
        for cut in 0..image.len().min(200) {
            assert!(SharedSession::restore(&image[..cut]).is_err());
        }
        // CRC catches every single-bit flip in the payload; header
        // flips land on magic/version/length checks instead. Either
        // way: typed error, no panic, no partial session.
        for byte in (0..image.len()).step_by(37) {
            let mut bad = image.clone();
            bad[byte] ^= 0x10;
            assert!(SharedSession::restore(&bad).is_err(), "flip at {byte}");
        }
    }

    #[test]
    fn warm_resume_ships_only_the_stale_tiles() {
        use thinc_display::drawable::SCREEN;
        use thinc_net::link::NetworkConfig;

        let (mut s, mut store, mut delivered) = checkpointable_session();
        let mut links = vec![
            (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
            (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
        ];
        // Drain fully so the pre-crash clients are converged.
        let owner = s.client_ids()[0];
        for i in 0..50u64 {
            for (j, (_, msgs)) in s
                .flush_all(SimTime(100_000 + i * 10_000), &mut links)
                .into_iter()
                .enumerate()
            {
                delivered[j].extend(msgs.into_iter().map(|(_, m)| m));
            }
            if (0..s.client_count() as u32).all(|c| s.backlog(ClientId(c)) == 0) {
                break;
            }
        }
        let digest_before = crate::checkpoint::cache_digest(&s.client_cache_keys(owner));
        let image = s.checkpoint(store.screen());

        // The "server" dies; drawing continues against the live store
        // (16 tile rows change) before the standby restores.
        store
            .screen_mut()
            .fill_rect(&Rect::new(0, 0, 64, 16), Color::rgb(9, 200, 9));
        let mut restored = SharedSession::restore(&image).unwrap();
        restored.solid_fill(&store, SCREEN, Rect::new(0, 0, 64, 16), Color::rgb(9, 200, 9));
        // The restored session does not yet know the redialed client
        // state is intact: the resume token proves it.
        let sid = restored.session_id();
        let warm = restored.resume_client(sid, owner, digest_before, store.screen());
        let ResumeOutcome::Warm { delta_area } = warm else {
            panic!("matching token must resume warm, got {warm:?}");
        };
        assert!(delta_area > 0, "screen changed while down");
        assert!(
            delta_area <= 64 * 16 + 64 * 32,
            "delta covers the changed band (plus the still-undelivered backlog), \
             not the whole screen: {delta_area}"
        );
        assert_eq!(
            restored.client_resilience(owner).unwrap().resumes(),
            1,
            "warm resume is counted"
        );

        // A stale token (store digest mismatch) falls back cold: cache
        // reset on the server side, full view owed, counted.
        let guest = restored.client_ids()[1];
        let cold = restored.resume_client(sid, guest, 0xBAD, store.screen());
        assert!(matches!(cold, ResumeOutcome::Cold { reason: "cache digest mismatch" }));
        assert!(restored.client_cache_keys(guest).is_empty(), "ledger reset");
        assert_eq!(restored.client_resilience(guest).unwrap().cold_fallbacks(), 1);
        // Unknown session / unknown client / quarantined: cold, no touch.
        assert!(matches!(
            restored.resume_client(sid ^ 1, owner, digest_before, store.screen()),
            ResumeOutcome::Cold { reason: "unknown session" }
        ));
        assert!(matches!(
            restored.resume_client(sid, ClientId(999), 0, store.screen()),
            ResumeOutcome::Cold { reason: "unknown client" }
        ));

        // Both clients converge byte-exact after the failover; the
        // warm client's bill is a fraction of the cold one's.
        let warm_before = restored.client_sent_bytes(owner);
        let cold_before = restored.client_sent_bytes(guest);
        let mut links = vec![
            (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
            (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
        ];
        for i in 0..80u64 {
            for (j, (_, msgs)) in restored
                .flush_all(SimTime(10_000_000 + i * 10_000), &mut links)
                .into_iter()
                .enumerate()
            {
                delivered[j].extend(msgs.into_iter().map(|(_, m)| m));
            }
            if (0..restored.client_count() as u32)
                .all(|c| restored.backlog(ClientId(c)) == 0)
            {
                break;
            }
        }
        let mut sc = thinc_client::StreamClient::new(64, 64, PixelFormat::Rgb888);
        for m in &delivered[0] {
            sc.feed(&thinc_protocol::wire::encode_message(m));
        }
        assert_eq!(
            sc.client().framebuffer().data(),
            store.screen().data(),
            "warm-resumed client converges byte-exact"
        );
        let warm_bytes = restored.client_sent_bytes(owner) - warm_before;
        let cold_bytes = restored.client_sent_bytes(guest) - cold_before;
        assert!(
            warm_bytes < cold_bytes,
            "warm resume ({warm_bytes} B to a 64x64 viewport) must undercut \
             cold reconnect ({cold_bytes} B to a 32x32 viewport)"
        );
    }
}
