//! Session management: authentication and multi-client screen
//! sharing (§7).
//!
//! "Our authentication model requires the user to have a valid
//! account on the server system and to be the owner of the session
//! she is connecting to. To support multiple users collaborating in a
//! screen-sharing session, the authentication model is extended to
//! allow host users to specify a session password that is then used
//! by peers connecting to the shared session."
//!
//! [`SharedSession`] multiplexes one display over any number of
//! clients: operations are translated once, and the resulting
//! commands fan out to a per-client buffer with per-client viewport
//! scaling — so a PDA peer can watch a desktop host's session.
//!
//! Per-client work (command scaling, buffering, flush-time RAW
//! compression) is embarrassingly parallel: every client owns its
//! delivery state. [`SharedSession::with_workers`] fans that work out
//! over [`crate::parallel::for_each_mut`] scoped threads; results are
//! merged in client-id order, so output is bit-identical for every
//! worker count.

use thinc_display::drawable::{DrawableId, DrawableStore};
use thinc_display::driver::VideoDriver;
use thinc_net::tcp::TcpPipe;
use thinc_net::time::SimTime;
use thinc_net::trace::PacketTrace;
use thinc_protocol::commands::DisplayCommand;
use thinc_protocol::message::Message;
use thinc_raster::{Color, Framebuffer, PixelFormat, Rect, YuvFrame};

use crate::buffer::ClientBuffer;
use crate::liveness::{LivenessConfig, LivenessTracker, LivenessVerdict};
use crate::scaling::ScalePolicy;
use crate::translator::Translator;
use crate::video::VideoStreamManager;

/// Credentials presented by a connecting client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Credentials {
    /// The session owner, authenticated by the host system (the
    /// prototype uses PAM; here, an account registry).
    Owner {
        /// Account name.
        user: String,
    },
    /// A collaborating peer presenting the session password.
    Peer {
        /// Display name of the peer.
        user: String,
        /// The shared-session password.
        password: String,
    },
}

/// Why a connection was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// The claimed owner does not own this session.
    NotOwner,
    /// Peer connections are not enabled (no session password set).
    SharingDisabled,
    /// The session password did not match.
    BadPassword,
}

/// The session's authentication policy.
#[derive(Debug, Clone)]
pub struct SessionAuth {
    owner: String,
    session_password: Option<String>,
}

impl SessionAuth {
    /// A session owned by `owner`, with sharing disabled.
    pub fn new(owner: &str) -> Self {
        Self {
            owner: owner.to_string(),
            session_password: None,
        }
    }

    /// Enables screen sharing with the given session password.
    pub fn enable_sharing(&mut self, password: &str) {
        self.session_password = Some(password.to_string());
    }

    /// Disables peer connections.
    pub fn disable_sharing(&mut self) {
        self.session_password = None;
    }

    /// Validates credentials.
    pub fn authenticate(&self, creds: &Credentials) -> Result<(), AuthError> {
        match creds {
            Credentials::Owner { user } => {
                if user == &self.owner {
                    Ok(())
                } else {
                    Err(AuthError::NotOwner)
                }
            }
            Credentials::Peer { password, .. } => match &self.session_password {
                None => Err(AuthError::SharingDisabled),
                Some(expected) if expected == password => Ok(()),
                Some(_) => Err(AuthError::BadPassword),
            },
        }
    }
}

/// Identifier of an attached client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u32);

/// Per-client delivery state.
struct ClientState {
    user: String,
    buffer: ClientBuffer,
    scale: ScalePolicy,
    video: VideoStreamManager,
    /// Audio/video messages awaiting this client's next flush.
    pending_av: Vec<Message>,
    /// Liveness tracking for this client (when the session enables it).
    liveness: Option<LivenessTracker>,
}

/// One display session shared by any number of authenticated clients.
///
/// Implements [`VideoDriver`], so it attaches below a window server
/// exactly like [`crate::server::ThincServer`] — but fans every
/// translated command out to each client's buffer, scaled to that
/// client's viewport.
pub struct SharedSession {
    width: u32,
    height: u32,
    format: PixelFormat,
    auth: SessionAuth,
    translator: Translator,
    /// Attached clients in id (= attach) order. A `Vec` rather than a
    /// map: ids are sequential, iteration order is the deterministic
    /// merge order for parallel fan-out, and sessions hold few clients.
    clients: Vec<(ClientId, ClientState)>,
    next_client: u32,
    now: SimTime,
    /// Liveness policy applied to every attached client.
    liveness: Option<LivenessConfig>,
    /// Scoped-thread workers for per-client fan-out (1 = inline).
    workers: usize,
}

impl SharedSession {
    /// Creates a session of the given geometry owned by `owner`.
    pub fn new(width: u32, height: u32, format: PixelFormat, owner: &str) -> Self {
        Self {
            width,
            height,
            format,
            auth: SessionAuth::new(owner),
            translator: Translator::new(),
            clients: Vec::new(),
            next_client: 0,
            now: SimTime::ZERO,
            liveness: None,
            workers: 1,
        }
    }

    /// Enables liveness tracking: every client attached from now on
    /// is probed when silent and declared dead past the timeout.
    pub fn with_liveness(mut self, config: LivenessConfig) -> Self {
        self.liveness = Some(config);
        self
    }

    /// Fans per-client broadcast and flush work out over up to
    /// `workers` scoped threads. Output is identical for every worker
    /// count (see [`crate::parallel`]); the default is 1 (inline).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    fn state(&self, id: ClientId) -> Option<&ClientState> {
        self.clients
            .iter()
            .find(|(cid, _)| *cid == id)
            .map(|(_, s)| s)
    }

    fn state_mut(&mut self, id: ClientId) -> Option<&mut ClientState> {
        self.clients
            .iter_mut()
            .find(|(cid, _)| *cid == id)
            .map(|(_, s)| s)
    }

    /// The authentication policy (enable/disable sharing here).
    pub fn auth_mut(&mut self) -> &mut SessionAuth {
        &mut self.auth
    }

    /// Advances the virtual clock (stamps video frames).
    pub fn set_time(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Attaches a client with a viewport, after authentication.
    pub fn attach(
        &mut self,
        creds: &Credentials,
        viewport_w: u32,
        viewport_h: u32,
    ) -> Result<ClientId, AuthError> {
        self.auth.authenticate(creds)?;
        let id = ClientId(self.next_client);
        self.next_client += 1;
        let user = match creds {
            Credentials::Owner { user } | Credentials::Peer { user, .. } => user.clone(),
        };
        let vw = viewport_w.clamp(1, self.width);
        let vh = viewport_h.clamp(1, self.height);
        let mut video = VideoStreamManager::new();
        video.set_scale(vw, self.width, vh, self.height);
        self.clients.push((
            id,
            ClientState {
                user,
                buffer: ClientBuffer::new().with_raw_compression(self.format.bytes_per_pixel()),
                scale: ScalePolicy::new(self.width, self.height, vw, vh),
                video,
                pending_av: Vec::new(),
                liveness: self.liveness.map(|c| LivenessTracker::new(c, self.now)),
            },
        ));
        Ok(id)
    }

    /// Records traffic from a client (input, pong — anything proves
    /// the connection lives).
    pub fn note_client_activity(&mut self, id: ClientId, now: SimTime) {
        if let Some(t) = self.state_mut(id).and_then(|c| c.liveness.as_mut()) {
            t.note_activity(now);
        }
    }

    /// Evaluates a client's liveness at `now`: a silent client gets a
    /// ping queued on its A/V channel; silence past the timeout marks
    /// it dead (its resources become reclaimable via
    /// [`reap_dead`](Self::reap_dead)). Returns `Alive` for unknown
    /// clients or when liveness is disabled.
    pub fn poll_client_liveness(&mut self, id: ClientId, now: SimTime) -> LivenessVerdict {
        let Some(state) = self.state_mut(id) else {
            return LivenessVerdict::Alive;
        };
        let Some(t) = state.liveness.as_mut() else {
            return LivenessVerdict::Alive;
        };
        let verdict = t.poll(now);
        if let LivenessVerdict::SendPing { seq } = verdict {
            state.pending_av.push(Message::Ping {
                seq,
                timestamp_us: now.as_micros(),
            });
        }
        verdict
    }

    /// Whether a client has been declared dead.
    pub fn client_dead(&self, id: ClientId) -> bool {
        self.state(id)
            .and_then(|c| c.liveness.as_ref())
            .is_some_and(|t| t.is_dead())
    }

    /// Detaches every dead client, freeing its buffers (a dead
    /// client's queues would otherwise accumulate updates forever).
    /// Returns the reaped ids; a reaped client reconnects by
    /// re-attaching and resyncing.
    pub fn reap_dead(&mut self) -> Vec<ClientId> {
        let dead: Vec<ClientId> = self
            .clients
            .iter()
            .filter(|(_, c)| c.liveness.as_ref().is_some_and(|t| t.is_dead()))
            .map(|(id, _)| *id)
            .collect();
        self.clients
            .retain(|(_, c)| !c.liveness.as_ref().is_some_and(|t| t.is_dead()));
        dead
    }

    /// Detaches a client.
    pub fn detach(&mut self, id: ClientId) {
        self.clients.retain(|(cid, _)| *cid != id);
    }

    /// Number of attached clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// The user name of an attached client.
    pub fn client_user(&self, id: ClientId) -> Option<&str> {
        self.state(id).map(|c| c.user.as_str())
    }

    /// Pending commands for a client.
    pub fn backlog(&self, id: ClientId) -> usize {
        self.state(id).map(|c| c.buffer.len()).unwrap_or(0)
    }

    /// Fans translated commands out to every client, scaled. Clients
    /// are independent, so the scaling/buffering runs on the session's
    /// worker pool; per-client push order is the command order either
    /// way.
    fn broadcast(&mut self, cmds: Vec<DisplayCommand>, screen: &Framebuffer) {
        let cmds = &cmds;
        crate::parallel::for_each_mut(&mut self.clients, self.workers, |_, (_, state)| {
            for cmd in cmds {
                if state.scale.is_identity() {
                    state.buffer.push(cmd.clone(), false);
                } else if let Some(scaled) = state.scale.transform(cmd, screen) {
                    state.buffer.push(scaled, false);
                }
            }
        });
    }

    /// Flushes one client's buffer over its own connection.
    pub fn flush_client(
        &mut self,
        id: ClientId,
        now: SimTime,
        pipe: &mut TcpPipe,
        trace: &mut PacketTrace,
    ) -> Vec<(SimTime, Message)> {
        let Some(state) = self.state_mut(id) else {
            return Vec::new();
        };
        flush_client_state(state, now, pipe, trace)
    }

    /// Flushes **every** client's buffer, each over its own
    /// connection, fanning the per-client work (A/V pacing, SRSF
    /// scheduling, flush-time RAW compression) out over the session's
    /// worker pool.
    ///
    /// `links[i]` is the `(pipe, trace)` pair of the i-th attached
    /// client — the same order as attach/[`ClientId`] order. The
    /// result is merged back in that order, so the output is
    /// bit-identical for every worker count.
    ///
    /// # Panics
    ///
    /// Panics if `links.len()` differs from [`client_count`]
    /// (Self::client_count).
    pub fn flush_all(
        &mut self,
        now: SimTime,
        links: &mut [(TcpPipe, PacketTrace)],
    ) -> Vec<(ClientId, Vec<(SimTime, Message)>)> {
        assert_eq!(
            links.len(),
            self.clients.len(),
            "one (pipe, trace) link per attached client"
        );
        let mut jobs: Vec<_> = self
            .clients
            .iter_mut()
            .zip(links.iter_mut())
            .map(|((id, state), link)| (*id, state, link, Vec::new()))
            .collect();
        crate::parallel::for_each_mut(&mut jobs, self.workers, |_, (_, state, link, out)| {
            *out = flush_client_state(state, now, &mut link.0, &mut link.1);
        });
        jobs.into_iter().map(|(id, _, _, out)| (id, out)).collect()
    }
}

/// The per-client flush body: A/V first (paced data), then the SRSF
/// display queues. A free function so the parallel fan-out can borrow
/// one client's state without holding the session.
fn flush_client_state(
    state: &mut ClientState,
    now: SimTime,
    pipe: &mut TcpPipe,
    trace: &mut PacketTrace,
) -> Vec<(SimTime, Message)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < state.pending_av.len() {
        let size = thinc_protocol::wire::encode_message(&state.pending_av[i]).len() as u64;
        if pipe.would_block(now, size) {
            break;
        }
        let msg = state.pending_av.remove(i);
        let (_, arrival) = pipe.send(now, size);
        trace.record(now, arrival, size, thinc_net::trace::Direction::Down, "video");
        out.push((arrival, msg));
        // `remove` shifted; keep index at 0 semantics.
        i = 0;
    }
    out.extend(state.buffer.flush(now, pipe, trace));
    out
}

impl VideoDriver for SharedSession {
    fn create_pixmap(&mut self, _store: &DrawableStore, id: DrawableId, w: u32, h: u32) {
        self.translator.create_pixmap(id, w, h);
    }

    fn free_pixmap(&mut self, _store: &DrawableStore, id: DrawableId) {
        self.translator.free_pixmap(id);
    }

    fn solid_fill(&mut self, store: &DrawableStore, target: DrawableId, rect: Rect, color: Color) {
        let cmds = self.translator.solid_fill(store, target, rect, color);
        self.broadcast(cmds, store.screen());
    }

    fn pattern_fill(
        &mut self,
        store: &DrawableStore,
        target: DrawableId,
        rect: Rect,
        tile: &Framebuffer,
    ) {
        let cmds = self.translator.pattern_fill(store, target, rect, tile);
        self.broadcast(cmds, store.screen());
    }

    fn stipple_fill(
        &mut self,
        store: &DrawableStore,
        target: DrawableId,
        rect: Rect,
        bits: &[u8],
        fg: Color,
        bg: Option<Color>,
    ) {
        let cmds = self.translator.stipple_fill(store, target, rect, bits, fg, bg);
        self.broadcast(cmds, store.screen());
    }

    fn copy_area(
        &mut self,
        store: &DrawableStore,
        src: DrawableId,
        dst: DrawableId,
        src_rect: Rect,
        dst_x: i32,
        dst_y: i32,
    ) {
        let cmds = self
            .translator
            .copy_area(store, src, dst, src_rect, dst_x, dst_y);
        self.broadcast(cmds, store.screen());
    }

    fn put_image(&mut self, store: &DrawableStore, target: DrawableId, rect: Rect, data: &[u8]) {
        let cmds = self.translator.put_image(store, target, rect, data);
        self.broadcast(cmds, store.screen());
    }

    fn composite(
        &mut self,
        store: &DrawableStore,
        target: DrawableId,
        rect: Rect,
        _data: &[u8],
        _op: thinc_raster::CompositeOp,
    ) {
        let cmds = self.translator.composite(store, target, rect);
        self.broadcast(cmds, store.screen());
    }

    fn video_display(&mut self, _store: &DrawableStore, frame: &YuvFrame, dst: Rect) {
        let ts = self.now.as_micros();
        for (_, state) in self.clients.iter_mut() {
            // Video messages bypass the display buffer ordering and go
            // through each client's own stream manager (which also
            // resamples for small viewports).
            let msgs = state.video.display_frame(frame, dst, ts);
            for m in msgs {
                // Wrap as display-path content so flushing stays
                // single-channel per client: the buffer only carries
                // DisplayCommand, so A/V keeps a side-channel. For
                // the shared session we deliver video immediately at
                // flush time via the pending list below.
                state.pending_av.push(m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_authenticates() {
        let auth = SessionAuth::new("ricardo");
        assert!(auth
            .authenticate(&Credentials::Owner {
                user: "ricardo".into()
            })
            .is_ok());
        assert_eq!(
            auth.authenticate(&Credentials::Owner { user: "mallory".into() }),
            Err(AuthError::NotOwner)
        );
    }

    #[test]
    fn silent_peer_is_pinged_then_reaped_while_active_owner_survives() {
        use thinc_net::time::SimDuration;
        let mut s = SharedSession::new(64, 64, PixelFormat::Rgb888, "host").with_liveness(
            LivenessConfig {
                timeout: SimDuration::from_secs_f64(10.0),
                ping_interval: SimDuration::from_secs_f64(2.0),
            },
        );
        s.auth_mut().enable_sharing("pw");
        let owner = s
            .attach(&Credentials::Owner { user: "host".into() }, 64, 64)
            .unwrap();
        let peer = s
            .attach(
                &Credentials::Peer {
                    user: "guest".into(),
                    password: "pw".into(),
                },
                32,
                32,
            )
            .unwrap();
        let secs = |x: f64| SimTime((x * 1e6) as u64);
        // The owner keeps talking; the peer goes silent.
        s.note_client_activity(owner, secs(3.0));
        assert!(matches!(
            s.poll_client_liveness(peer, secs(3.0)),
            LivenessVerdict::SendPing { .. }
        ));
        assert!(matches!(
            s.poll_client_liveness(owner, secs(4.0)),
            LivenessVerdict::Alive
        ));
        assert!(matches!(
            s.poll_client_liveness(peer, secs(11.0)),
            LivenessVerdict::Dead
        ));
        assert!(s.client_dead(peer));
        assert!(!s.client_dead(owner));
        assert_eq!(s.reap_dead(), vec![peer]);
        assert_eq!(s.client_count(), 1);
    }

    #[test]
    fn sharing_requires_password() {
        let mut auth = SessionAuth::new("host");
        let peer = Credentials::Peer {
            user: "guest".into(),
            password: "sosp2005".into(),
        };
        assert_eq!(auth.authenticate(&peer), Err(AuthError::SharingDisabled));
        auth.enable_sharing("sosp2005");
        assert!(auth.authenticate(&peer).is_ok());
        assert_eq!(
            auth.authenticate(&Credentials::Peer {
                user: "guest".into(),
                password: "wrong".into()
            }),
            Err(AuthError::BadPassword)
        );
        auth.disable_sharing();
        assert_eq!(auth.authenticate(&peer), Err(AuthError::SharingDisabled));
    }
}
