//! Determinism of the shared session's parallel fan-out: broadcasting
//! and flushing with N scoped-thread workers must produce exactly the
//! same wire messages, in the same order, at the same virtual times,
//! as the single-threaded path.

use thinc_core::session::{ClientId, Credentials};
use thinc_core::SharedSession;
use thinc_display::drawable::DrawableStore;
use thinc_display::driver::VideoDriver;
use thinc_display::SCREEN;
use thinc_net::tcp::{TcpParams, TcpPipe};
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::PacketTrace;
use thinc_protocol::message::Message;
use thinc_raster::{Color, PixelFormat, Rect, YuvFormat, YuvFrame};

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

/// Drives a three-client shared session (one identity viewport, two
/// scaled) through a mixed drawing workload and collects every flushed
/// message per client.
fn run(workers: usize) -> Vec<(ClientId, Vec<(SimTime, Message)>)> {
    let mut s = SharedSession::new(128, 96, PixelFormat::Rgb888, "host").with_workers(workers);
    s.auth_mut().enable_sharing("pw");
    s.attach(&Credentials::Owner { user: "host".into() }, 128, 96)
        .unwrap();
    for (i, (vw, vh)) in [(64u32, 48u32), (40, 30)].iter().enumerate() {
        s.attach(
            &Credentials::Peer {
                user: format!("peer{i}"),
                password: "pw".into(),
            },
            *vw,
            *vh,
        )
        .unwrap();
    }
    let store = DrawableStore::new(128, 96, PixelFormat::Rgb888);
    // A mixed workload: large RAW (compressed at flush), fills over
    // it (eviction/clipping), a stipple, a copy, and a video frame.
    s.put_image(&store, SCREEN, Rect::new(0, 0, 128, 64), &noise(128 * 64 * 3, 7));
    s.solid_fill(&store, SCREEN, Rect::new(8, 8, 40, 40), Color::rgb(10, 200, 30));
    s.stipple_fill(
        &store,
        SCREEN,
        Rect::new(16, 70, 64, 16),
        &noise(8 * 16, 11),
        Color::BLACK,
        Some(Color::WHITE),
    );
    s.copy_area(&store, SCREEN, SCREEN, Rect::new(0, 0, 32, 32), 90, 60);
    s.set_time(SimTime(1_000));
    s.video_display(
        &store,
        &YuvFrame::from_rgb(
            &{
                let mut fb = thinc_raster::Framebuffer::new(32, 24, PixelFormat::Rgb888);
                fb.put_raw(&Rect::new(0, 0, 32, 24), &noise(32 * 24 * 3, 13));
                fb
            },
            &Rect::new(0, 0, 32, 24),
            YuvFormat::Yv12,
        ),
        Rect::new(32, 32, 64, 48),
    );
    // A slow pipe per client, so flushing takes several rounds and
    // exercises RAW splitting and the leftover-reinsertion path.
    let mut links: Vec<(TcpPipe, PacketTrace)> = (0..3)
        .map(|_| {
            (
                TcpPipe::new(TcpParams {
                    bandwidth_bps: 4_000_000,
                    rtt: SimDuration::from_millis(10),
                    sndbuf_bytes: 12 * 1024,
                    ..TcpParams::default()
                }),
                PacketTrace::new(),
            )
        })
        .collect();
    let mut out: Vec<(ClientId, Vec<(SimTime, Message)>)> = Vec::new();
    for round in 0..300u64 {
        let now = SimTime(2_000 + round * 5_000);
        for (id, msgs) in s.flush_all(now, &mut links) {
            match out.iter_mut().find(|(cid, _)| *cid == id) {
                Some((_, all)) => all.extend(msgs),
                None => out.push((id, msgs)),
            }
        }
        if (0..3).all(|i| s.backlog(ClientId(i)) == 0) {
            break;
        }
    }
    for i in 0..3 {
        assert_eq!(s.backlog(ClientId(i)), 0, "client {i} did not drain");
    }
    out
}

#[test]
fn flush_all_is_bit_identical_across_worker_counts() {
    let serial = run(1);
    assert_eq!(serial.len(), 3);
    let total: usize = serial.iter().map(|(_, m)| m.len()).sum();
    assert!(total > 10, "workload too small to be meaningful: {total}");
    for workers in [2, 3, 8] {
        assert_eq!(run(workers), serial, "workers={workers}");
    }
}

#[test]
fn flush_all_merges_in_client_id_order() {
    let out = run(4);
    let ids: Vec<u32> = out.iter().map(|(id, _)| id.0).collect();
    assert_eq!(ids, vec![0, 1, 2]);
}
