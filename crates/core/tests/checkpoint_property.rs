//! Property tests of checkpoint decode hostility: any truncation or
//! single-bit flip of a valid checkpoint image yields a typed
//! [`CheckpointError`], never a panic and never a partially-restored
//! session — and after every rejected image the cold path (a fresh
//! session serving a full repaint) still works. The same contract the
//! wire codec proves in `crates/protocol/tests/property.rs`, applied
//! to the persistence layer.

use proptest::prelude::*;
use thinc_core::server::{ServerConfig, ThincServer};
use thinc_core::session::{Credentials, SharedSession};
use thinc_display::drawable::{DrawableStore, SCREEN};
use thinc_display::driver::VideoDriver;
use thinc_net::link::NetworkConfig;
use thinc_net::time::SimTime;
use thinc_net::trace::PacketTrace;
use thinc_raster::{Color, PixelFormat, Rect};

/// Builds a session with live mid-flight state — two clients, cached
/// tiles, undelivered backlog — whose checkpoint exercises every
/// section of the image format. `salt` perturbs the painted content
/// so different cases attack different byte patterns.
fn busy_session(salt: u64) -> (SharedSession, DrawableStore) {
    let mut s = SharedSession::new(64, 48, PixelFormat::Rgb888, "host")
        .with_buffer_bound(256 * 1024)
        .with_cache(64 * 1024)
        .with_liveness(thinc_core::LivenessConfig::default());
    s.auth_mut().enable_sharing("pw");
    s.attach(&Credentials::Owner { user: "host".into() }, 64, 48)
        .unwrap();
    s.attach(
        &Credentials::Peer {
            user: "guest".into(),
            password: "pw".into(),
        },
        32,
        24,
    )
    .unwrap();
    let mut store = DrawableStore::new(64, 48, PixelFormat::Rgb888);
    let c = Color::rgb(salt as u8, (salt >> 8) as u8, (salt >> 16) as u8);
    store.screen_mut().fill_rect(&Rect::new(0, 0, 64, 48), c);
    s.solid_fill(&store, SCREEN, Rect::new(0, 0, 64, 48), c);
    // Incompressible noise so the image carries real payload bytes.
    let mut x = salt | 1;
    let noise: Vec<u8> = (0..24 * 16 * 3)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect();
    store.screen_mut().put_raw(&Rect::new(4, 4, 24, 16), &noise);
    s.put_image(&store, SCREEN, Rect::new(4, 4, 24, 16), &noise);
    // One partial flush: ledgers populated, backlog left in flight.
    let mut links = vec![
        (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
        (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
    ];
    let _ = s.flush_all(SimTime(10_000), &mut links);
    store.screen_mut().put_raw(&Rect::new(10, 20, 24, 16), &noise);
    s.put_image(&store, SCREEN, Rect::new(10, 20, 24, 16), &noise);
    (s, store)
}

/// The cold path a rejected image falls back to: a fresh session
/// attaches and serves. Asserted after every hostile decode so "typed
/// error" provably means "recoverable", not just "did not panic".
fn cold_start_works() {
    let mut cold = SharedSession::new(64, 48, PixelFormat::Rgb888, "host");
    cold.attach(&Credentials::Owner { user: "host".into() }, 64, 48)
        .expect("cold start attaches after a rejected checkpoint");
}

proptest! {
    /// Every truncation of a session image is a typed error.
    #[test]
    fn truncated_session_images_are_typed_errors(salt in any::<u64>(), cut_pick in any::<u32>()) {
        let (s, store) = busy_session(salt);
        let image = s.checkpoint(store.screen());
        let cut = (cut_pick as usize) % image.len();
        prop_assert!(SharedSession::restore(&image[..cut]).is_err());
        cold_start_works();
    }

    /// Every single-bit flip of a session image is a typed error: the
    /// header checks catch structural damage, the CRC32 catches all
    /// payload damage (CRC32 detects every single-bit error).
    #[test]
    fn bit_flipped_session_images_are_typed_errors(
        salt in any::<u64>(),
        pos in any::<u32>(),
        bit in 0u8..8,
    ) {
        let (s, store) = busy_session(salt);
        let mut image = s.checkpoint(store.screen());
        let idx = (pos as usize) % image.len();
        image[idx] ^= 1 << bit;
        prop_assert!(
            SharedSession::restore(&image).is_err(),
            "flip at byte {idx} bit {bit} was accepted"
        );
        cold_start_works();
    }

    /// Multi-bit vandalism (arbitrary flips, splices, random tails)
    /// never panics; if it is somehow accepted it must behave like a
    /// real session (re-checkpointing without panicking).
    #[test]
    fn vandalized_session_images_never_panic(
        salt in any::<u64>(),
        flips in prop::collection::vec((any::<u32>(), 0u8..8), 1..64),
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let (s, store) = busy_session(salt);
        let mut image = s.checkpoint(store.screen());
        for (pos, bit) in &flips {
            let idx = (*pos as usize) % image.len();
            image[idx] ^= 1 << bit;
        }
        image.extend(tail);
        if let Ok(restored) = SharedSession::restore(&image) {
            let _ = restored.checkpoint(store.screen());
        }
        cold_start_works();
    }

    /// Pure garbage is never a session.
    #[test]
    fn garbage_is_never_a_session(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        prop_assert!(SharedSession::restore(&bytes).is_err());
        cold_start_works();
    }

    /// The single-client server checkpoint holds the same contract:
    /// truncations and single-bit flips are typed errors, and the
    /// cold path (a fresh server) survives every rejection.
    #[test]
    fn hostile_server_images_are_typed_errors(
        cut_pick in any::<u32>(),
        pos in any::<u32>(),
        bit in 0u8..8,
    ) {
        let server = ThincServer::new(ServerConfig::default());
        let image = server.checkpoint();
        let cut = (cut_pick as usize) % image.len();
        prop_assert!(ThincServer::restore(&image[..cut]).is_err());
        let mut flipped = image.clone();
        let idx = (pos as usize) % flipped.len();
        flipped[idx] ^= 1 << bit;
        prop_assert!(ThincServer::restore(&flipped).is_err());
        let _ = ThincServer::new(ServerConfig::default());
    }
}
