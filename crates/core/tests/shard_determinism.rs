//! Shard-determinism property suite: for any client set and workload,
//! the sharded manager produces bit-identical per-client wire streams
//! for every shard count and every worker count — including mid-run
//! attach and disconnect — and the encode-once plane produces the
//! same number of distinct wire forms no matter how the clients are
//! partitioned.
//!
//! The workspace is dependency-free, so this is a hand-rolled,
//! seeded property test: each seed generates a random client
//! population and drawing schedule, runs it under every
//! (shards, workers) combination, and compares the full streams.

use thinc_core::session::{ClientId, Credentials};
use thinc_core::{ShardedManager, SharedSession};
use thinc_display::drawable::DrawableStore;
use thinc_display::driver::VideoDriver;
use thinc_display::SCREEN;
use thinc_net::tcp::{TcpParams, TcpPipe};
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::PacketTrace;
use thinc_protocol::message::Message;
use thinc_raster::{Color, PixelFormat, Rect};

const W: u32 = 160;
const H: u32 = 120;

/// Splitmix-style LCG; the only randomness source in the suite.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut r = Rng(seed | 1);
    (0..len).map(|_| r.next() as u8).collect()
}

fn link(rng: &mut Rng) -> (TcpPipe, PacketTrace) {
    // A mix of LAN-ish and WAN-ish pipes, chosen deterministically
    // from the schedule stream so every configuration sees the same
    // link for the same client.
    let lan = rng.below(2) == 0;
    (
        TcpPipe::new(TcpParams {
            bandwidth_bps: if lan { 20_000_000 } else { 3_000_000 },
            rtt: SimDuration::from_millis(if lan { 2 } else { 40 }),
            sndbuf_bytes: 16 * 1024,
            ..TcpParams::default()
        }),
        PacketTrace::new(),
    )
}

fn viewport(rng: &mut Rng) -> (u32, u32) {
    // Two thirds identity (same screen), the rest scaled — so the
    // plane sees both the broadcast-identical class and per-policy
    // transformed classes.
    match rng.below(3) {
        0 => (W / 2, H / 2),
        _ => (W, H),
    }
}

fn attach_peer(m: &mut ShardedManager, n: &mut usize, rng: &mut Rng) -> ClientId {
    let (vw, vh) = viewport(rng);
    let l = link(rng);
    *n += 1;
    m.attach(
        &Credentials::Peer {
            user: format!("peer{n}"),
            password: "pw".into(),
        },
        vw,
        vh,
        l,
    )
    .expect("peer attach")
}

/// One random drawing step against the session.
fn draw(s: &mut SharedSession, store: &DrawableStore, rng: &mut Rng) {
    let x = rng.below((W - 64) as u64) as i32;
    let y = rng.below((H - 48) as u64) as i32;
    match rng.below(4) {
        0 => {
            // Large RAW: above both the compression floor and the
            // plane's minimum payload, so it exercises encode-once.
            let r = Rect::new(x, y, 64, 48);
            s.put_image(store, SCREEN, r, &noise(64 * 48 * 3, rng.next()));
        }
        1 => {
            let r = Rect::new(x, y, 32 + rng.below(32) as u32, 24);
            s.solid_fill(
                store,
                SCREEN,
                r,
                Color::rgb(rng.next() as u8, rng.next() as u8, rng.next() as u8),
            );
        }
        2 => {
            let r = Rect::new(x, y, 32, 16);
            s.stipple_fill(
                store,
                SCREEN,
                r,
                &noise(4 * 16, rng.next()),
                Color::BLACK,
                Some(Color::WHITE),
            );
        }
        _ => {
            s.copy_area(store, SCREEN, SCREEN, Rect::new(0, 0, 48, 32), x, y);
        }
    }
}

struct RunOutput {
    /// Per-client streams, ascending id, concatenated across epochs.
    streams: Vec<(ClientId, Vec<(SimTime, Message)>)>,
    /// Total distinct wire forms the plane produced (sum over shards).
    encodes: u64,
    /// Total plane-served sends (sum over shards).
    shared_sends: u64,
}

/// Drives one full scenario for `seed` under a given partitioning and
/// worker count. Everything that shapes the workload is derived from
/// `seed` alone, so two runs with different (shards, workers) see the
/// same clients, links, drawing schedule, and attach/detach times.
fn run(seed: u64, shards: usize, workers: usize) -> RunOutput {
    let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
    let mut session = SharedSession::new(W, H, PixelFormat::Rgb888, "host").with_workers(workers);
    session.auth_mut().enable_sharing("pw");
    let mut m = ShardedManager::new(session, shards);
    let mut peers = 0usize;
    m.attach(&Credentials::Owner { user: "host".into() }, W, H, link(&mut rng))
        .expect("owner attach");
    let initial = 6 + rng.below(6) as usize;
    for _ in 0..initial {
        attach_peer(&mut m, &mut peers, &mut rng);
    }
    let store = DrawableStore::new(W, H, PixelFormat::Rgb888);

    let mut out: Vec<(ClientId, Vec<(SimTime, Message)>)> = Vec::new();
    let collect = |epoch: Vec<(ClientId, Vec<(SimTime, Message)>)>,
                       out: &mut Vec<(ClientId, Vec<(SimTime, Message)>)>| {
        for (id, msgs) in epoch {
            match out.iter_mut().find(|(cid, _)| *cid == id) {
                Some((_, all)) => all.extend(msgs),
                None => out.push((id, msgs)),
            }
        }
    };

    let epochs = 14 + rng.below(6);
    let mut now = SimTime(1_000);
    for epoch in 0..epochs {
        for _ in 0..1 + rng.below(3) {
            draw(m.session_mut(), &store, &mut rng);
        }
        // Mid-run churn: a new viewer joins partway through, and an
        // established one disconnects a few epochs later.
        if epoch == 5 {
            attach_peer(&mut m, &mut peers, &mut rng);
        }
        if epoch == 9 {
            let ids = m.session().client_ids();
            let victim = ids[1 + rng.below((ids.len() - 1) as u64) as usize];
            assert!(m.detach(victim).is_some(), "victim attached");
        }
        collect(m.flush_epoch(now), &mut out);
        now = SimTime(now.0 + 6_000);
    }
    // Drain: no more drawing, flush until every surviving client's
    // backlog hits zero.
    for _ in 0..400 {
        if m.session()
            .client_ids()
            .iter()
            .all(|id| m.session().backlog(*id) == 0)
        {
            break;
        }
        collect(m.flush_epoch(now), &mut out);
        now = SimTime(now.0 + 6_000);
    }
    for id in m.session().client_ids() {
        assert_eq!(
            m.session().backlog(id),
            0,
            "seed={seed} shards={shards} workers={workers}: client {id:?} did not drain"
        );
    }
    out.sort_by_key(|(id, _)| *id);

    let (mut encodes, mut shared_sends) = (0, 0);
    for s in 0..m.shard_count() {
        encodes += m.shard_metrics(s).payload_encodes();
        shared_sends += m.shard_metrics(s).shared_sends();
    }
    RunOutput { streams: out, encodes, shared_sends }
}

/// Core property: (shards, workers) never changes the bytes.
fn assert_invariant(seed: u64) {
    let reference = run(seed, 1, 1);
    let msgs: usize = reference.streams.iter().map(|(_, m)| m.len()).sum();
    assert!(
        msgs > 40,
        "seed={seed}: workload too small to be meaningful ({msgs} msgs)"
    );
    assert!(
        reference.shared_sends > 0,
        "seed={seed}: plane never engaged — workload has no shareable payloads"
    );
    for shards in [2usize, 8] {
        for workers in [1usize, 4] {
            let got = run(seed, shards, workers);
            assert_eq!(
                got.streams, reference.streams,
                "seed={seed}: streams diverge at shards={shards} workers={workers}"
            );
            assert_eq!(
                got.encodes, reference.encodes,
                "seed={seed}: plane encode count diverges at shards={shards} workers={workers}"
            );
            assert_eq!(
                got.shared_sends, reference.shared_sends,
                "seed={seed}: plane send count diverges at shards={shards} workers={workers}"
            );
        }
    }
    // And workers alone on the single-shard path.
    let got = run(seed, 1, 4);
    assert_eq!(got.streams, reference.streams, "seed={seed}: workers=4 single shard");
}

#[test]
fn random_populations_are_bit_identical_across_shard_and_worker_counts() {
    for seed in [3, 17, 92] {
        assert_invariant(seed);
    }
}

#[test]
fn churn_heavy_population_is_bit_identical() {
    // A seed chosen for a larger initial population (the `below(6)`
    // draw lands high), so the detach at epoch 9 removes a client
    // with real backlog.
    assert_invariant(0xFEED);
}

#[test]
fn plane_sharing_actually_amortizes_encodes() {
    // Sanity on the perf claim itself, not just determinism: with
    // identity viewports dominating, distinct wire forms must be far
    // fewer than plane-served sends.
    let r = run(42, 8, 4);
    assert!(
        r.encodes * 2 < r.shared_sends,
        "encodes={} not amortized over sends={}",
        r.encodes,
        r.shared_sends
    );
}
