//! Points and rectangles with the coordinate conventions of a display
//! driver: `x`/`y` are signed (commands may reference offscreen or
//! clipped coordinates), widths and heights are unsigned.

/// A point on (or off) the screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate, in pixels, growing rightward.
    pub x: i32,
    /// Vertical coordinate, in pixels, growing downward.
    pub y: i32,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: i32, y: i32) -> Self {
        Self { x, y }
    }

    /// Returns this point translated by `(dx, dy)`.
    pub const fn translated(self, dx: i32, dy: i32) -> Self {
        Self::new(self.x + dx, self.y + dy)
    }
}

/// An axis-aligned rectangle: origin plus extent.
///
/// A rectangle with zero width or height is *empty*: it covers no pixels
/// and intersects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Left edge.
    pub x: i32,
    /// Top edge.
    pub y: i32,
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle with origin `(x, y)` and extent `w`×`h`.
    pub const fn new(x: i32, y: i32, w: u32, h: u32) -> Self {
        Self { x, y, w, h }
    }

    /// Creates a rectangle from inclusive-exclusive edges.
    ///
    /// Returns an empty rectangle when `x2 <= x1` or `y2 <= y1`.
    pub fn from_edges(x1: i32, y1: i32, x2: i32, y2: i32) -> Self {
        if x2 <= x1 || y2 <= y1 {
            Self::default()
        } else {
            Self::new(x1, y1, (x2 - x1) as u32, (y2 - y1) as u32)
        }
    }

    /// Exclusive right edge.
    pub const fn right(&self) -> i32 {
        self.x + self.w as i32
    }

    /// Exclusive bottom edge.
    pub const fn bottom(&self) -> i32 {
        self.y + self.h as i32
    }

    /// Whether this rectangle covers no pixels.
    pub const fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Number of pixels covered.
    pub const fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// Whether the pixel at `p` lies inside this rectangle.
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.x && p.x < self.right() && p.y >= self.y && p.y < self.bottom()
    }

    /// Whether `other` lies entirely inside `self`.
    ///
    /// Empty rectangles are contained in everything (vacuously).
    pub fn contains(&self, other: &Rect) -> bool {
        if other.is_empty() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        other.x >= self.x
            && other.y >= self.y
            && other.right() <= self.right()
            && other.bottom() <= self.bottom()
    }

    /// Whether the two rectangles share at least one pixel.
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.intersection(other).is_empty()
    }

    /// The common area of two rectangles (empty if disjoint).
    pub fn intersection(&self, other: &Rect) -> Rect {
        if self.is_empty() || other.is_empty() {
            return Rect::default();
        }
        Rect::from_edges(
            self.x.max(other.x),
            self.y.max(other.y),
            self.right().min(other.right()),
            self.bottom().min(other.bottom()),
        )
    }

    /// The smallest rectangle covering both inputs.
    ///
    /// An empty input contributes nothing.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect::from_edges(
            self.x.min(other.x),
            self.y.min(other.y),
            self.right().max(other.right()),
            self.bottom().max(other.bottom()),
        )
    }

    /// Returns this rectangle translated by `(dx, dy)`.
    pub const fn translated(&self, dx: i32, dy: i32) -> Rect {
        Rect::new(self.x + dx, self.y + dy, self.w, self.h)
    }

    /// Subtracts `other` from `self`, producing up to four disjoint
    /// rectangles that together cover `self \ other`.
    pub fn subtract(&self, other: &Rect) -> Vec<Rect> {
        let clip = self.intersection(other);
        if clip.is_empty() {
            return if self.is_empty() { vec![] } else { vec![*self] };
        }
        if clip == *self {
            return vec![];
        }
        let mut out = Vec::with_capacity(4);
        // Top band.
        if clip.y > self.y {
            out.push(Rect::from_edges(self.x, self.y, self.right(), clip.y));
        }
        // Bottom band.
        if clip.bottom() < self.bottom() {
            out.push(Rect::from_edges(
                self.x,
                clip.bottom(),
                self.right(),
                self.bottom(),
            ));
        }
        // Left band (restricted to the clip's vertical span).
        if clip.x > self.x {
            out.push(Rect::from_edges(self.x, clip.y, clip.x, clip.bottom()));
        }
        // Right band.
        if clip.right() < self.right() {
            out.push(Rect::from_edges(
                clip.right(),
                clip.y,
                self.right(),
                clip.bottom(),
            ));
        }
        out
    }

    /// Scales the rectangle by a rational factor `num/den` per axis,
    /// rounding the origin down and the far edge up so the scaled
    /// rectangle always covers the image of the original.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn scaled(&self, num_x: u32, den_x: u32, num_y: u32, den_y: u32) -> Rect {
        assert!(den_x != 0 && den_y != 0, "zero scale denominator");
        if self.is_empty() {
            return Rect::default();
        }
        // Origin rounds down (floor), far edge rounds up (ceil), with
        // Euclidean division so negative coordinates behave.
        let floor_div = |a: i64, b: i64| a.div_euclid(b);
        let ceil_div = |a: i64, b: i64| -((-a).div_euclid(b));
        let x1 = floor_div(self.x as i64 * num_x as i64, den_x as i64);
        let y1 = floor_div(self.y as i64 * num_y as i64, den_y as i64);
        let x2 = ceil_div(self.right() as i64 * num_x as i64, den_x as i64);
        let y2 = ceil_div(self.bottom() as i64 * num_y as i64, den_y as i64);
        // A nonempty input always covers at least one output pixel.
        let x2 = x2.max(x1 + 1);
        let y2 = y2.max(y1 + 1);
        Rect::from_edges(x1 as i32, y1 as i32, x2 as i32, y2 as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_translate() {
        assert_eq!(Point::new(1, 2).translated(3, -5), Point::new(4, -3));
    }

    #[test]
    fn rect_edges_and_area() {
        let r = Rect::new(2, 3, 10, 20);
        assert_eq!(r.right(), 12);
        assert_eq!(r.bottom(), 23);
        assert_eq!(r.area(), 200);
        assert!(!r.is_empty());
        assert!(Rect::new(5, 5, 0, 10).is_empty());
    }

    #[test]
    fn from_edges_degenerate_is_empty() {
        assert!(Rect::from_edges(5, 5, 5, 10).is_empty());
        assert!(Rect::from_edges(5, 5, 4, 10).is_empty());
        assert_eq!(Rect::from_edges(0, 0, 3, 2), Rect::new(0, 0, 3, 2));
    }

    #[test]
    fn contains_point_boundaries() {
        let r = Rect::new(0, 0, 4, 4);
        assert!(r.contains_point(Point::new(0, 0)));
        assert!(r.contains_point(Point::new(3, 3)));
        assert!(!r.contains_point(Point::new(4, 3)));
        assert!(!r.contains_point(Point::new(-1, 0)));
    }

    #[test]
    fn containment() {
        let outer = Rect::new(0, 0, 10, 10);
        assert!(outer.contains(&Rect::new(2, 2, 3, 3)));
        assert!(outer.contains(&outer));
        assert!(!outer.contains(&Rect::new(8, 8, 4, 4)));
        // Empty rects are vacuously contained.
        assert!(outer.contains(&Rect::default()));
        assert!(Rect::default().contains(&Rect::default()));
        assert!(!Rect::default().contains(&outer));
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersection(&b), Rect::new(5, 5, 5, 5));
        assert!(a.intersects(&b));
        let c = Rect::new(10, 0, 5, 5); // Touching edges do not intersect.
        assert!(!a.intersects(&c));
        assert!(a.intersection(&Rect::default()).is_empty());
    }

    #[test]
    fn union_cases() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(5, 5, 2, 2);
        assert_eq!(a.union(&b), Rect::new(0, 0, 7, 7));
        assert_eq!(a.union(&Rect::default()), a);
        assert_eq!(Rect::default().union(&b), b);
    }

    #[test]
    fn subtract_no_overlap_returns_self() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(10, 10, 4, 4);
        assert_eq!(a.subtract(&b), vec![a]);
    }

    #[test]
    fn subtract_full_cover_returns_empty() {
        let a = Rect::new(2, 2, 4, 4);
        let b = Rect::new(0, 0, 10, 10);
        assert!(a.subtract(&b).is_empty());
    }

    #[test]
    fn subtract_center_hole_makes_four_bands() {
        let a = Rect::new(0, 0, 10, 10);
        let hole = Rect::new(3, 3, 4, 4);
        let parts = a.subtract(&hole);
        assert_eq!(parts.len(), 4);
        let total: u64 = parts.iter().map(Rect::area).sum();
        assert_eq!(total, a.area() - hole.area());
        // Pieces must be disjoint from each other and the hole.
        for (i, p) in parts.iter().enumerate() {
            assert!(!p.intersects(&hole));
            for q in &parts[i + 1..] {
                assert!(!p.intersects(q));
            }
        }
    }

    #[test]
    fn subtract_corner_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        let parts = a.subtract(&b);
        let total: u64 = parts.iter().map(Rect::area).sum();
        assert_eq!(total, 100 - 25);
    }

    #[test]
    fn scaled_covers_original_image() {
        let r = Rect::new(3, 5, 7, 9);
        // Downscale 1024x768 -> 320x240.
        let s = r.scaled(320, 1024, 240, 768);
        assert!(!s.is_empty());
        // Far edges round up.
        assert!(s.right() as i64 * 1024 >= r.right() as i64 * 320);
        assert!(s.bottom() as i64 * 768 >= r.bottom() as i64 * 240);
    }

    #[test]
    fn translated_rect() {
        assert_eq!(
            Rect::new(1, 1, 2, 2).translated(-3, 4),
            Rect::new(-2, 5, 2, 2)
        );
    }
}
