//! Pixel formats and colors.
//!
//! THINC commands carry full 24-bit color plus an alpha channel (§3 of
//! the paper); comparator systems in the evaluation run at other depths
//! (GoToMyPC is limited to 8-bit color), so the substrate supports the
//! depths exercised by the experiments.

/// A color with 8-bit channels and straight (non-premultiplied) alpha.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
    /// Alpha channel; 255 is fully opaque.
    pub a: u8,
}

impl Color {
    /// Fully opaque black.
    pub const BLACK: Color = Color::rgb(0, 0, 0);
    /// Fully opaque white.
    pub const WHITE: Color = Color::rgb(255, 255, 255);
    /// Fully transparent.
    pub const TRANSPARENT: Color = Color::rgba(0, 0, 0, 0);

    /// An opaque color.
    #[inline]
    pub const fn rgb(r: u8, g: u8, b: u8) -> Self {
        Self { r, g, b, a: 255 }
    }

    /// A color with explicit alpha.
    #[inline]
    pub const fn rgba(r: u8, g: u8, b: u8, a: u8) -> Self {
        Self { r, g, b, a }
    }

    /// Packs into 0xAARRGGBB.
    #[inline]
    pub const fn to_argb_u32(self) -> u32 {
        ((self.a as u32) << 24) | ((self.r as u32) << 16) | ((self.g as u32) << 8) | self.b as u32
    }

    /// Unpacks from 0xAARRGGBB.
    #[inline]
    pub const fn from_argb_u32(v: u32) -> Self {
        Self {
            a: (v >> 24) as u8,
            r: (v >> 16) as u8,
            g: (v >> 8) as u8,
            b: v as u8,
        }
    }

    /// Perceptual luma (BT.601), used by 8-bit quantization and tests.
    #[inline]
    pub fn luma(self) -> u8 {
        ((77 * self.r as u32 + 150 * self.g as u32 + 29 * self.b as u32) >> 8) as u8
    }
}

/// Storage format of a framebuffer or image buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PixelFormat {
    /// 8-bit "web safe"-style quantized color (3-3-2 RGB). Used by the
    /// GoToMyPC-class baseline.
    Indexed8,
    /// 16-bit 5-6-5 RGB.
    Rgb565,
    /// 24-bit RGB, 3 bytes per pixel, byte order R, G, B.
    Rgb888,
    /// 32-bit RGBA, 4 bytes per pixel, byte order R, G, B, A.
    Rgba8888,
}

impl PixelFormat {
    /// Bytes used to store one pixel.
    #[inline]
    pub const fn bytes_per_pixel(self) -> usize {
        match self {
            PixelFormat::Indexed8 => 1,
            PixelFormat::Rgb565 => 2,
            PixelFormat::Rgb888 => 3,
            PixelFormat::Rgba8888 => 4,
        }
    }

    /// Color depth in bits as reported by the display system.
    #[inline]
    pub const fn depth(self) -> u32 {
        match self {
            PixelFormat::Indexed8 => 8,
            PixelFormat::Rgb565 => 16,
            PixelFormat::Rgb888 => 24,
            PixelFormat::Rgba8888 => 32,
        }
    }

    /// Whether the format carries an alpha channel.
    #[inline]
    pub const fn has_alpha(self) -> bool {
        matches!(self, PixelFormat::Rgba8888)
    }

    /// Encodes `c` into `out` (must be exactly `bytes_per_pixel` long).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.bytes_per_pixel()`.
    #[inline]
    pub fn encode(self, c: Color, out: &mut [u8]) {
        assert_eq!(out.len(), self.bytes_per_pixel(), "pixel buffer size");
        match self {
            PixelFormat::Indexed8 => {
                out[0] = (c.r & 0xE0) | ((c.g & 0xE0) >> 3) | (c.b >> 6);
            }
            PixelFormat::Rgb565 => {
                let v = (((c.r as u16) >> 3) << 11) | (((c.g as u16) >> 2) << 5) | ((c.b as u16) >> 3);
                out.copy_from_slice(&v.to_le_bytes());
            }
            PixelFormat::Rgb888 => {
                out[0] = c.r;
                out[1] = c.g;
                out[2] = c.b;
            }
            PixelFormat::Rgba8888 => {
                out[0] = c.r;
                out[1] = c.g;
                out[2] = c.b;
                out[3] = c.a;
            }
        }
    }

    /// Encodes `c` into a fixed 4-byte buffer, returning the buffer
    /// and the number of valid leading bytes (`bytes_per_pixel`) —
    /// the shape the span/run kernels want for a stack-held splat
    /// pixel without a per-call heap allocation.
    #[inline]
    pub fn encode_to_array(self, c: Color) -> ([u8; 4], usize) {
        let mut px = [0u8; 4];
        let n = self.bytes_per_pixel();
        self.encode(c, &mut px[..n]);
        (px, n)
    }

    /// Decodes one pixel from `buf` (must be exactly `bytes_per_pixel`).
    ///
    /// Formats without alpha decode as fully opaque. Lossy formats decode
    /// with the channel's high bits replicated into the low bits so that
    /// round-trips are stable.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.bytes_per_pixel()`.
    #[inline]
    pub fn decode(self, buf: &[u8]) -> Color {
        assert_eq!(buf.len(), self.bytes_per_pixel(), "pixel buffer size");
        match self {
            PixelFormat::Indexed8 => {
                let v = buf[0];
                let r3 = v >> 5;
                let g3 = (v >> 2) & 0x7;
                let b2 = v & 0x3;
                Color::rgb(expand_bits(r3, 3), expand_bits(g3, 3), expand_bits(b2, 2))
            }
            PixelFormat::Rgb565 => {
                let v = u16::from_le_bytes([buf[0], buf[1]]);
                let r5 = (v >> 11) as u8;
                let g6 = ((v >> 5) & 0x3F) as u8;
                let b5 = (v & 0x1F) as u8;
                Color::rgb(expand_bits(r5, 5), expand_bits(g6, 6), expand_bits(b5, 5))
            }
            PixelFormat::Rgb888 => Color::rgb(buf[0], buf[1], buf[2]),
            PixelFormat::Rgba8888 => Color::rgba(buf[0], buf[1], buf[2], buf[3]),
        }
    }
}

/// Expands an `n`-bit channel value to 8 bits by bit replication.
#[inline]
fn expand_bits(v: u8, n: u32) -> u8 {
    debug_assert!((1..=8).contains(&n));
    let mut out: u32 = 0;
    let mut filled = 0;
    while filled < 8 {
        let take = n.min(8 - filled);
        out = (out << take) | ((v as u32) >> (n - take));
        filled += take;
    }
    out as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argb_round_trip() {
        let c = Color::rgba(1, 2, 3, 200);
        assert_eq!(Color::from_argb_u32(c.to_argb_u32()), c);
        assert_eq!(Color::rgb(255, 0, 0).to_argb_u32(), 0xFFFF0000);
    }

    #[test]
    fn bytes_per_pixel_and_depth() {
        assert_eq!(PixelFormat::Indexed8.bytes_per_pixel(), 1);
        assert_eq!(PixelFormat::Rgb565.bytes_per_pixel(), 2);
        assert_eq!(PixelFormat::Rgb888.bytes_per_pixel(), 3);
        assert_eq!(PixelFormat::Rgba8888.bytes_per_pixel(), 4);
        assert_eq!(PixelFormat::Rgb888.depth(), 24);
        assert!(PixelFormat::Rgba8888.has_alpha());
        assert!(!PixelFormat::Rgb888.has_alpha());
    }

    #[test]
    fn rgb888_round_trip_exact() {
        let fmt = PixelFormat::Rgb888;
        let c = Color::rgb(12, 200, 99);
        let mut buf = [0u8; 3];
        fmt.encode(c, &mut buf);
        assert_eq!(fmt.decode(&buf), c);
    }

    #[test]
    fn rgba8888_round_trip_exact() {
        let fmt = PixelFormat::Rgba8888;
        let c = Color::rgba(12, 200, 99, 50);
        let mut buf = [0u8; 4];
        fmt.encode(c, &mut buf);
        assert_eq!(fmt.decode(&buf), c);
    }

    #[test]
    fn lossy_formats_are_stable_after_one_round_trip() {
        for fmt in [PixelFormat::Indexed8, PixelFormat::Rgb565] {
            let c = Color::rgb(123, 45, 67);
            let mut buf = vec![0u8; fmt.bytes_per_pixel()];
            fmt.encode(c, &mut buf);
            let once = fmt.decode(&buf);
            fmt.encode(once, &mut buf);
            let twice = fmt.decode(&buf);
            assert_eq!(once, twice, "{fmt:?} not idempotent");
        }
    }

    #[test]
    fn expand_bits_extremes() {
        assert_eq!(expand_bits(0, 5), 0);
        assert_eq!(expand_bits(0x1F, 5), 255);
        assert_eq!(expand_bits(0x3F, 6), 255);
        assert_eq!(expand_bits(0x7, 3), 255);
        assert_eq!(expand_bits(0x3, 2), 255);
    }

    #[test]
    fn luma_ordering() {
        assert!(Color::WHITE.luma() > Color::rgb(128, 128, 128).luma());
        assert!(Color::rgb(128, 128, 128).luma() > Color::BLACK.luma());
        assert!(Color::rgb(0, 255, 0).luma() > Color::rgb(0, 0, 255).luma());
    }
}
