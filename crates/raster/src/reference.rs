//! Retained naive reference kernels.
//!
//! Every hot-path raster kernel in this crate (fill, tile, stipple,
//! copy, format conversion, YUV packing, resampling) has a
//! pixel-at-a-time reference implementation here, kept verbatim from
//! before the row-structured rewrite. They exist for two reasons:
//!
//! 1. **Equivalence proofs**: the property tests in
//!    `tests/property.rs` assert the optimized kernels are byte-exact
//!    against these on random geometry and formats.
//! 2. **Measured speedups**: the `perfgate` benchmark harness times
//!    optimized-vs-reference pairs and records the ratios in
//!    `BENCH_raster.json`, so perf claims stay reproducible.
//!
//! Nothing here is called on the production path; clarity over speed.

use crate::framebuffer::Framebuffer;
use crate::geometry::Rect;
use crate::pixel::{Color, PixelFormat};
use crate::yuv::{rgb_to_yuv, yuv_to_rgb, YuvFormat, YuvFrame};

/// Naive [`Framebuffer::fill_rect`]: encode and store one pixel at a
/// time.
pub fn fill_rect(fb: &mut Framebuffer, r: &Rect, c: Color) {
    let clip = r.intersection(&fb.bounds());
    for y in clip.y..clip.bottom() {
        for x in clip.x..clip.right() {
            fb.set_pixel(x, y, c);
        }
    }
}

/// Naive [`Framebuffer::tile_rect`]: per-pixel phase arithmetic and
/// copy (the pre-optimization kernel, kept byte-for-byte).
///
/// # Panics
///
/// Panics if the tile is empty or has a different pixel format.
pub fn tile_rect(fb: &mut Framebuffer, r: &Rect, tile: &Framebuffer) {
    assert!(tile.width() > 0 && tile.height() > 0, "empty tile");
    assert_eq!(tile.format(), fb.format(), "tile pixel format mismatch");
    let clip = r.intersection(&fb.bounds());
    for y in clip.y..clip.bottom() {
        let ty = y.rem_euclid(tile.height() as i32);
        for x in clip.x..clip.right() {
            let tx = x.rem_euclid(tile.width() as i32);
            let c = tile.get_pixel(tx, ty).expect("tile in bounds");
            fb.set_pixel(x, y, c);
        }
    }
}

/// Naive [`Framebuffer::bitmap_rect`]: test one bit, set one pixel.
///
/// # Panics
///
/// Panics if `bits` is shorter than the rectangle requires.
pub fn bitmap_rect(fb: &mut Framebuffer, r: &Rect, bits: &[u8], fg: Color, bg: Option<Color>) {
    let row_bytes = (r.w as usize).div_ceil(8);
    assert!(
        bits.len() >= row_bytes * r.h as usize,
        "stipple bitmap too short: {} < {}",
        bits.len(),
        row_bytes * r.h as usize
    );
    let clip = r.intersection(&fb.bounds());
    for y in clip.y..clip.bottom() {
        let by = (y - r.y) as usize;
        for x in clip.x..clip.right() {
            let bx = (x - r.x) as usize;
            let byte = bits[by * row_bytes + bx / 8];
            let on = byte & (0x80 >> (bx % 8)) != 0;
            if on {
                fb.set_pixel(x, y, fg);
            } else if let Some(bg) = bg {
                fb.set_pixel(x, y, bg);
            }
        }
    }
}

/// Naive [`Framebuffer::copy_rect`]: snapshot the source region, then
/// write it back pixel by pixel (trivially overlap-safe).
pub fn copy_rect(fb: &mut Framebuffer, src: &Rect, dst_x: i32, dst_y: i32) {
    let dx = dst_x - src.x;
    let dy = dst_y - src.y;
    let mut s = src.intersection(&fb.bounds());
    let dst = s.translated(dx, dy);
    let dst_clipped = dst.intersection(&fb.bounds());
    s = dst_clipped.translated(-dx, -dy);
    if s.is_empty() {
        return;
    }
    let mut pixels = Vec::with_capacity((s.w * s.h) as usize);
    for y in s.y..s.bottom() {
        for x in s.x..s.right() {
            pixels.push(fb.get_pixel(x, y).expect("in bounds"));
        }
    }
    let mut i = 0;
    for y in s.y..s.bottom() {
        for x in s.x..s.right() {
            fb.set_pixel(x + dx, y + dy, pixels[i]);
            i += 1;
        }
    }
}

/// Naive [`Framebuffer::convert`]: decode and re-encode every pixel
/// through [`Color`].
pub fn convert(fb: &Framebuffer, format: PixelFormat) -> Framebuffer {
    if format == fb.format() {
        return fb.clone();
    }
    let mut out = Framebuffer::new(fb.width(), fb.height(), format);
    for y in 0..fb.height() as i32 {
        for x in 0..fb.width() as i32 {
            let c = fb.get_pixel(x, y).expect("in bounds");
            out.set_pixel(x, y, c);
        }
    }
    out
}

/// Naive [`YuvFrame::from_rgb`]: per-pixel `get_pixel` + colorspace
/// math, with block-accumulated chroma (the pre-optimization kernel).
pub fn yuv_from_rgb(src: &Framebuffer, r: &Rect, format: YuvFormat) -> YuvFrame {
    let clip = r.intersection(&src.bounds());
    let (w, h) = (clip.w, clip.h);
    let mut frame = YuvFrame::new(format, w, h);
    match format {
        YuvFormat::Yv12 => {
            let (cw, ch) = ((w as usize).div_ceil(2), (h as usize).div_ceil(2));
            let y_plane_len = w as usize * h as usize;
            let c_len = cw * ch;
            let mut u_acc = vec![0u32; c_len];
            let mut v_acc = vec![0u32; c_len];
            let mut n_acc = vec![0u32; c_len];
            for y in 0..h as i32 {
                for x in 0..w as i32 {
                    let c = src.get_pixel(clip.x + x, clip.y + y).expect("in bounds");
                    let (yy, uu, vv) = rgb_to_yuv(c);
                    frame.data[y as usize * w as usize + x as usize] = yy;
                    let ci = (y as usize / 2) * cw + (x as usize / 2);
                    u_acc[ci] += uu as u32;
                    v_acc[ci] += vv as u32;
                    n_acc[ci] += 1;
                }
            }
            let _ = ch;
            for i in 0..c_len {
                let n = n_acc[i].max(1);
                frame.data[y_plane_len + i] = (v_acc[i] / n) as u8;
                frame.data[y_plane_len + c_len + i] = (u_acc[i] / n) as u8;
            }
        }
        YuvFormat::Yuy2 => {
            let pairs_per_row = (w as usize).div_ceil(2);
            for y in 0..h as i32 {
                for px in 0..pairs_per_row {
                    let x0 = (px * 2) as i32;
                    let x1 = (x0 + 1).min(w as i32 - 1);
                    let c0 = src.get_pixel(clip.x + x0, clip.y + y).expect("in bounds");
                    let c1 = src.get_pixel(clip.x + x1, clip.y + y).expect("in bounds");
                    let (y0, u0, v0) = rgb_to_yuv(c0);
                    let (y1, u1, v1) = rgb_to_yuv(c1);
                    let off = (y as usize * pairs_per_row + px) * 4;
                    frame.data[off] = y0;
                    frame.data[off + 1] = ((u0 as u32 + u1 as u32) / 2) as u8;
                    frame.data[off + 2] = y1;
                    frame.data[off + 3] = ((v0 as u32 + v1 as u32) / 2) as u8;
                }
            }
        }
    }
    frame
}

/// Naive [`YuvFrame::to_rgb_scaled`]: per-destination-pixel chroma
/// lookup and `set_pixel`.
pub fn yuv_to_rgb_scaled(
    frame: &YuvFrame,
    dst_w: u32,
    dst_h: u32,
    format: PixelFormat,
) -> Framebuffer {
    let mut out = Framebuffer::new(dst_w, dst_h, format);
    if frame.width == 0 || frame.height == 0 || dst_w == 0 || dst_h == 0 {
        return out;
    }
    for dy in 0..dst_h {
        let sy = (dy as u64 * frame.height as u64 / dst_h as u64) as u32;
        for dx in 0..dst_w {
            let sx = (dx as u64 * frame.width as u64 / dst_w as u64) as u32;
            let (yy, uu, vv) = frame.yuv_at(sx, sy);
            out.set_pixel(dx as i32, dy as i32, yuv_to_rgb(yy, uu, vv));
        }
    }
    out
}

/// Naive nearest-neighbour scaling: per-destination-pixel
/// `get_pixel`/`set_pixel`.
pub fn scale_nearest(src: &Framebuffer, dst_w: u32, dst_h: u32) -> Framebuffer {
    let mut dst = Framebuffer::new(dst_w, dst_h, src.format());
    if dst_w == 0 || dst_h == 0 || src.width() == 0 || src.height() == 0 {
        return dst;
    }
    let (sw, sh) = (src.width() as u64, src.height() as u64);
    let (dw, dh) = (dst_w as u64, dst_h as u64);
    for dy in 0..dst_h {
        let sy = (dy as u64 * sh / dh) as i32;
        for dx in 0..dst_w {
            let sx = (dx as u64 * sw / dw) as i32;
            let c = src.get_pixel(sx, sy).expect("in bounds");
            dst.set_pixel(dx as i32, dy as i32, c);
        }
    }
    dst
}

/// Naive simplified-Fant scaling under the fixed-point rounding
/// contract documented in [`crate::scale`]: recomputes every integer
/// span weight per line and goes through `get_pixel`/`set_pixel`.
///
/// A destination pixel is `⌊(num + ⌊den/2⌋)/den⌋` with `den = sw·sh`
/// and `num = Σ_y w_y Σ_x w_x · p(x,y)` — identical rational and
/// rounding as the optimized planar kernel, arrived at one pixel at a
/// time with per-line recomputation (the executable specification the
/// equivalence proptests hold the optimized kernel to).
pub fn scale_fant(src: &Framebuffer, dst_w: u32, dst_h: u32) -> Framebuffer {
    let mut dst = Framebuffer::new(dst_w, dst_h, src.format());
    if dst_w == 0 || dst_h == 0 || src.width() == 0 || src.height() == 0 {
        return dst;
    }
    let sw = src.width() as usize;
    let sh = src.height() as usize;
    let dw = dst_w as usize;
    let dh = dst_h as usize;
    // Horizontal pass: numerators Σ w·p (weights in units of 1/dw,
    // summing to sw per output).
    let mut mid = vec![[0u64; 4]; sh * dw];
    for y in 0..sh {
        let mut row_in: Vec<[u64; 4]> = Vec::with_capacity(sw);
        for x in 0..sw {
            let c = src.get_pixel(x as i32, y as i32).expect("in bounds");
            row_in.push([c.r as u64, c.g as u64, c.b as u64, c.a as u64]);
        }
        resample_line(&row_in, &mut mid[y * dw..(y + 1) * dw]);
    }
    // Vertical pass over the horizontal numerators, then round half up
    // against the combined denominator.
    let den = sw as u64 * sh as u64;
    let half = den / 2;
    let mut col_in: Vec<[u64; 4]> = vec![[0u64; 4]; sh];
    let mut col_out: Vec<[u64; 4]> = vec![[0u64; 4]; dh];
    for x in 0..dw {
        for y in 0..sh {
            col_in[y] = mid[y * dw + x];
        }
        resample_line(&col_in, &mut col_out);
        for (y, p) in col_out.iter().copied().enumerate().take(dh) {
            let q = |v: u64| -> u8 { ((v + half) / den) as u8 };
            dst.set_pixel(x as i32, y as i32, Color::rgba(q(p[0]), q(p[1]), q(p[2]), q(p[3])));
        }
    }
    dst
}

/// The per-call area-weighting resampler (integer weights recomputed
/// for every line): `out[i] = Σ_s w(i,s)·in[s]` with
/// `w(i,s) = min((i+1)n, (s+1)m) − max(i·n, s·m)` in units of `1/m`.
fn resample_line(input: &[[u64; 4]], out: &mut [[u64; 4]]) {
    if input.is_empty() || out.is_empty() {
        return;
    }
    let n = input.len() as u64;
    let m = out.len() as u64;
    for (i, o) in out.iter_mut().enumerate() {
        let lo = i as u64 * n;
        let hi = lo + n;
        let first = (lo / m) as usize;
        let last = (hi.div_ceil(m) as usize).min(input.len());
        let mut acc = [0u64; 4];
        for (s, sample) in input.iter().enumerate().take(last).skip(first) {
            let s_lo = s as u64 * m;
            let s_hi = s_lo + m;
            let overlap = hi.min(s_hi).saturating_sub(lo.max(s_lo));
            for k in 0..4 {
                acc[k] += sample[k] * overlap;
            }
        }
        *o = acc;
    }
}
