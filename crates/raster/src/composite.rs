//! Porter–Duff alpha compositing.
//!
//! THINC commands carry a full alpha channel so that the protocol can
//! express graphics compositing operations (anti-aliased text and other
//! modern 2D desktop features, §3 of the paper). The server falls back
//! to these software implementations when the client lacks acceleration.

use crate::framebuffer::Framebuffer;
use crate::geometry::Rect;
use crate::pixel::Color;

/// The Porter–Duff binary compositing operators (Porter & Duff 1984).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompositeOp {
    /// Destination cleared to transparent.
    Clear,
    /// Source replaces destination.
    Src,
    /// Source over destination (the usual blending operator).
    Over,
    /// Source where destination is opaque.
    In,
    /// Source where destination is transparent.
    Out,
    /// Source atop destination.
    Atop,
    /// Exclusive regions of source and destination.
    Xor,
    /// Saturating addition of source and destination.
    Add,
}

impl CompositeOp {
    /// Composites source pixel `s` onto destination pixel `d`.
    ///
    /// Works in premultiplied space internally; inputs and outputs use
    /// straight alpha.
    ///
    /// # Rounding contract
    ///
    /// The premultiply step and the blend renormalization both divide
    /// by 255 with *truncation* (like the X Render fixed-point path),
    /// while [`unpremultiply`] rounds half-up. These choices are part
    /// of the wire format: composited pixels travel byte-for-byte in
    /// RAW updates, so changing either direction of rounding changes
    /// protocol bytes. The `apply_rounding_is_pinned` test pins the
    /// exact outputs. Two consequences worth knowing:
    ///
    /// * an opaque source is exact: `Over`/`Src` with `s.a == 255`
    ///   return `s` unchanged (factors are 255/0 and the divisions
    ///   cancel), so opaque blits lose nothing;
    /// * partial alpha may lose up to 1/255 per channel in the
    ///   premultiply→unpremultiply round-trip (see
    ///   `premultiply_round_trip_error_is_bounded`).
    pub fn apply(self, s: Color, d: Color) -> Color {
        let sp = premultiply(s);
        let dp = premultiply(d);
        let (fa, fb) = self.factors(sp.3, dp.3);
        let blend = |sc: u32, dc: u32| -> u32 {
            let v = sc * fa + dc * fb;
            // Factors are 0..=255 fixed point; renormalize.
            (v / 255).min(255)
        };
        let out = (
            blend(sp.0, dp.0),
            blend(sp.1, dp.1),
            blend(sp.2, dp.2),
            blend(sp.3, dp.3),
        );
        unpremultiply(out.0 as u8, out.1 as u8, out.2 as u8, out.3 as u8)
    }

    /// Per-operator blend factors `(Fa, Fb)` in 0..=255 fixed point,
    /// given source and destination alpha.
    fn factors(self, sa: u32, da: u32) -> (u32, u32) {
        match self {
            CompositeOp::Clear => (0, 0),
            CompositeOp::Src => (255, 0),
            CompositeOp::Over => (255, 255 - sa),
            CompositeOp::In => (da, 0),
            CompositeOp::Out => (255 - da, 0),
            CompositeOp::Atop => (da, 255 - sa),
            CompositeOp::Xor => (255 - da, 255 - sa),
            CompositeOp::Add => (255, 255),
        }
    }
}

fn premultiply(c: Color) -> (u32, u32, u32, u32) {
    let a = c.a as u32;
    (
        c.r as u32 * a / 255,
        c.g as u32 * a / 255,
        c.b as u32 * a / 255,
        a,
    )
}

fn unpremultiply(r: u8, g: u8, b: u8, a: u8) -> Color {
    if a == 0 {
        return Color::TRANSPARENT;
    }
    let un = |v: u8| -> u8 { ((v as u32 * 255 + a as u32 / 2) / a as u32).min(255) as u8 };
    Color::rgba(un(r), un(g), un(b), a)
}

/// Composites the rectangle `src_r` of `src` onto `dst` at
/// `(dst_x, dst_y)` using `op`, clipping to both buffers.
///
/// Clipping is resolved up front on both sides — `src_r` against the
/// source bounds, and the translated rectangle against the destination
/// bounds — so the row loop below touches only pixels that exist in
/// both buffers (the old per-pixel `Option` probing silently skipped
/// out-of-range pixels one at a time).
///
/// # Alpha on non-alpha destinations
///
/// Destination formats without an alpha channel ([`PixelFormat::has_alpha`]
/// is false) decode as fully opaque and re-encode by dropping alpha.
/// Operators whose result alpha can be < 255 (`Clear`, `In`, `Out`,
/// `Xor`, and `Src`/`Atop` with translucent sources) therefore land as
/// their premultiplied color — e.g. `Clear` writes black, not
/// "transparent" — because [`Color::TRANSPARENT`] is `rgba(0,0,0,0)`
/// and the zero channels are what survives the encode. This mirrors
/// what a real 24-bit framebuffer does with composited output and is
/// pinned by `non_alpha_destination_flattens_to_black`.
pub fn composite_rect(
    dst: &mut Framebuffer,
    src: &Framebuffer,
    src_r: &Rect,
    dst_x: i32,
    dst_y: i32,
    op: CompositeOp,
) {
    let src_clip = src_r.intersection(&src.bounds());
    if src_clip.is_empty() {
        return;
    }
    // Translate the clipped source rect into destination space and
    // clip again; both clips together define the pixels actually
    // written.
    let tx = dst_x + (src_clip.x - src_r.x);
    let ty = dst_y + (src_clip.y - src_r.y);
    let dst_clip = Rect::new(tx, ty, src_clip.w, src_clip.h).intersection(&dst.bounds());
    if dst_clip.is_empty() {
        return;
    }
    // Source origin corresponding to the clipped destination origin.
    let sx0 = (src_clip.x + (dst_clip.x - tx)) as usize;
    let sy0 = (src_clip.y + (dst_clip.y - ty)) as usize;
    let (sfmt, dfmt) = (src.format(), dst.format());
    let (sbpp, dbpp) = (sfmt.bytes_per_pixel(), dfmt.bytes_per_pixel());
    let (sstride, dstride) = (src.stride(), dst.stride());
    let w = dst_clip.w as usize;
    for y in 0..dst_clip.h as usize {
        let soff = (sy0 + y) * sstride + sx0 * sbpp;
        let srow = &src.data()[soff..soff + w * sbpp];
        let doff = (dst_clip.y as usize + y) * dstride + dst_clip.x as usize * dbpp;
        let drow = &mut dst.data_mut()[doff..doff + w * dbpp];
        for (sp, dp) in srow.chunks_exact(sbpp).zip(drow.chunks_exact_mut(dbpp)) {
            let out = op.apply(sfmt.decode(sp), dfmt.decode(dp));
            dfmt.encode(out, dp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::PixelFormat;

    #[test]
    fn over_opaque_source_wins() {
        let s = Color::rgb(200, 10, 10);
        let d = Color::rgb(0, 200, 0);
        assert_eq!(CompositeOp::Over.apply(s, d), s);
    }

    #[test]
    fn over_transparent_source_keeps_dest() {
        let s = Color::TRANSPARENT;
        let d = Color::rgb(0, 200, 0);
        assert_eq!(CompositeOp::Over.apply(s, d), d);
    }

    #[test]
    fn over_half_alpha_blends() {
        let s = Color::rgba(255, 255, 255, 128);
        let d = Color::rgb(0, 0, 0);
        let out = CompositeOp::Over.apply(s, d);
        assert_eq!(out.a, 255);
        assert!((out.r as i32 - 128).abs() <= 2, "r = {}", out.r);
    }

    #[test]
    fn clear_produces_transparent() {
        let out = CompositeOp::Clear.apply(Color::WHITE, Color::WHITE);
        assert_eq!(out, Color::TRANSPARENT);
    }

    #[test]
    fn src_replaces() {
        let s = Color::rgba(1, 2, 3, 77);
        let out = CompositeOp::Src.apply(s, Color::WHITE);
        assert_eq!(out.a, 77);
    }

    #[test]
    fn in_masks_by_dest_alpha() {
        let s = Color::rgb(100, 100, 100);
        let out = CompositeOp::In.apply(s, Color::TRANSPARENT);
        assert_eq!(out, Color::TRANSPARENT);
        let out2 = CompositeOp::In.apply(s, Color::rgba(0, 0, 0, 255));
        assert_eq!(out2.a, 255);
    }

    #[test]
    fn xor_of_opaque_pair_is_transparent() {
        let out = CompositeOp::Xor.apply(Color::WHITE, Color::BLACK);
        assert_eq!(out.a, 0);
    }

    #[test]
    fn add_saturates() {
        let out = CompositeOp::Add.apply(Color::rgb(200, 200, 200), Color::rgb(200, 200, 200));
        assert_eq!(out, Color::WHITE);
    }

    #[test]
    fn atop_keeps_dest_alpha() {
        let s = Color::rgba(255, 0, 0, 255);
        let d = Color::rgba(0, 0, 255, 128);
        let out = CompositeOp::Atop.apply(s, d);
        assert_eq!(out.a, 128);
    }

    #[test]
    fn composite_rect_blends_region() {
        let mut dst = Framebuffer::new(4, 4, PixelFormat::Rgba8888);
        dst.fill_rect(&Rect::new(0, 0, 4, 4), Color::rgba(0, 0, 0, 255));
        let mut src = Framebuffer::new(2, 2, PixelFormat::Rgba8888);
        src.fill_rect(&Rect::new(0, 0, 2, 2), Color::rgba(255, 255, 255, 255));
        composite_rect(&mut dst, &src, &Rect::new(0, 0, 2, 2), 1, 1, CompositeOp::Over);
        assert_eq!(dst.get_pixel(1, 1).unwrap().r, 255);
        assert_eq!(dst.get_pixel(0, 0).unwrap().r, 0);
        assert_eq!(dst.get_pixel(3, 3).unwrap().r, 0);
    }

    #[test]
    fn composite_rect_clips_out_of_bounds() {
        let mut dst = Framebuffer::new(2, 2, PixelFormat::Rgba8888);
        let src = Framebuffer::new(4, 4, PixelFormat::Rgba8888);
        // Must not panic even when mostly offscreen.
        composite_rect(&mut dst, &src, &Rect::new(0, 0, 4, 4), -2, -2, CompositeOp::Over);
    }

    #[test]
    fn composite_rect_negative_offset_lands_on_right_pixels() {
        // Source is a 3x3 gradient; composite at (-1, -1) so only the
        // bottom-right 2x2 of the source lands in the destination.
        let mut src = Framebuffer::new(3, 3, PixelFormat::Rgba8888);
        for y in 0..3 {
            for x in 0..3 {
                src.set_pixel(x, y, Color::rgba((10 * (y * 3 + x) + 5) as u8, 0, 0, 255));
            }
        }
        let mut dst = Framebuffer::new(2, 2, PixelFormat::Rgba8888);
        composite_rect(&mut dst, &src, &Rect::new(0, 0, 3, 3), -1, -1, CompositeOp::Src);
        // dst(0,0) receives src(1,1), dst(1,1) receives src(2,2).
        assert_eq!(dst.get_pixel(0, 0).unwrap().r, 45);
        assert_eq!(dst.get_pixel(1, 0).unwrap().r, 55);
        assert_eq!(dst.get_pixel(0, 1).unwrap().r, 75);
        assert_eq!(dst.get_pixel(1, 1).unwrap().r, 85);
    }

    #[test]
    fn composite_rect_src_rect_partially_outside_source() {
        // src_r hangs off the source's top-left; the surviving part
        // keeps its destination alignment (src pixel (0,0) must land
        // at dst (2,2) because src_r starts at (-2,-2)).
        let mut src = Framebuffer::new(2, 2, PixelFormat::Rgba8888);
        src.fill_rect(&Rect::new(0, 0, 2, 2), Color::rgba(99, 0, 0, 255));
        let mut dst = Framebuffer::new(5, 5, PixelFormat::Rgba8888);
        composite_rect(&mut dst, &src, &Rect::new(-2, -2, 4, 4), 0, 0, CompositeOp::Src);
        assert_eq!(dst.get_pixel(1, 1).unwrap().r, 0);
        assert_eq!(dst.get_pixel(2, 2).unwrap().r, 99);
        assert_eq!(dst.get_pixel(3, 3).unwrap().r, 99);
        assert_eq!(dst.get_pixel(4, 4).unwrap().r, 0);
    }

    #[test]
    fn apply_rounding_is_pinned() {
        // Pin the exact bytes of the truncate-then-round-half-up
        // pipeline documented on `apply`. These values travel on the
        // wire; a change here is a protocol change, not a cleanup.
        let s = Color::rgba(200, 100, 50, 128);
        let d = Color::rgba(40, 80, 120, 200);
        assert_eq!(CompositeOp::Over.apply(s, d), Color::rgba(129, 90, 80, 227));
        assert_eq!(CompositeOp::Atop.apply(s, d), Color::rgba(119, 89, 84, 200));
        assert_eq!(CompositeOp::Xor.apply(s, d), Color::rgba(74, 82, 104, 127));
        // Opaque source through Over is exact (no rounding at all).
        let opaque = Color::rgba(201, 102, 53, 255);
        assert_eq!(CompositeOp::Over.apply(opaque, d), opaque);
    }

    #[test]
    fn premultiply_round_trip_error_is_bounded() {
        // premultiply → unpremultiply must be identity at full alpha
        // and lose at most 1/255 per channel otherwise (for channels
        // that survive the quantization floor).
        for a in [255u8, 254, 200, 128, 64, 17, 3, 1] {
            for ch in [0u8, 1, 50, 127, 128, 200, 254, 255] {
                let c = Color::rgba(ch, ch, ch, a);
                let p = premultiply(c);
                let back = unpremultiply(p.0 as u8, p.1 as u8, p.2 as u8, p.3 as u8);
                assert_eq!(back.a, a);
                if a == 255 {
                    assert_eq!(back, c, "full alpha must round-trip exactly");
                } else {
                    // Quantization floor: ch*a/255 truncates to 0 when
                    // ch*a < 255; those channels legitimately come back 0.
                    if (ch as u32 * a as u32) >= 255 {
                        let err = (back.r as i32 - ch as i32).abs();
                        let step = (255 / a as i32).max(1);
                        assert!(err <= step, "a={a} ch={ch} err={err} step={step}");
                    }
                }
            }
        }
    }

    #[test]
    fn non_alpha_destination_flattens_to_black() {
        // On an Rgb888 destination, "transparent" results land as
        // their premultiplied color — black — as documented on
        // `composite_rect`.
        let mut dst = Framebuffer::new(2, 2, PixelFormat::Rgb888);
        dst.fill_rect(&Rect::new(0, 0, 2, 2), Color::rgb(200, 150, 100));
        let mut src = Framebuffer::new(2, 2, PixelFormat::Rgba8888);
        src.fill_rect(&Rect::new(0, 0, 2, 2), Color::rgba(255, 255, 255, 255));
        composite_rect(&mut dst, &src, &Rect::new(0, 0, 2, 2), 0, 0, CompositeOp::Clear);
        assert_eq!(dst.get_pixel(0, 0).unwrap(), Color::rgb(0, 0, 0));
        // Xor of two opaque layers is transparent in RGBA terms; on a
        // 24-bit destination it flattens to black as well.
        dst.fill_rect(&Rect::new(0, 0, 2, 2), Color::rgb(200, 150, 100));
        composite_rect(&mut dst, &src, &Rect::new(0, 0, 2, 2), 0, 0, CompositeOp::Xor);
        assert_eq!(dst.get_pixel(1, 1).unwrap(), Color::rgb(0, 0, 0));
        // An opaque Over on the same destination stays exact.
        composite_rect(&mut dst, &src, &Rect::new(0, 0, 2, 2), 0, 0, CompositeOp::Over);
        assert_eq!(dst.get_pixel(1, 1).unwrap(), Color::rgb(255, 255, 255));
    }
}
