//! Porter–Duff alpha compositing.
//!
//! THINC commands carry a full alpha channel so that the protocol can
//! express graphics compositing operations (anti-aliased text and other
//! modern 2D desktop features, §3 of the paper). The server falls back
//! to these software implementations when the client lacks acceleration.

use crate::framebuffer::Framebuffer;
use crate::geometry::Rect;
use crate::pixel::Color;

/// The Porter–Duff binary compositing operators (Porter & Duff 1984).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompositeOp {
    /// Destination cleared to transparent.
    Clear,
    /// Source replaces destination.
    Src,
    /// Source over destination (the usual blending operator).
    Over,
    /// Source where destination is opaque.
    In,
    /// Source where destination is transparent.
    Out,
    /// Source atop destination.
    Atop,
    /// Exclusive regions of source and destination.
    Xor,
    /// Saturating addition of source and destination.
    Add,
}

impl CompositeOp {
    /// Composites source pixel `s` onto destination pixel `d`.
    ///
    /// Works in premultiplied space internally; inputs and outputs use
    /// straight alpha.
    pub fn apply(self, s: Color, d: Color) -> Color {
        let sp = premultiply(s);
        let dp = premultiply(d);
        let (fa, fb) = self.factors(sp.3, dp.3);
        let blend = |sc: u32, dc: u32| -> u32 {
            let v = sc * fa + dc * fb;
            // Factors are 0..=255 fixed point; renormalize.
            (v / 255).min(255)
        };
        let out = (
            blend(sp.0, dp.0),
            blend(sp.1, dp.1),
            blend(sp.2, dp.2),
            blend(sp.3, dp.3),
        );
        unpremultiply(out.0 as u8, out.1 as u8, out.2 as u8, out.3 as u8)
    }

    /// Per-operator blend factors `(Fa, Fb)` in 0..=255 fixed point,
    /// given source and destination alpha.
    fn factors(self, sa: u32, da: u32) -> (u32, u32) {
        match self {
            CompositeOp::Clear => (0, 0),
            CompositeOp::Src => (255, 0),
            CompositeOp::Over => (255, 255 - sa),
            CompositeOp::In => (da, 0),
            CompositeOp::Out => (255 - da, 0),
            CompositeOp::Atop => (da, 255 - sa),
            CompositeOp::Xor => (255 - da, 255 - sa),
            CompositeOp::Add => (255, 255),
        }
    }
}

fn premultiply(c: Color) -> (u32, u32, u32, u32) {
    let a = c.a as u32;
    (
        c.r as u32 * a / 255,
        c.g as u32 * a / 255,
        c.b as u32 * a / 255,
        a,
    )
}

fn unpremultiply(r: u8, g: u8, b: u8, a: u8) -> Color {
    if a == 0 {
        return Color::TRANSPARENT;
    }
    let un = |v: u8| -> u8 { ((v as u32 * 255 + a as u32 / 2) / a as u32).min(255) as u8 };
    Color::rgba(un(r), un(g), un(b), a)
}

/// Composites the rectangle `src_r` of `src` onto `dst` at
/// `(dst_x, dst_y)` using `op`, clipping to both buffers.
pub fn composite_rect(
    dst: &mut Framebuffer,
    src: &Framebuffer,
    src_r: &Rect,
    dst_x: i32,
    dst_y: i32,
    op: CompositeOp,
) {
    let src_clip = src_r.intersection(&src.bounds());
    for y in 0..src_clip.h as i32 {
        for x in 0..src_clip.w as i32 {
            let sx = src_clip.x + x;
            let sy = src_clip.y + y;
            let dx = dst_x + (sx - src_r.x);
            let dy = dst_y + (sy - src_r.y);
            let Some(s) = src.get_pixel(sx, sy) else { continue };
            let Some(d) = dst.get_pixel(dx, dy) else { continue };
            dst.set_pixel(dx, dy, op.apply(s, d));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::PixelFormat;

    #[test]
    fn over_opaque_source_wins() {
        let s = Color::rgb(200, 10, 10);
        let d = Color::rgb(0, 200, 0);
        assert_eq!(CompositeOp::Over.apply(s, d), s);
    }

    #[test]
    fn over_transparent_source_keeps_dest() {
        let s = Color::TRANSPARENT;
        let d = Color::rgb(0, 200, 0);
        assert_eq!(CompositeOp::Over.apply(s, d), d);
    }

    #[test]
    fn over_half_alpha_blends() {
        let s = Color::rgba(255, 255, 255, 128);
        let d = Color::rgb(0, 0, 0);
        let out = CompositeOp::Over.apply(s, d);
        assert_eq!(out.a, 255);
        assert!((out.r as i32 - 128).abs() <= 2, "r = {}", out.r);
    }

    #[test]
    fn clear_produces_transparent() {
        let out = CompositeOp::Clear.apply(Color::WHITE, Color::WHITE);
        assert_eq!(out, Color::TRANSPARENT);
    }

    #[test]
    fn src_replaces() {
        let s = Color::rgba(1, 2, 3, 77);
        let out = CompositeOp::Src.apply(s, Color::WHITE);
        assert_eq!(out.a, 77);
    }

    #[test]
    fn in_masks_by_dest_alpha() {
        let s = Color::rgb(100, 100, 100);
        let out = CompositeOp::In.apply(s, Color::TRANSPARENT);
        assert_eq!(out, Color::TRANSPARENT);
        let out2 = CompositeOp::In.apply(s, Color::rgba(0, 0, 0, 255));
        assert_eq!(out2.a, 255);
    }

    #[test]
    fn xor_of_opaque_pair_is_transparent() {
        let out = CompositeOp::Xor.apply(Color::WHITE, Color::BLACK);
        assert_eq!(out.a, 0);
    }

    #[test]
    fn add_saturates() {
        let out = CompositeOp::Add.apply(Color::rgb(200, 200, 200), Color::rgb(200, 200, 200));
        assert_eq!(out, Color::WHITE);
    }

    #[test]
    fn atop_keeps_dest_alpha() {
        let s = Color::rgba(255, 0, 0, 255);
        let d = Color::rgba(0, 0, 255, 128);
        let out = CompositeOp::Atop.apply(s, d);
        assert_eq!(out.a, 128);
    }

    #[test]
    fn composite_rect_blends_region() {
        let mut dst = Framebuffer::new(4, 4, PixelFormat::Rgba8888);
        dst.fill_rect(&Rect::new(0, 0, 4, 4), Color::rgba(0, 0, 0, 255));
        let mut src = Framebuffer::new(2, 2, PixelFormat::Rgba8888);
        src.fill_rect(&Rect::new(0, 0, 2, 2), Color::rgba(255, 255, 255, 255));
        composite_rect(&mut dst, &src, &Rect::new(0, 0, 2, 2), 1, 1, CompositeOp::Over);
        assert_eq!(dst.get_pixel(1, 1).unwrap().r, 255);
        assert_eq!(dst.get_pixel(0, 0).unwrap().r, 0);
        assert_eq!(dst.get_pixel(3, 3).unwrap().r, 0);
    }

    #[test]
    fn composite_rect_clips_out_of_bounds() {
        let mut dst = Framebuffer::new(2, 2, PixelFormat::Rgba8888);
        let src = Framebuffer::new(4, 4, PixelFormat::Rgba8888);
        // Must not panic even when mostly offscreen.
        composite_rect(&mut dst, &src, &Rect::new(0, 0, 4, 4), -2, -2, CompositeOp::Over);
    }
}
