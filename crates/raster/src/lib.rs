#![warn(missing_docs)]
//! Raster substrate for the THINC reproduction.
//!
//! This crate provides everything below the window system: pixel formats,
//! a software framebuffer, rectangle and region algebra, raster operations
//! (fill, tile, stipple, copy), Porter–Duff alpha compositing, YUV pixel
//! formats with colorspace conversion, and image resampling including a
//! simplified version of Fant's non-aliasing spatial transform, which the
//! THINC paper uses for server-side screen scaling.
//!
//! The design goal is determinism: every operation is pure software and
//! byte-exact, so the remote-display pipeline can be verified by comparing
//! framebuffer contents on both ends of the wire.

pub mod composite;
pub mod framebuffer;
pub mod geometry;
pub mod pixel;
pub mod reference;
pub mod region;
pub mod scale;
pub mod yuv;

pub use composite::{composite_rect, CompositeOp};
pub use framebuffer::Framebuffer;
pub use geometry::{Point, Rect};
pub use pixel::{Color, PixelFormat};
pub use region::Region;
pub use scale::{scale_image, ScaleFilter};
pub use yuv::{YuvFormat, YuvFrame};
