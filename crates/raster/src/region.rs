//! Regions: sets of pixels represented as disjoint rectangles.
//!
//! Command queues and damage tracking in THINC constantly compute
//! overlaps between display commands, so the region representation must
//! keep a canonical, disjoint rectangle list. We use the classic
//! band-based (y-x banded) representation from the X server: rectangles
//! are organized into horizontal bands sharing the same vertical span,
//! sorted by `y` then `x`, with adjacent coalescable rectangles merged.

use crate::geometry::Rect;

/// A set of pixels stored as disjoint, banded rectangles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Region {
    rects: Vec<Rect>,
}

impl Region {
    /// The empty region.
    pub fn new() -> Self {
        Self::default()
    }

    /// A region covering exactly `r` (empty if `r` is empty).
    pub fn from_rect(r: Rect) -> Self {
        if r.is_empty() {
            Self::new()
        } else {
            Self { rects: vec![r] }
        }
    }

    /// Builds a region as the union of arbitrary rectangles.
    pub fn from_rects(rs: &[Rect]) -> Self {
        let mut out = Self::new();
        for r in rs {
            out.union_rect(r);
        }
        out
    }

    /// Whether the region covers no pixels.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The disjoint rectangles making up the region.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Total number of pixels covered.
    pub fn area(&self) -> u64 {
        self.rects.iter().map(Rect::area).sum()
    }

    /// The tight bounding rectangle (empty rect for an empty region).
    pub fn bounds(&self) -> Rect {
        self.rects
            .iter()
            .fold(Rect::default(), |acc, r| acc.union(r))
    }

    /// Whether any pixel of `r` lies in the region.
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        self.rects.iter().any(|q| q.intersects(r))
    }

    /// Whether every pixel of `r` lies in the region.
    pub fn contains_rect(&self, r: &Rect) -> bool {
        if r.is_empty() {
            return true;
        }
        // Subtract the region from `r`; containment means nothing is left.
        let mut remainder = vec![*r];
        for q in &self.rects {
            let mut next = Vec::new();
            for piece in remainder {
                next.extend(piece.subtract(q));
            }
            remainder = next;
            if remainder.is_empty() {
                return true;
            }
        }
        remainder.is_empty()
    }

    /// Adds all pixels of `r` to the region.
    pub fn union_rect(&mut self, r: &Rect) {
        if r.is_empty() {
            return;
        }
        // Keep only the parts of `r` not already covered, then insert.
        let mut fresh = vec![*r];
        for q in &self.rects {
            let mut next = Vec::new();
            for piece in fresh {
                next.extend(piece.subtract(q));
            }
            fresh = next;
            if fresh.is_empty() {
                return;
            }
        }
        self.rects.extend(fresh);
        self.normalize();
    }

    /// Unions another region into this one.
    pub fn union(&mut self, other: &Region) {
        for r in &other.rects {
            self.union_rect(r);
        }
    }

    /// Removes all pixels of `r` from the region.
    pub fn subtract_rect(&mut self, r: &Rect) {
        if r.is_empty() || self.is_empty() {
            return;
        }
        let mut out = Vec::with_capacity(self.rects.len());
        for q in &self.rects {
            out.extend(q.subtract(r));
        }
        self.rects = out;
        self.normalize();
    }

    /// Subtracts another region from this one.
    pub fn subtract(&mut self, other: &Region) {
        for r in &other.rects {
            self.subtract_rect(r);
        }
    }

    /// Restricts the region to the pixels inside `r`.
    pub fn intersect_rect(&mut self, r: &Rect) {
        let mut out = Vec::with_capacity(self.rects.len());
        for q in &self.rects {
            let c = q.intersection(r);
            if !c.is_empty() {
                out.push(c);
            }
        }
        self.rects = out;
        self.normalize();
    }

    /// Returns the intersection of two regions.
    pub fn intersection(&self, other: &Region) -> Region {
        let mut out = Region::new();
        for a in &self.rects {
            for b in &other.rects {
                let c = a.intersection(b);
                if !c.is_empty() {
                    out.union_rect(&c);
                }
            }
        }
        out
    }

    /// Translates every rectangle by `(dx, dy)`.
    pub fn translate(&mut self, dx: i32, dy: i32) {
        for r in &mut self.rects {
            *r = r.translated(dx, dy);
        }
    }

    /// Re-establishes the canonical banded form: sorted by `(y, x)` with
    /// horizontally and vertically adjacent compatible rectangles merged.
    fn normalize(&mut self) {
        if self.rects.len() <= 1 {
            return;
        }
        self.rects.sort_by_key(|r| (r.y, r.x));
        // Merge horizontally adjacent rects in the same band.
        let mut merged: Vec<Rect> = Vec::with_capacity(self.rects.len());
        for r in self.rects.drain(..) {
            if let Some(last) = merged.last_mut() {
                if last.y == r.y && last.h == r.h && last.right() == r.x {
                    last.w += r.w;
                    continue;
                }
            }
            merged.push(r);
        }
        // Merge vertically adjacent bands with identical x-spans.
        let mut out: Vec<Rect> = Vec::with_capacity(merged.len());
        for r in merged {
            if let Some(prev) = out
                .iter_mut()
                .find(|p| p.x == r.x && p.w == r.w && p.bottom() == r.y)
            {
                prev.h += r.h;
                continue;
            }
            out.push(r);
        }
        out.sort_by_key(|r| (r.y, r.x));
        self.rects = out;
    }
}

impl From<Rect> for Region {
    fn from(r: Rect) -> Self {
        Region::from_rect(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_region() {
        let r = Region::new();
        assert!(r.is_empty());
        assert_eq!(r.area(), 0);
        assert!(r.bounds().is_empty());
    }

    #[test]
    fn union_of_disjoint_rects() {
        let mut r = Region::from_rect(Rect::new(0, 0, 2, 2));
        r.union_rect(&Rect::new(10, 10, 3, 3));
        assert_eq!(r.area(), 4 + 9);
        assert_eq!(r.rects().len(), 2);
    }

    #[test]
    fn union_of_overlapping_rects_counts_once() {
        let mut r = Region::from_rect(Rect::new(0, 0, 10, 10));
        r.union_rect(&Rect::new(5, 5, 10, 10));
        assert_eq!(r.area(), 100 + 100 - 25);
    }

    #[test]
    fn union_of_identical_rect_is_idempotent() {
        let mut r = Region::from_rect(Rect::new(1, 1, 5, 5));
        r.union_rect(&Rect::new(1, 1, 5, 5));
        assert_eq!(r.area(), 25);
        assert_eq!(r.rects().len(), 1);
    }

    #[test]
    fn adjacent_rects_coalesce() {
        let mut r = Region::from_rect(Rect::new(0, 0, 5, 5));
        r.union_rect(&Rect::new(5, 0, 5, 5));
        assert_eq!(r.rects().len(), 1);
        assert_eq!(r.bounds(), Rect::new(0, 0, 10, 5));
        let mut v = Region::from_rect(Rect::new(0, 0, 5, 5));
        v.union_rect(&Rect::new(0, 5, 5, 5));
        assert_eq!(v.rects().len(), 1);
        assert_eq!(v.bounds(), Rect::new(0, 0, 5, 10));
    }

    #[test]
    fn subtract_hole() {
        let mut r = Region::from_rect(Rect::new(0, 0, 10, 10));
        r.subtract_rect(&Rect::new(3, 3, 4, 4));
        assert_eq!(r.area(), 100 - 16);
        assert!(!r.contains_rect(&Rect::new(4, 4, 1, 1)));
        assert!(r.contains_rect(&Rect::new(0, 0, 3, 3)));
    }

    #[test]
    fn subtract_everything_empties() {
        let mut r = Region::from_rect(Rect::new(2, 2, 5, 5));
        r.subtract_rect(&Rect::new(0, 0, 20, 20));
        assert!(r.is_empty());
    }

    #[test]
    fn contains_rect_spanning_multiple_pieces() {
        // Two adjacent-but-not-coalescable pieces still jointly contain.
        let mut r = Region::from_rect(Rect::new(0, 0, 5, 10));
        r.union_rect(&Rect::new(5, 0, 5, 4));
        assert!(r.contains_rect(&Rect::new(0, 0, 10, 4)));
        assert!(!r.contains_rect(&Rect::new(0, 0, 10, 5)));
    }

    #[test]
    fn intersection_of_regions() {
        let a = Region::from_rect(Rect::new(0, 0, 10, 10));
        let b = Region::from_rects(&[Rect::new(5, 5, 10, 10), Rect::new(-5, -5, 7, 7)]);
        let c = a.intersection(&b);
        assert_eq!(c.area(), 25 + 4);
    }

    #[test]
    fn intersect_rect_clips() {
        let mut r = Region::from_rects(&[Rect::new(0, 0, 4, 4), Rect::new(8, 8, 4, 4)]);
        r.intersect_rect(&Rect::new(0, 0, 9, 9));
        assert_eq!(r.area(), 16 + 1);
    }

    #[test]
    fn translate_moves_everything() {
        let mut r = Region::from_rect(Rect::new(0, 0, 2, 2));
        r.translate(10, 20);
        assert_eq!(r.bounds(), Rect::new(10, 20, 2, 2));
    }

    #[test]
    fn from_rects_ignores_empty() {
        let r = Region::from_rects(&[Rect::default(), Rect::new(0, 0, 1, 1)]);
        assert_eq!(r.area(), 1);
    }

    #[test]
    fn rects_are_disjoint_after_messy_unions() {
        let mut r = Region::new();
        let inputs = [
            Rect::new(0, 0, 10, 10),
            Rect::new(5, 5, 10, 10),
            Rect::new(-3, 2, 6, 6),
            Rect::new(2, -3, 6, 6),
            Rect::new(0, 0, 20, 1),
        ];
        for i in &inputs {
            r.union_rect(i);
        }
        let rects = r.rects().to_vec();
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                assert!(!a.intersects(b), "{a:?} overlaps {b:?}");
            }
        }
        // Every input pixel is covered.
        for i in &inputs {
            assert!(r.contains_rect(i));
        }
    }
}
