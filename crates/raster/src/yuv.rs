//! YUV pixel formats and colorspace conversion.
//!
//! THINC transmits video as YUV data (§4.2): the preferred MPEG pixel
//! format YV12 represents a true-color pixel in 12 bits by subsampling
//! chroma 2×2, and the client "hardware" performs colorspace conversion
//! and scaling. This module implements the formats, conversion in both
//! directions (BT.601 full-range), and frame geometry.

use crate::framebuffer::Framebuffer;
use crate::geometry::Rect;
use crate::pixel::{Color, PixelFormat};

/// Supported YUV storage layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YuvFormat {
    /// Planar 4:2:0: full-resolution Y plane, then quarter-resolution V
    /// then U planes (the XVideo/MPEG favourite; 12 bits per pixel).
    Yv12,
    /// Packed 4:2:2: Y0 U Y1 V per pixel pair (16 bits per pixel).
    Yuy2,
}

impl YuvFormat {
    /// Size in bytes of one frame of `w`×`h` pixels.
    ///
    /// For [`YuvFormat::Yv12`], odd dimensions are rounded up for the
    /// chroma planes, as in the MPEG convention.
    pub const fn frame_size(self, w: u32, h: u32) -> usize {
        match self {
            YuvFormat::Yv12 => {
                let y = (w as usize) * (h as usize);
                let c = (w as usize).div_ceil(2) * (h as usize).div_ceil(2);
                y + 2 * c
            }
            YuvFormat::Yuy2 => {
                let pairs = (w as usize).div_ceil(2) * (h as usize);
                pairs * 4
            }
        }
    }

    /// Average bits per pixel of the format.
    pub const fn bits_per_pixel(self) -> u32 {
        match self {
            YuvFormat::Yv12 => 12,
            YuvFormat::Yuy2 => 16,
        }
    }
}

/// One video frame in a YUV format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YuvFrame {
    /// Storage layout.
    pub format: YuvFormat,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Raw plane data, laid out per `format`.
    pub data: Vec<u8>,
}

impl YuvFrame {
    /// Allocates a zeroed (green-black) frame.
    pub fn new(format: YuvFormat, width: u32, height: u32) -> Self {
        Self {
            format,
            width,
            height,
            data: vec![0; format.frame_size(width, height)],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data` has the wrong length for the geometry.
    pub fn from_data(format: YuvFormat, width: u32, height: u32, data: Vec<u8>) -> Self {
        assert_eq!(
            data.len(),
            format.frame_size(width, height),
            "YUV frame size mismatch"
        );
        Self {
            format,
            width,
            height,
            data,
        }
    }

    /// Converts an RGB framebuffer region into a YUV frame.
    ///
    /// The pack is monomorphized per source pixel format (const-`BPP`
    /// rows, inlined decode) and fuses decode with the BT.601 math:
    /// each packed source row converts straight into its Y row and
    /// per-pixel U/V scratch in one branch-free lane loop, and YV12
    /// chroma is averaged row-pair at a time straight into the V/U
    /// planes — no per-pixel bounds checks, no block accumulator
    /// arrays, no per-pixel branches, no intermediate planar pass.
    /// Odd-dimension edges (last row/column of odd-sized
    /// frames) are handled by dedicated tails that average only the
    /// pixels that exist — 2 for an odd edge, 1 for the corner — never
    /// reading past the plane. Byte-exact with
    /// [`crate::reference::yuv_from_rgb`].
    pub fn from_rgb(src: &Framebuffer, r: &Rect, format: YuvFormat) -> Self {
        let clip = r.intersection(&src.bounds());
        let (w, h) = (clip.w as usize, clip.h as usize);
        let mut frame = YuvFrame::new(format, clip.w, clip.h);
        if w == 0 || h == 0 {
            return frame;
        }
        let fmt = src.format();
        let stride = src.stride();
        let base = clip.y as usize * stride + clip.x as usize * fmt.bytes_per_pixel();
        let data = src.data();
        match fmt {
            PixelFormat::Indexed8 => pack_frame::<1>(&mut frame, w, h, data, base, stride, |p| {
                PixelFormat::Indexed8.decode(p)
            }),
            PixelFormat::Rgb565 => pack_frame::<2>(&mut frame, w, h, data, base, stride, |p| {
                PixelFormat::Rgb565.decode(p)
            }),
            PixelFormat::Rgb888 => pack_frame::<3>(&mut frame, w, h, data, base, stride, |p| {
                Color::rgb(p[0], p[1], p[2])
            }),
            PixelFormat::Rgba8888 => pack_frame::<4>(&mut frame, w, h, data, base, stride, |p| {
                Color::rgba(p[0], p[1], p[2], p[3])
            }),
        }
        frame
    }

    /// Reads the YUV pixel at `(x, y)` (chroma upsampled by replication).
    #[inline]
    pub fn yuv_at(&self, x: u32, y: u32) -> (u8, u8, u8) {
        debug_assert!(x < self.width && y < self.height);
        match self.format {
            YuvFormat::Yv12 => {
                let w = self.width as usize;
                let cw = (self.width as usize).div_ceil(2);
                let ch = (self.height as usize).div_ceil(2);
                let y_len = w * self.height as usize;
                let c_len = cw * ch;
                let yy = self.data[y as usize * w + x as usize];
                let ci = (y as usize / 2) * cw + (x as usize / 2);
                let vv = self.data[y_len + ci];
                let uu = self.data[y_len + c_len + ci];
                (yy, uu, vv)
            }
            YuvFormat::Yuy2 => {
                let pairs_per_row = (self.width as usize).div_ceil(2);
                let off = (y as usize * pairs_per_row + x as usize / 2) * 4;
                let yy = if x.is_multiple_of(2) {
                    self.data[off]
                } else {
                    self.data[off + 2]
                };
                (yy, self.data[off + 1], self.data[off + 3])
            }
        }
    }

    /// Converts to RGB, scaling to `dst_w`×`dst_h` by nearest-neighbour
    /// sampling — modeling the client video hardware's combined
    /// colorspace-conversion-and-scaling stage.
    pub fn to_rgb_scaled(&self, dst_w: u32, dst_h: u32, format: PixelFormat) -> Framebuffer {
        let mut out = Framebuffer::new(dst_w, dst_h, format);
        if self.width == 0 || self.height == 0 || dst_w == 0 || dst_h == 0 {
            return out;
        }
        // Precompute the horizontal source map once; each destination
        // row then converts straight into its packed row slice.
        let sx_map: Vec<u32> = (0..dst_w)
            .map(|dx| (dx as u64 * self.width as u64 / dst_w as u64) as u32)
            .collect();
        let bpp = format.bytes_per_pixel();
        let stride = out.stride();
        for dy in 0..dst_h as usize {
            let sy = (dy as u64 * self.height as u64 / dst_h as u64) as u32;
            let orow = &mut out.data_mut()[dy * stride..(dy + 1) * stride];
            for (px, &sx) in orow.chunks_exact_mut(bpp).zip(sx_map.iter()) {
                let (yy, uu, vv) = self.yuv_at(sx, sy);
                format.encode(yuv_to_rgb(yy, uu, vv), px);
            }
        }
        out
    }
}

/// Returns source row `y` of the clip as const-width pixel chunks.
#[inline]
fn row_px<const BPP: usize>(
    src: &[u8],
    base: usize,
    stride: usize,
    y: usize,
    w: usize,
) -> &[[u8; BPP]] {
    let off = base + y * stride;
    src[off..off + w * BPP].as_chunks::<BPP>().0
}

/// Fused decode + BT.601 lane loop: converts one packed source row
/// straight into a Y row and per-pixel U/V rows, without an
/// intermediate planar pass (profiling showed the extra plane
/// write/read costing ~2× on this kernel). The arithmetic is
/// [`rgb_to_yuv`] verbatim, evaluated per pixel in flat `i32` lanes.
#[cfg(not(feature = "simd"))]
#[inline]
fn yuv_row_lanes<const BPP: usize>(
    px: &[[u8; BPP]],
    y: &mut [u8],
    u: &mut [u8],
    v: &mut [u8],
    decode: impl Fn(&[u8; BPP]) -> Color + Copy,
) {
    let n = px.len();
    let (y, u, v) = (&mut y[..n], &mut u[..n], &mut v[..n]);
    for (j, p) in px.iter().enumerate() {
        let c = decode(p);
        let (rr, gg, bb) = (c.r as i32, c.g as i32, c.b as i32);
        y[j] = clamp_u8((77 * rr + 150 * gg + 29 * bb + 128) >> 8);
        u[j] = clamp_u8(((-43 * rr - 85 * gg + 128 * bb + 128) >> 8) + 128);
        v[j] = clamp_u8(((128 * rr - 107 * gg - 21 * bb + 128) >> 8) + 128);
    }
}

/// Explicit-lanes variant (`simd` feature): identical integer math in
/// fixed 8-wide pixel chunks with a scalar tail, so output bytes match
/// the default path exactly.
#[cfg(feature = "simd")]
#[inline]
fn yuv_row_lanes<const BPP: usize>(
    px: &[[u8; BPP]],
    y: &mut [u8],
    u: &mut [u8],
    v: &mut [u8],
    decode: impl Fn(&[u8; BPP]) -> Color + Copy,
) {
    const L: usize = 8;
    let n = px.len();
    let (y, u, v) = (&mut y[..n], &mut u[..n], &mut v[..n]);
    let (pc, pt) = px.as_chunks::<L>();
    let (yc, yt) = y.as_chunks_mut::<L>();
    let (uc, ut) = u.as_chunks_mut::<L>();
    let (vc, vt) = v.as_chunks_mut::<L>();
    for (((pp, yy), uu), vv) in pc.iter().zip(yc).zip(uc.iter_mut()).zip(vc) {
        let mut r = [0i32; L];
        let mut g = [0i32; L];
        let mut b = [0i32; L];
        for l in 0..L {
            let c = decode(&pp[l]);
            r[l] = c.r as i32;
            g[l] = c.g as i32;
            b[l] = c.b as i32;
        }
        for l in 0..L {
            yy[l] = clamp_u8((77 * r[l] + 150 * g[l] + 29 * b[l] + 128) >> 8);
            uu[l] = clamp_u8(((-43 * r[l] - 85 * g[l] + 128 * b[l] + 128) >> 8) + 128);
            vv[l] = clamp_u8(((128 * r[l] - 107 * g[l] - 21 * b[l] + 128) >> 8) + 128);
        }
    }
    for (j, p) in pt.iter().enumerate() {
        let c = decode(p);
        let (rr, gg, bb) = (c.r as i32, c.g as i32, c.b as i32);
        yt[j] = clamp_u8((77 * rr + 150 * gg + 29 * bb + 128) >> 8);
        ut[j] = clamp_u8(((-43 * rr - 85 * gg + 128 * bb + 128) >> 8) + 128);
        vt[j] = clamp_u8(((128 * rr - 107 * gg - 21 * bb + 128) >> 8) + 128);
    }
}

/// 2×2 block average: `out[i] = (a[2i] + a[2i+1] + b[2i] + b[2i+1])/4`.
#[inline]
fn avg4_pairs(a: &[u8], b: &[u8], out: &mut [u8]) {
    let (ap, _) = a.as_chunks::<2>();
    let (bp, _) = b.as_chunks::<2>();
    for ((o, pa), pb) in out.iter_mut().zip(ap).zip(bp) {
        *o = ((pa[0] as u32 + pa[1] as u32 + pb[0] as u32 + pb[1] as u32) / 4) as u8;
    }
}

/// 1×2 pair average for the odd bottom row: `out[i] = (a[2i] + a[2i+1])/2`.
#[inline]
fn avg2_pairs(a: &[u8], out: &mut [u8]) {
    let (ap, _) = a.as_chunks::<2>();
    for (o, pa) in out.iter_mut().zip(ap) {
        *o = ((pa[0] as u32 + pa[1] as u32) / 2) as u8;
    }
}

fn pack_frame<const BPP: usize>(
    frame: &mut YuvFrame,
    w: usize,
    h: usize,
    src: &[u8],
    base: usize,
    stride: usize,
    decode: impl Fn(&[u8; BPP]) -> Color + Copy,
) {
    match frame.format {
        YuvFormat::Yv12 => pack_yv12::<BPP>(&mut frame.data, w, h, src, base, stride, decode),
        YuvFormat::Yuy2 => pack_yuy2::<BPP>(&mut frame.data, w, h, src, base, stride, decode),
    }
}

/// Packs a clip into YV12 planes (Y, then V, then U), averaging chroma
/// over 2×2 blocks; odd edges average the 2 (edge) or 1 (corner)
/// pixels actually present.
fn pack_yv12<const BPP: usize>(
    data: &mut [u8],
    w: usize,
    h: usize,
    src: &[u8],
    base: usize,
    stride: usize,
    decode: impl Fn(&[u8; BPP]) -> Color + Copy,
) {
    let cw = w.div_ceil(2);
    let ch = h.div_ceil(2);
    let y_len = w * h;
    let c_len = cw * ch;
    let (y_plane, c_planes) = data.split_at_mut(y_len);
    let (v_plane, u_plane) = c_planes.split_at_mut(c_len);
    let pairs = w / 2;
    // Per-pixel chroma scratch for the current row pair.
    let mut uv = vec![0u8; 4 * w];
    let (u0v0, u1v1) = uv.split_at_mut(2 * w);
    let (u0, v0) = u0v0.split_at_mut(w);
    let (u1, v1) = u1v1.split_at_mut(w);
    for cy in 0..ch {
        let yy = cy * 2;
        let urow = &mut u_plane[cy * cw..][..cw];
        let vrow = &mut v_plane[cy * cw..][..cw];
        if yy + 1 < h {
            let (yr0, yr1) = y_plane[yy * w..][..2 * w].split_at_mut(w);
            yuv_row_lanes(row_px::<BPP>(src, base, stride, yy, w), yr0, u0, v0, decode);
            yuv_row_lanes(row_px::<BPP>(src, base, stride, yy + 1, w), yr1, u1, v1, decode);
            avg4_pairs(u0, u1, &mut urow[..pairs]);
            avg4_pairs(v0, v1, &mut vrow[..pairs]);
            if w % 2 == 1 {
                // Odd right edge: only one column in the block.
                urow[pairs] = ((u0[w - 1] as u32 + u1[w - 1] as u32) / 2) as u8;
                vrow[pairs] = ((v0[w - 1] as u32 + v1[w - 1] as u32) / 2) as u8;
            }
        } else {
            // Odd bottom edge: only one row in the block.
            let yr0 = &mut y_plane[yy * w..][..w];
            yuv_row_lanes(row_px::<BPP>(src, base, stride, yy, w), yr0, u0, v0, decode);
            avg2_pairs(u0, &mut urow[..pairs]);
            avg2_pairs(v0, &mut vrow[..pairs]);
            if w % 2 == 1 {
                // Corner block: a single pixel, replicated as-is.
                urow[pairs] = u0[w - 1];
                vrow[pairs] = v0[w - 1];
            }
        }
    }
}

/// Packs a clip into packed YUY2 (`Y0 U Y1 V` per pixel pair); an odd
/// final column replicates its own pixel as both halves of the pair.
fn pack_yuy2<const BPP: usize>(
    data: &mut [u8],
    w: usize,
    h: usize,
    src: &[u8],
    base: usize,
    stride: usize,
    decode: impl Fn(&[u8; BPP]) -> Color + Copy,
) {
    let pairs_per_row = w.div_ceil(2);
    let full = w / 2;
    // Per-row Y/U/V scratch; the pair interleave reads from here.
    let mut scratch = vec![0u8; 3 * w];
    let (yrow, uvrest) = scratch.split_at_mut(w);
    let (u0, v0) = uvrest.split_at_mut(w);
    for y in 0..h {
        yuv_row_lanes(row_px::<BPP>(src, base, stride, y, w), yrow, u0, v0, decode);
        let orow = &mut data[y * pairs_per_row * 4..][..pairs_per_row * 4];
        let (op, _) = orow.as_chunks_mut::<4>();
        for i in 0..full {
            op[i] = [
                yrow[2 * i],
                ((u0[2 * i] as u32 + u0[2 * i + 1] as u32) / 2) as u8,
                yrow[2 * i + 1],
                ((v0[2 * i] as u32 + v0[2 * i + 1] as u32) / 2) as u8,
            ];
        }
        if w % 2 == 1 {
            // Odd final column: the pair is the same pixel twice.
            op[full] = [yrow[w - 1], u0[w - 1], yrow[w - 1], v0[w - 1]];
        }
    }
}

/// Full-range BT.601 RGB → YUV.
#[inline]
pub fn rgb_to_yuv(c: Color) -> (u8, u8, u8) {
    let r = c.r as i32;
    let g = c.g as i32;
    let b = c.b as i32;
    let y = (77 * r + 150 * g + 29 * b + 128) >> 8;
    let u = ((-43 * r - 85 * g + 128 * b + 128) >> 8) + 128;
    let v = ((128 * r - 107 * g - 21 * b + 128) >> 8) + 128;
    (clamp_u8(y), clamp_u8(u), clamp_u8(v))
}

/// Full-range BT.601 YUV → RGB.
#[inline]
pub fn yuv_to_rgb(y: u8, u: u8, v: u8) -> Color {
    let y = y as i32;
    let u = u as i32 - 128;
    let v = v as i32 - 128;
    let r = y + ((359 * v + 128) >> 8);
    let g = y - ((88 * u + 183 * v + 128) >> 8);
    let b = y + ((454 * u + 128) >> 8);
    Color::rgb(clamp_u8(r), clamp_u8(g), clamp_u8(b))
}

#[inline]
fn clamp_u8(v: i32) -> u8 {
    v.clamp(0, 255) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yv12_frame_size_matches_12bpp() {
        // 352x240 (the paper's clip geometry): 12 bits per pixel.
        assert_eq!(YuvFormat::Yv12.frame_size(352, 240), 352 * 240 * 3 / 2);
        assert_eq!(YuvFormat::Yv12.bits_per_pixel(), 12);
    }

    #[test]
    fn yv12_odd_dimensions_round_up() {
        assert_eq!(YuvFormat::Yv12.frame_size(3, 3), 9 + 2 * 4);
    }

    #[test]
    fn yuy2_frame_size() {
        assert_eq!(YuvFormat::Yuy2.frame_size(4, 2), 4 * 2 * 2);
        assert_eq!(YuvFormat::Yuy2.frame_size(3, 2), 2 * 2 * 4);
    }

    #[test]
    fn grey_round_trips_exactly() {
        for g in [0u8, 64, 128, 200, 255] {
            let (y, u, v) = rgb_to_yuv(Color::rgb(g, g, g));
            assert!((u as i32 - 128).abs() <= 1);
            assert!((v as i32 - 128).abs() <= 1);
            let back = yuv_to_rgb(y, u, v);
            assert!((back.r as i32 - g as i32).abs() <= 2, "{g}: {back:?}");
        }
    }

    #[test]
    fn primaries_round_trip_within_tolerance() {
        for c in [
            Color::rgb(255, 0, 0),
            Color::rgb(0, 255, 0),
            Color::rgb(0, 0, 255),
            Color::rgb(255, 255, 0),
            Color::rgb(123, 45, 210),
        ] {
            let (y, u, v) = rgb_to_yuv(c);
            let back = yuv_to_rgb(y, u, v);
            for (a, b) in [(c.r, back.r), (c.g, back.g), (c.b, back.b)] {
                assert!((a as i32 - b as i32).abs() <= 6, "{c:?} -> {back:?}");
            }
        }
    }

    #[test]
    fn rgb_to_yv12_and_back_flat_region() {
        let mut fb = Framebuffer::new(8, 8, PixelFormat::Rgb888);
        fb.fill_rect(&Rect::new(0, 0, 8, 8), Color::rgb(50, 100, 150));
        let frame = YuvFrame::from_rgb(&fb, &Rect::new(0, 0, 8, 8), YuvFormat::Yv12);
        let back = frame.to_rgb_scaled(8, 8, PixelFormat::Rgb888);
        let c = back.get_pixel(4, 4).unwrap();
        assert!((c.r as i32 - 50).abs() <= 6);
        assert!((c.g as i32 - 100).abs() <= 6);
        assert!((c.b as i32 - 150).abs() <= 6);
    }

    #[test]
    fn hardware_scaling_changes_geometry_not_data_size() {
        let frame = YuvFrame::new(YuvFormat::Yv12, 352, 240);
        // Scaling to fullscreen is free on the wire: same frame data.
        let small = frame.to_rgb_scaled(352, 240, PixelFormat::Rgb888);
        let large = frame.to_rgb_scaled(1024, 768, PixelFormat::Rgb888);
        assert_eq!(small.width(), 352);
        assert_eq!(large.width(), 1024);
        assert_eq!(frame.data.len(), YuvFormat::Yv12.frame_size(352, 240));
    }

    #[test]
    fn yuy2_round_trip_flat() {
        let mut fb = Framebuffer::new(4, 2, PixelFormat::Rgb888);
        fb.fill_rect(&Rect::new(0, 0, 4, 2), Color::rgb(200, 40, 90));
        let frame = YuvFrame::from_rgb(&fb, &Rect::new(0, 0, 4, 2), YuvFormat::Yuy2);
        let back = frame.to_rgb_scaled(4, 2, PixelFormat::Rgb888);
        let c = back.get_pixel(2, 1).unwrap();
        assert!((c.r as i32 - 200).abs() <= 6);
    }

    #[test]
    #[should_panic(expected = "YUV frame size mismatch")]
    fn from_data_validates_length() {
        let _ = YuvFrame::from_data(YuvFormat::Yv12, 4, 4, vec![0; 3]);
    }
}
