//! YUV pixel formats and colorspace conversion.
//!
//! THINC transmits video as YUV data (§4.2): the preferred MPEG pixel
//! format YV12 represents a true-color pixel in 12 bits by subsampling
//! chroma 2×2, and the client "hardware" performs colorspace conversion
//! and scaling. This module implements the formats, conversion in both
//! directions (BT.601 full-range), and frame geometry.

use crate::framebuffer::Framebuffer;
use crate::geometry::Rect;
use crate::pixel::{Color, PixelFormat};

/// Supported YUV storage layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YuvFormat {
    /// Planar 4:2:0: full-resolution Y plane, then quarter-resolution V
    /// then U planes (the XVideo/MPEG favourite; 12 bits per pixel).
    Yv12,
    /// Packed 4:2:2: Y0 U Y1 V per pixel pair (16 bits per pixel).
    Yuy2,
}

impl YuvFormat {
    /// Size in bytes of one frame of `w`×`h` pixels.
    ///
    /// For [`YuvFormat::Yv12`], odd dimensions are rounded up for the
    /// chroma planes, as in the MPEG convention.
    pub const fn frame_size(self, w: u32, h: u32) -> usize {
        match self {
            YuvFormat::Yv12 => {
                let y = (w as usize) * (h as usize);
                let c = (w as usize).div_ceil(2) * (h as usize).div_ceil(2);
                y + 2 * c
            }
            YuvFormat::Yuy2 => {
                let pairs = (w as usize).div_ceil(2) * (h as usize);
                pairs * 4
            }
        }
    }

    /// Average bits per pixel of the format.
    pub const fn bits_per_pixel(self) -> u32 {
        match self {
            YuvFormat::Yv12 => 12,
            YuvFormat::Yuy2 => 16,
        }
    }
}

/// One video frame in a YUV format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YuvFrame {
    /// Storage layout.
    pub format: YuvFormat,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Raw plane data, laid out per `format`.
    pub data: Vec<u8>,
}

impl YuvFrame {
    /// Allocates a zeroed (green-black) frame.
    pub fn new(format: YuvFormat, width: u32, height: u32) -> Self {
        Self {
            format,
            width,
            height,
            data: vec![0; format.frame_size(width, height)],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data` has the wrong length for the geometry.
    pub fn from_data(format: YuvFormat, width: u32, height: u32, data: Vec<u8>) -> Self {
        assert_eq!(
            data.len(),
            format.frame_size(width, height),
            "YUV frame size mismatch"
        );
        Self {
            format,
            width,
            height,
            data,
        }
    }

    /// Converts an RGB framebuffer region into a YUV frame.
    ///
    /// The pack walks packed source rows directly (no per-pixel bounds
    /// checks or offset math); it is byte-exact with
    /// [`crate::reference::yuv_from_rgb`].
    pub fn from_rgb(src: &Framebuffer, r: &Rect, format: YuvFormat) -> Self {
        let clip = r.intersection(&src.bounds());
        let (w, h) = (clip.w, clip.h);
        let mut frame = YuvFrame::new(format, w, h);
        let fmt = src.format();
        let bpp = fmt.bytes_per_pixel();
        let stride = src.stride();
        let base = clip.y as usize * stride + clip.x as usize * bpp;
        let row_at = |y: usize| -> &[u8] {
            let off = base + y * stride;
            &src.data()[off..off + w as usize * bpp]
        };
        match format {
            YuvFormat::Yv12 => {
                let (cw, ch) = ((w as usize).div_ceil(2), (h as usize).div_ceil(2));
                let y_plane_len = w as usize * h as usize;
                let c_len = cw * ch;
                // Accumulate chroma for 2x2 blocks.
                let mut u_acc = vec![0u32; c_len];
                let mut v_acc = vec![0u32; c_len];
                let mut n_acc = vec![0u32; c_len];
                let _ = ch;
                for y in 0..h as usize {
                    let row = row_at(y);
                    let yrow = &mut frame.data[y * w as usize..(y + 1) * w as usize];
                    let crow = y / 2 * cw;
                    for (x, px) in row.chunks_exact(bpp).enumerate() {
                        let (yy, uu, vv) = rgb_to_yuv(fmt.decode(px));
                        yrow[x] = yy;
                        let ci = crow + x / 2;
                        u_acc[ci] += uu as u32;
                        v_acc[ci] += vv as u32;
                        n_acc[ci] += 1;
                    }
                }
                // YV12 plane order: Y, V, U.
                for i in 0..c_len {
                    let n = n_acc[i].max(1);
                    frame.data[y_plane_len + i] = (v_acc[i] / n) as u8;
                    frame.data[y_plane_len + c_len + i] = (u_acc[i] / n) as u8;
                }
            }
            YuvFormat::Yuy2 => {
                let pairs_per_row = (w as usize).div_ceil(2);
                for y in 0..h as usize {
                    let row = row_at(y);
                    let orow = &mut frame.data[y * pairs_per_row * 4..(y + 1) * pairs_per_row * 4];
                    for (px, o) in orow.chunks_exact_mut(4).enumerate() {
                        let x0 = px * 2;
                        let x1 = (x0 + 1).min(w as usize - 1);
                        let c0 = fmt.decode(&row[x0 * bpp..(x0 + 1) * bpp]);
                        let c1 = fmt.decode(&row[x1 * bpp..(x1 + 1) * bpp]);
                        let (y0, u0, v0) = rgb_to_yuv(c0);
                        let (y1, u1, v1) = rgb_to_yuv(c1);
                        o[0] = y0;
                        o[1] = ((u0 as u32 + u1 as u32) / 2) as u8;
                        o[2] = y1;
                        o[3] = ((v0 as u32 + v1 as u32) / 2) as u8;
                    }
                }
            }
        }
        frame
    }

    /// Reads the YUV pixel at `(x, y)` (chroma upsampled by replication).
    #[inline]
    pub fn yuv_at(&self, x: u32, y: u32) -> (u8, u8, u8) {
        debug_assert!(x < self.width && y < self.height);
        match self.format {
            YuvFormat::Yv12 => {
                let w = self.width as usize;
                let cw = (self.width as usize).div_ceil(2);
                let ch = (self.height as usize).div_ceil(2);
                let y_len = w * self.height as usize;
                let c_len = cw * ch;
                let yy = self.data[y as usize * w + x as usize];
                let ci = (y as usize / 2) * cw + (x as usize / 2);
                let vv = self.data[y_len + ci];
                let uu = self.data[y_len + c_len + ci];
                (yy, uu, vv)
            }
            YuvFormat::Yuy2 => {
                let pairs_per_row = (self.width as usize).div_ceil(2);
                let off = (y as usize * pairs_per_row + x as usize / 2) * 4;
                let yy = if x.is_multiple_of(2) {
                    self.data[off]
                } else {
                    self.data[off + 2]
                };
                (yy, self.data[off + 1], self.data[off + 3])
            }
        }
    }

    /// Converts to RGB, scaling to `dst_w`×`dst_h` by nearest-neighbour
    /// sampling — modeling the client video hardware's combined
    /// colorspace-conversion-and-scaling stage.
    pub fn to_rgb_scaled(&self, dst_w: u32, dst_h: u32, format: PixelFormat) -> Framebuffer {
        let mut out = Framebuffer::new(dst_w, dst_h, format);
        if self.width == 0 || self.height == 0 || dst_w == 0 || dst_h == 0 {
            return out;
        }
        // Precompute the horizontal source map once; each destination
        // row then converts straight into its packed row slice.
        let sx_map: Vec<u32> = (0..dst_w)
            .map(|dx| (dx as u64 * self.width as u64 / dst_w as u64) as u32)
            .collect();
        let bpp = format.bytes_per_pixel();
        let stride = out.stride();
        for dy in 0..dst_h as usize {
            let sy = (dy as u64 * self.height as u64 / dst_h as u64) as u32;
            let orow = &mut out.data_mut()[dy * stride..(dy + 1) * stride];
            for (px, &sx) in orow.chunks_exact_mut(bpp).zip(sx_map.iter()) {
                let (yy, uu, vv) = self.yuv_at(sx, sy);
                format.encode(yuv_to_rgb(yy, uu, vv), px);
            }
        }
        out
    }
}

/// Full-range BT.601 RGB → YUV.
#[inline]
pub fn rgb_to_yuv(c: Color) -> (u8, u8, u8) {
    let r = c.r as i32;
    let g = c.g as i32;
    let b = c.b as i32;
    let y = (77 * r + 150 * g + 29 * b + 128) >> 8;
    let u = ((-43 * r - 85 * g + 128 * b + 128) >> 8) + 128;
    let v = ((128 * r - 107 * g - 21 * b + 128) >> 8) + 128;
    (clamp_u8(y), clamp_u8(u), clamp_u8(v))
}

/// Full-range BT.601 YUV → RGB.
#[inline]
pub fn yuv_to_rgb(y: u8, u: u8, v: u8) -> Color {
    let y = y as i32;
    let u = u as i32 - 128;
    let v = v as i32 - 128;
    let r = y + ((359 * v + 128) >> 8);
    let g = y - ((88 * u + 183 * v + 128) >> 8);
    let b = y + ((454 * u + 128) >> 8);
    Color::rgb(clamp_u8(r), clamp_u8(g), clamp_u8(b))
}

#[inline]
fn clamp_u8(v: i32) -> u8 {
    v.clamp(0, 255) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yv12_frame_size_matches_12bpp() {
        // 352x240 (the paper's clip geometry): 12 bits per pixel.
        assert_eq!(YuvFormat::Yv12.frame_size(352, 240), 352 * 240 * 3 / 2);
        assert_eq!(YuvFormat::Yv12.bits_per_pixel(), 12);
    }

    #[test]
    fn yv12_odd_dimensions_round_up() {
        assert_eq!(YuvFormat::Yv12.frame_size(3, 3), 9 + 2 * 4);
    }

    #[test]
    fn yuy2_frame_size() {
        assert_eq!(YuvFormat::Yuy2.frame_size(4, 2), 4 * 2 * 2);
        assert_eq!(YuvFormat::Yuy2.frame_size(3, 2), 2 * 2 * 4);
    }

    #[test]
    fn grey_round_trips_exactly() {
        for g in [0u8, 64, 128, 200, 255] {
            let (y, u, v) = rgb_to_yuv(Color::rgb(g, g, g));
            assert!((u as i32 - 128).abs() <= 1);
            assert!((v as i32 - 128).abs() <= 1);
            let back = yuv_to_rgb(y, u, v);
            assert!((back.r as i32 - g as i32).abs() <= 2, "{g}: {back:?}");
        }
    }

    #[test]
    fn primaries_round_trip_within_tolerance() {
        for c in [
            Color::rgb(255, 0, 0),
            Color::rgb(0, 255, 0),
            Color::rgb(0, 0, 255),
            Color::rgb(255, 255, 0),
            Color::rgb(123, 45, 210),
        ] {
            let (y, u, v) = rgb_to_yuv(c);
            let back = yuv_to_rgb(y, u, v);
            for (a, b) in [(c.r, back.r), (c.g, back.g), (c.b, back.b)] {
                assert!((a as i32 - b as i32).abs() <= 6, "{c:?} -> {back:?}");
            }
        }
    }

    #[test]
    fn rgb_to_yv12_and_back_flat_region() {
        let mut fb = Framebuffer::new(8, 8, PixelFormat::Rgb888);
        fb.fill_rect(&Rect::new(0, 0, 8, 8), Color::rgb(50, 100, 150));
        let frame = YuvFrame::from_rgb(&fb, &Rect::new(0, 0, 8, 8), YuvFormat::Yv12);
        let back = frame.to_rgb_scaled(8, 8, PixelFormat::Rgb888);
        let c = back.get_pixel(4, 4).unwrap();
        assert!((c.r as i32 - 50).abs() <= 6);
        assert!((c.g as i32 - 100).abs() <= 6);
        assert!((c.b as i32 - 150).abs() <= 6);
    }

    #[test]
    fn hardware_scaling_changes_geometry_not_data_size() {
        let frame = YuvFrame::new(YuvFormat::Yv12, 352, 240);
        // Scaling to fullscreen is free on the wire: same frame data.
        let small = frame.to_rgb_scaled(352, 240, PixelFormat::Rgb888);
        let large = frame.to_rgb_scaled(1024, 768, PixelFormat::Rgb888);
        assert_eq!(small.width(), 352);
        assert_eq!(large.width(), 1024);
        assert_eq!(frame.data.len(), YuvFormat::Yv12.frame_size(352, 240));
    }

    #[test]
    fn yuy2_round_trip_flat() {
        let mut fb = Framebuffer::new(4, 2, PixelFormat::Rgb888);
        fb.fill_rect(&Rect::new(0, 0, 4, 2), Color::rgb(200, 40, 90));
        let frame = YuvFrame::from_rgb(&fb, &Rect::new(0, 0, 4, 2), YuvFormat::Yuy2);
        let back = frame.to_rgb_scaled(4, 2, PixelFormat::Rgb888);
        let c = back.get_pixel(2, 1).unwrap();
        assert!((c.r as i32 - 200).abs() <= 6);
    }

    #[test]
    #[should_panic(expected = "YUV frame size mismatch")]
    fn from_data_validates_length() {
        let _ = YuvFrame::from_data(YuvFormat::Yv12, 4, 4, vec![0; 3]);
    }
}
