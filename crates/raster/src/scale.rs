//! Image resampling, including a simplified Fant resampler.
//!
//! THINC's server-side screen scaling (§6, §7) uses "a simplified
//! version of Fant's resampling algorithm, which produces high quality,
//! anti-aliased results with very low overhead". Fant's algorithm
//! (IEEE CG&A 1986) is a separable, area-weighted streaming resampler;
//! the simplified form implemented here computes, for each destination
//! pixel, the exact coverage-weighted average of the source pixels its
//! footprint spans — first horizontally, then vertically. For integer
//! upscaling it degenerates to pixel replication with interpolation at
//! fractional boundaries; for downscaling it is a proper box filter, so
//! no source pixel is dropped (the property that makes the paper's PDA
//! screenshots readable where client-side nearest-neighbour is not).

use crate::framebuffer::Framebuffer;
use crate::geometry::Rect;
use crate::pixel::Color;

/// Resampling filters available to the scaling pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleFilter {
    /// Nearest-neighbour point sampling — the cheap client-side scaler
    /// used by comparator systems (fast, aliased).
    Nearest,
    /// Simplified Fant area resampling — anti-aliased server-side
    /// scaling as in the THINC prototype.
    Fant,
}

/// Scales `src` to `dst_w`×`dst_h` using `filter`.
///
/// Returns an empty framebuffer when either destination dimension is 0.
pub fn scale_image(src: &Framebuffer, dst_w: u32, dst_h: u32, filter: ScaleFilter) -> Framebuffer {
    let mut dst = Framebuffer::new(dst_w, dst_h, src.format());
    if dst_w == 0 || dst_h == 0 || src.width() == 0 || src.height() == 0 {
        return dst;
    }
    match filter {
        ScaleFilter::Nearest => scale_nearest(src, &mut dst),
        ScaleFilter::Fant => scale_fant(src, &mut dst),
    }
    dst
}

/// Scales the sub-rectangle `r` of `src` and returns it as its own
/// buffer of `dst_w`×`dst_h` pixels.
pub fn scale_region(
    src: &Framebuffer,
    r: &Rect,
    dst_w: u32,
    dst_h: u32,
    filter: ScaleFilter,
) -> Framebuffer {
    let clip = r.intersection(&src.bounds());
    let mut cut = Framebuffer::new(clip.w, clip.h, src.format());
    let (_, raw) = src.get_raw(&clip);
    if !clip.is_empty() {
        cut.put_raw(&Rect::new(0, 0, clip.w, clip.h), &raw);
    }
    scale_image(&cut, dst_w, dst_h, filter)
}

fn scale_nearest(src: &Framebuffer, dst: &mut Framebuffer) {
    let (sw, sh) = (src.width() as u64, src.height() as u64);
    let (dw, dh) = (dst.width() as u64, dst.height() as u64);
    let bpp = src.format().bytes_per_pixel();
    let s_stride = src.stride();
    let d_stride = dst.stride();
    // The horizontal source map is identical for every row: compute the
    // source byte offsets once, then blit pixel bytes row by row.
    let sx_off: Vec<usize> = (0..dw).map(|dx| (dx * sw / dw) as usize * bpp).collect();
    let dst_h = dst.height() as usize;
    let dst_data = dst.data_mut();
    for dy in 0..dst_h {
        let sy = (dy as u64 * sh / dh) as usize;
        let srow = &src.data()[sy * s_stride..(sy + 1) * s_stride];
        let drow = &mut dst_data[dy * d_stride..(dy + 1) * d_stride];
        for (d, &s_off) in drow.chunks_exact_mut(bpp).zip(sx_off.iter()) {
            d.copy_from_slice(&srow[s_off..s_off + bpp]);
        }
    }
}

/// Separable area-weighted resampling (simplified Fant).
///
/// The per-output-pixel overlap weights depend only on the axis
/// lengths, so they are computed once per axis (instead of once per
/// line as the naive kernel does) and replayed with the identical
/// floating-point evaluation order — the output stays byte-exact with
/// [`crate::reference::scale_fant`].
fn scale_fant(src: &Framebuffer, dst: &mut Framebuffer) {
    let sw = src.width() as usize;
    let sh = src.height() as usize;
    let dw = dst.width() as usize;
    let dh = dst.height() as usize;
    let h_spans = compute_spans(sw, dw);
    let v_spans = compute_spans(sh, dh);
    let fmt = src.format();
    let bpp = fmt.bytes_per_pixel();
    let s_stride = src.stride();
    // Horizontal pass into an intermediate f32 RGBA buffer (sh rows x dw).
    let mut mid = vec![[0f32; 4]; sh * dw];
    let mut row_in: Vec<[f32; 4]> = Vec::with_capacity(sw);
    for y in 0..sh {
        row_in.clear();
        let srow = &src.data()[y * s_stride..(y + 1) * s_stride];
        for px in srow.chunks_exact(bpp) {
            let c = fmt.decode(px);
            row_in.push([c.r as f32, c.g as f32, c.b as f32, c.a as f32]);
        }
        resample_line(&row_in, &mut mid[y * dw..(y + 1) * dw], &h_spans);
    }
    // Vertical pass.
    let d_stride = dst.stride();
    let dst_data = dst.data_mut();
    let mut col_in: Vec<[f32; 4]> = vec![[0f32; 4]; sh];
    let mut col_out: Vec<[f32; 4]> = vec![[0f32; 4]; dh];
    for x in 0..dw {
        for y in 0..sh {
            col_in[y] = mid[y * dw + x];
        }
        resample_line(&col_in, &mut col_out, &v_spans);
        for (y, p) in col_out.iter().copied().enumerate().take(dh) {
            let q = |v: f32| -> u8 { (v + 0.5).clamp(0.0, 255.0) as u8 };
            let c = Color::rgba(q(p[0]), q(p[1]), q(p[2]), q(p[3]));
            let off = y * d_stride + x * bpp;
            fmt.encode(c, &mut dst_data[off..off + bpp]);
        }
    }
}

/// Area-overlap span of one output sample: the first contributing
/// source index, the per-source overlap weights, and their sum.
struct Span {
    first: usize,
    weights: Vec<f64>,
    total: f64,
}

/// Computes the coverage spans mapping `n` source samples to `m`
/// output samples: output `i` covers `[i*n/m, (i+1)*n/m)`.
///
/// The arithmetic (and therefore rounding) is identical to the naive
/// per-line computation in [`crate::reference`].
fn compute_spans(n: usize, m: usize) -> Vec<Span> {
    if n == 0 || m == 0 {
        return Vec::new();
    }
    let step = n as f64 / m as f64;
    (0..m)
        .map(|i| {
            let lo = i as f64 * step;
            let hi = lo + step;
            let first = lo.floor() as usize;
            let last = (hi.ceil() as usize).min(n);
            let mut weights = Vec::with_capacity(last.saturating_sub(first));
            let mut total = 0f64;
            for s in first..last {
                let s_lo = s as f64;
                let s_hi = s_lo + 1.0;
                let overlap = (hi.min(s_hi) - lo.max(s_lo)).max(0.0);
                weights.push(overlap);
                if overlap > 0.0 {
                    total += overlap;
                }
            }
            Span {
                first,
                weights,
                total,
            }
        })
        .collect()
}

/// Resamples a 1-D line of RGBA samples using precomputed spans.
fn resample_line(input: &[[f32; 4]], out: &mut [[f32; 4]], spans: &[Span]) {
    if input.is_empty() || out.is_empty() {
        return;
    }
    debug_assert_eq!(spans.len(), out.len());
    for (o, span) in out.iter_mut().zip(spans.iter()) {
        let mut acc = [0f64; 4];
        for (sample, &overlap) in input[span.first..]
            .iter()
            .zip(span.weights.iter())
            .filter(|&(_, &w)| w > 0.0)
        {
            for k in 0..4 {
                acc[k] += sample[k] as f64 * overlap;
            }
        }
        if span.total > 0.0 {
            for k in 0..4 {
                o[k] = (acc[k] / span.total) as f32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::PixelFormat;

    fn flat(w: u32, h: u32, c: Color) -> Framebuffer {
        let mut f = Framebuffer::new(w, h, PixelFormat::Rgb888);
        f.fill_rect(&Rect::new(0, 0, w, h), c);
        f
    }

    #[test]
    fn flat_image_stays_flat_under_both_filters() {
        let src = flat(10, 10, Color::rgb(40, 90, 160));
        for filter in [ScaleFilter::Nearest, ScaleFilter::Fant] {
            let out = scale_image(&src, 3, 7, filter);
            for y in 0..7 {
                for x in 0..3 {
                    assert_eq!(out.get_pixel(x, y), Some(Color::rgb(40, 90, 160)));
                }
            }
        }
    }

    #[test]
    fn identity_scale_is_exact() {
        let mut src = Framebuffer::new(5, 5, PixelFormat::Rgb888);
        for y in 0..5 {
            for x in 0..5 {
                src.set_pixel(x, y, Color::rgb((x * 50) as u8, (y * 50) as u8, 7));
            }
        }
        let out = scale_image(&src, 5, 5, ScaleFilter::Fant);
        assert_eq!(out, src);
        let out2 = scale_image(&src, 5, 5, ScaleFilter::Nearest);
        assert_eq!(out2, src);
    }

    #[test]
    fn fant_downscale_averages_no_pixel_dropped() {
        // Half black, half white columns; 8 -> 2: both outputs are the
        // average of their own half, i.e. pure black and pure white.
        let mut src = Framebuffer::new(8, 1, PixelFormat::Rgb888);
        src.fill_rect(&Rect::new(4, 0, 4, 1), Color::WHITE);
        let out = scale_image(&src, 2, 1, ScaleFilter::Fant);
        assert_eq!(out.get_pixel(0, 0), Some(Color::BLACK));
        assert_eq!(out.get_pixel(1, 0), Some(Color::WHITE));
        // 8 -> 1: true global average.
        let one = scale_image(&src, 1, 1, ScaleFilter::Fant);
        let c = one.get_pixel(0, 0).unwrap();
        assert!((c.r as i32 - 128).abs() <= 1, "{c:?}");
    }

    #[test]
    fn fant_antialiases_thin_features_nearest_drops_them() {
        // A single white column among 7 black ones, downscaled 8 -> 2.
        let mut src = Framebuffer::new(8, 1, PixelFormat::Rgb888);
        src.fill_rect(&Rect::new(3, 0, 1, 1), Color::WHITE);
        let fant = scale_image(&src, 2, 1, ScaleFilter::Fant);
        // Fant keeps 1/4 of the white energy in the left output pixel.
        assert!(fant.get_pixel(0, 0).unwrap().r > 0);
        let nearest = scale_image(&src, 2, 1, ScaleFilter::Nearest);
        // Nearest samples source x=0 and x=4, both black: feature lost.
        assert_eq!(nearest.get_pixel(0, 0), Some(Color::BLACK));
        assert_eq!(nearest.get_pixel(1, 0), Some(Color::BLACK));
    }

    #[test]
    fn upscale_replicates_content() {
        let mut src = Framebuffer::new(2, 1, PixelFormat::Rgb888);
        src.set_pixel(1, 0, Color::WHITE);
        let out = scale_image(&src, 4, 1, ScaleFilter::Fant);
        assert_eq!(out.get_pixel(0, 0), Some(Color::BLACK));
        assert_eq!(out.get_pixel(3, 0), Some(Color::WHITE));
    }

    #[test]
    fn zero_sized_destination_is_empty() {
        let src = flat(4, 4, Color::WHITE);
        let out = scale_image(&src, 0, 3, ScaleFilter::Fant);
        assert_eq!(out.width(), 0);
        assert_eq!(out.data().len(), 0);
    }

    #[test]
    fn scale_region_extracts_and_scales() {
        let mut src = flat(8, 8, Color::BLACK);
        src.fill_rect(&Rect::new(4, 4, 4, 4), Color::WHITE);
        let out = scale_region(&src, &Rect::new(4, 4, 4, 4), 2, 2, ScaleFilter::Fant);
        assert_eq!(out.get_pixel(0, 0), Some(Color::WHITE));
        assert_eq!(out.get_pixel(1, 1), Some(Color::WHITE));
    }

    #[test]
    fn pda_ratio_downscale_shape() {
        // 1024x768 -> 320x240, the paper's PDA configuration.
        let src = flat(128, 96, Color::rgb(10, 20, 30));
        let out = scale_image(&src, 40, 30, ScaleFilter::Fant);
        assert_eq!((out.width(), out.height()), (40, 30));
        assert_eq!(out.get_pixel(20, 15), Some(Color::rgb(10, 20, 30)));
    }
}
