//! Image resampling, including a simplified Fant resampler.
//!
//! THINC's server-side screen scaling (§6, §7) uses "a simplified
//! version of Fant's resampling algorithm, which produces high quality,
//! anti-aliased results with very low overhead". Fant's algorithm
//! (IEEE CG&A 1986) is a separable, area-weighted streaming resampler;
//! the simplified form implemented here computes, for each destination
//! pixel, the exact coverage-weighted average of the source pixels its
//! footprint spans — first horizontally, then vertically. For integer
//! upscaling it degenerates to pixel replication with interpolation at
//! fractional boundaries; for downscaling it is a proper box filter, so
//! no source pixel is dropped (the property that makes the paper's PDA
//! screenshots readable where client-side nearest-neighbour is not).
//!
//! ## Fixed-point rounding contract
//!
//! The Fant kernel is pure integer arithmetic. For an `n → m` axis map,
//! output sample `i` covers the half-open source interval
//! `[i·n/m, (i+1)·n/m)`; all coverage weights are held in units of
//! `1/m` source samples, so every weight is an exact integer: output
//! `i` overlaps source `s` by `min((i+1)·n, (s+1)·m) − max(i·n, s·m)`
//! when that difference is positive. Each output's weights sum to
//! exactly `n`, and each source sample's weight across all outputs
//! sums to exactly `m` — full coverage with no dropped or
//! double-counted tail columns, by construction (see [`fant_spans`]
//! and the coverage proptests in `tests/degenerate.rs`).
//!
//! A destination pixel's value is the exact rational `num / den` with
//! `den = sw·sh` and `num = Σ_y w_y · Σ_x w_x · p(x,y)`, quantized
//! **round half up**: `q = ⌊(num + ⌊den/2⌋) / den⌋`. Integer addition
//! is associative, so any loop order, chunking, or vectorization of
//! the sums produces identical bytes — the hazard that motivated
//! retiring the old `f32`/`f64` kernel, where FP contraction and
//! reassociation could legally change results across targets and opt
//! levels once the loops vectorized.
//!
//! Documented range invariant (asserted at the kernel entry): source
//! dimensions satisfy `sw ≤ 2^24` and `sw·sh ≤ 2^48`, which keeps
//! horizontal numerators in `u32` (≤ 255·sw), vertical numerators in
//! `u64` (≤ 255·sw·sh), and the reciprocal quantizer exact.

use crate::framebuffer::Framebuffer;
use crate::geometry::Rect;
use crate::pixel::{Color, PixelFormat};

/// Resampling filters available to the scaling pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleFilter {
    /// Nearest-neighbour point sampling — the cheap client-side scaler
    /// used by comparator systems (fast, aliased).
    Nearest,
    /// Simplified Fant area resampling — anti-aliased server-side
    /// scaling as in the THINC prototype.
    Fant,
}

/// Largest supported Fant source width (keeps `255·sw` in `u32`).
pub const MAX_FANT_SRC_DIM: usize = 1 << 24;
/// Largest supported Fant source area (keeps `255·sw·sh` in `u64` and
/// the reciprocal quantizer exact).
pub const MAX_FANT_SRC_AREA: u64 = 1 << 48;

/// Scales `src` to `dst_w`×`dst_h` using `filter`.
///
/// Returns an empty framebuffer when either destination dimension is 0.
pub fn scale_image(src: &Framebuffer, dst_w: u32, dst_h: u32, filter: ScaleFilter) -> Framebuffer {
    let mut dst = Framebuffer::new(dst_w, dst_h, src.format());
    if dst_w == 0 || dst_h == 0 || src.width() == 0 || src.height() == 0 {
        return dst;
    }
    match filter {
        ScaleFilter::Nearest => scale_nearest(src, &mut dst),
        ScaleFilter::Fant => scale_fant(src, &mut dst),
    }
    dst
}

/// Scales the sub-rectangle `r` of `src` and returns it as its own
/// buffer of `dst_w`×`dst_h` pixels.
///
/// Clipping semantics (documented invariant): `r` is first intersected
/// with the source bounds, and it is the **clipped** region that is
/// resampled to the full `dst_w`×`dst_h` output — the destination size
/// is never shrunk to match the clip. A region fully outside the
/// source therefore yields a `dst_w`×`dst_h` buffer of zero bytes
/// (the format's "black"), not an empty buffer. Callers that want
/// proportional output must clip before choosing the destination size.
pub fn scale_region(
    src: &Framebuffer,
    r: &Rect,
    dst_w: u32,
    dst_h: u32,
    filter: ScaleFilter,
) -> Framebuffer {
    let clip = r.intersection(&src.bounds());
    let mut cut = Framebuffer::new(clip.w, clip.h, src.format());
    let (_, raw) = src.get_raw(&clip);
    if !clip.is_empty() {
        cut.put_raw(&Rect::new(0, 0, clip.w, clip.h), &raw);
    }
    scale_image(&cut, dst_w, dst_h, filter)
}

fn scale_nearest(src: &Framebuffer, dst: &mut Framebuffer) {
    let (sw, sh) = (src.width() as u64, src.height() as u64);
    let (dw, dh) = (dst.width() as u64, dst.height() as u64);
    let bpp = src.format().bytes_per_pixel();
    let s_stride = src.stride();
    let d_stride = dst.stride();
    // The horizontal source map is identical for every row: compute the
    // source byte offsets once, then blit pixel bytes row by row.
    let sx_off: Vec<usize> = (0..dw).map(|dx| (dx * sw / dw) as usize * bpp).collect();
    let dst_h = dst.height() as usize;
    let dst_data = dst.data_mut();
    for dy in 0..dst_h {
        let sy = (dy as u64 * sh / dh) as usize;
        let srow = &src.data()[sy * s_stride..(sy + 1) * s_stride];
        let drow = &mut dst_data[dy * d_stride..(dy + 1) * d_stride];
        for (d, &s_off) in drow.chunks_exact_mut(bpp).zip(sx_off.iter()) {
            d.copy_from_slice(&srow[s_off..s_off + bpp]);
        }
    }
}

/// Integer coverage span of one output sample, in units of `1/m`
/// source samples: `weights[k]` is the overlap between output `i` and
/// source `first + k`.
///
/// Exported for the coverage proptests: for `fant_spans(n, m)`, every
/// span's weights sum to exactly `n`, every weight is positive, and
/// each source index's total weight across all spans is exactly `m`.
#[derive(Debug, Clone)]
pub struct FantSpan {
    /// First contributing source sample index.
    pub first: usize,
    /// Overlap weights for `first..first + weights.len()`.
    pub weights: Vec<u64>,
}

/// Computes the exact integer coverage spans mapping `n` source
/// samples to `m` output samples (see the module-level rounding
/// contract). Returns an empty vector when either count is zero.
pub fn fant_spans(n: usize, m: usize) -> Vec<FantSpan> {
    if n == 0 || m == 0 {
        return Vec::new();
    }
    let flat = FlatSpans::compute(n, m);
    let mut out = Vec::with_capacity(m);
    let mut wi = 0usize;
    for i in 0..m {
        let len = flat.lens[i] as usize;
        out.push(FantSpan {
            first: flat.firsts[i] as usize,
            weights: flat.weights[wi..wi + len].iter().map(|&w| w as u64).collect(),
        });
        wi += len;
    }
    out
}

/// Shape of an axis map, used to pick branch-free fast paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpanKind {
    /// `n == m`: every output is one source with weight `n`.
    Identity,
    /// `n == k·m`: exact box downscale, `k` sources per output, all
    /// weights `m`.
    IntDown(usize),
    /// `m == k·n`: exact replication upscale, one source per output
    /// with weight `n`.
    IntUp(usize),
    /// Anything else: per-output variable-length weighted spans.
    General,
}

/// Flattened integer spans for one axis (`n` sources → `m` outputs).
struct FlatSpans {
    n: usize,
    m: usize,
    kind: SpanKind,
    firsts: Vec<u32>,
    lens: Vec<u32>,
    weights: Vec<u32>,
}

impl FlatSpans {
    fn compute(n: usize, m: usize) -> FlatSpans {
        debug_assert!(n > 0 && m > 0);
        let nn = n as u64;
        let mm = m as u64;
        let mut firsts = Vec::with_capacity(m);
        let mut lens = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m + n);
        for i in 0..m as u64 {
            let lo = i * nn;
            let hi = lo + nn;
            let first = lo / mm;
            let last = hi.div_ceil(mm);
            firsts.push(first as u32);
            lens.push((last - first) as u32);
            for s in first..last {
                let s_lo = s * mm;
                let s_hi = s_lo + mm;
                // Both ends are strictly inside the window, so the
                // overlap is always positive (no zero weights).
                weights.push((hi.min(s_hi) - lo.max(s_lo)) as u32);
            }
        }
        let kind = if n == m {
            SpanKind::Identity
        } else if n.is_multiple_of(m) {
            SpanKind::IntDown(n / m)
        } else if m.is_multiple_of(n) {
            SpanKind::IntUp(m / n)
        } else {
            SpanKind::General
        };
        FlatSpans {
            n,
            m,
            kind,
            firsts,
            lens,
            weights,
        }
    }
}

/// Separable fixed-point area-weighted resampling (simplified Fant).
///
/// Planar: each channel is resampled as a flat `u32`/`u64` lane so the
/// inner loops are branch-free multiply-accumulates the compiler can
/// vectorize. Byte-exact with [`crate::reference::scale_fant`] under
/// the module-level rounding contract.
fn scale_fant(src: &Framebuffer, dst: &mut Framebuffer) {
    let sw = src.width() as usize;
    let sh = src.height() as usize;
    let dw = dst.width() as usize;
    let dh = dst.height() as usize;
    assert!(
        sw <= MAX_FANT_SRC_DIM && (sw as u64) * (sh as u64) <= MAX_FANT_SRC_AREA,
        "fant source {sw}x{sh} exceeds the fixed-point range invariant"
    );
    let fmt = src.format();
    let bpp = fmt.bytes_per_pixel();
    // Alpha-free formats decode to a constant a=255, which resamples to
    // exactly 255 (num = 255·den); skip the plane and write the
    // constant at encode time.
    let channels = if fmt == PixelFormat::Rgba8888 { 4 } else { 3 };
    let h_spans = FlatSpans::compute(sw, dw);
    let v_spans = FlatSpans::compute(sh, dh);

    // Horizontal pass: per-channel planes of u32 numerators (each is
    // Σ w·p over the span, so ≤ 255·sw — in range by the invariant).
    let plane_len = sh * dw;
    let mut mid = vec![0u32; channels * plane_len];
    let mut row = vec![0u32; channels * sw];
    let s_stride = src.stride();
    let sdata = src.data();
    for y in 0..sh {
        decode_row_planes(fmt, &sdata[y * s_stride..][..sw * bpp], &mut row, sw);
        for c in 0..channels {
            resample_row(
                &row[c * sw..][..sw],
                &mut mid[c * plane_len + y * dw..][..dw],
                &h_spans,
            );
        }
    }

    // Vertical pass, row-major: accumulate each output row across its
    // contributing mid rows (u64 numerators ≤ 255·sw·sh), quantize,
    // encode. Output-row-major keeps every inner loop a contiguous
    // axpy over `dw` lanes instead of a strided per-column gather.
    let den = (sw as u64) * (sh as u64);
    let div = FixedDiv::new(den);
    let d_stride = dst.stride();
    let dst_data = dst.data_mut();
    let mut acc = vec![0u64; channels * dw];
    let mut wi = 0usize;
    for i in 0..dh {
        let first = v_spans.firsts[i] as usize;
        let len = v_spans.lens[i] as usize;
        let ws = &v_spans.weights[wi..wi + len];
        wi += len;
        for c in 0..channels {
            accum_rows(
                &mut acc[c * dw..][..dw],
                &mid[c * plane_len..][..plane_len],
                dw,
                first,
                ws,
            );
        }
        encode_row(fmt, &mut dst_data[i * d_stride..][..dw * bpp], &acc, dw, &div);
    }
}

/// Decodes one packed pixel row into per-channel `u32` planes
/// (`planes[c·sw + x]`). Alpha is only materialized for `Rgba8888`.
fn decode_row_planes(fmt: PixelFormat, srow: &[u8], planes: &mut [u32], sw: usize) {
    match fmt {
        PixelFormat::Rgb888 => {
            let (px, _) = srow.as_chunks::<3>();
            let (r, rest) = planes.split_at_mut(sw);
            let (g, b) = rest.split_at_mut(sw);
            for (j, p) in px.iter().enumerate().take(sw) {
                r[j] = p[0] as u32;
                g[j] = p[1] as u32;
                b[j] = p[2] as u32;
            }
        }
        PixelFormat::Rgba8888 => {
            let (px, _) = srow.as_chunks::<4>();
            let (r, rest) = planes.split_at_mut(sw);
            let (g, rest) = rest.split_at_mut(sw);
            let (b, a) = rest.split_at_mut(sw);
            for (j, p) in px.iter().enumerate().take(sw) {
                r[j] = p[0] as u32;
                g[j] = p[1] as u32;
                b[j] = p[2] as u32;
                a[j] = p[3] as u32;
            }
        }
        _ => {
            let bpp = fmt.bytes_per_pixel();
            for (j, p) in srow.chunks_exact(bpp).enumerate().take(sw) {
                let c = fmt.decode(p);
                planes[j] = c.r as u32;
                planes[sw + j] = c.g as u32;
                planes[2 * sw + j] = c.b as u32;
            }
        }
    }
}

/// Horizontal resample of one channel plane row: `out[i] = Σ w·in[s]`
/// in units of `1/dw` (numerators, denominator `n`).
fn resample_row(input: &[u32], out: &mut [u32], sp: &FlatSpans) {
    let nw = sp.n as u32;
    let mw = sp.m as u32;
    match sp.kind {
        SpanKind::Identity => {
            for (o, &v) in out.iter_mut().zip(input) {
                *o = v * nw;
            }
        }
        SpanKind::IntDown(2) => {
            let (pairs, _) = input.as_chunks::<2>();
            for (o, p) in out.iter_mut().zip(pairs) {
                *o = (p[0] + p[1]) * mw;
            }
        }
        SpanKind::IntDown(k) => {
            for (o, chunk) in out.iter_mut().zip(input.chunks_exact(k)) {
                let mut a = 0u32;
                for &v in chunk {
                    a += v;
                }
                *o = a * mw;
            }
        }
        SpanKind::IntUp(k) => {
            for (os, &v) in out.chunks_exact_mut(k).zip(input) {
                os.fill(v * nw);
            }
        }
        SpanKind::General => {
            let mut wi = 0usize;
            for ((o, &first), &len) in out
                .iter_mut()
                .zip(&sp.firsts[..sp.m])
                .zip(&sp.lens[..sp.m])
            {
                let first = first as usize;
                let len = len as usize;
                let mut a = 0u32;
                for (&w, &v) in sp.weights[wi..wi + len].iter().zip(&input[first..first + len]) {
                    a += w * v;
                }
                *o = a;
                wi += len;
            }
        }
    }
}

/// Accumulates one vertical span over a mid plane into `acc`:
/// `acc[j] = Σ_t w_t · plane[(first+t)·dw + j]`.
fn accum_rows(acc: &mut [u64], plane: &[u32], dw: usize, first: usize, weights: &[u32]) {
    let (w0, rest) = weights.split_first().expect("span has no zero-length weights");
    row_mul(acc, &plane[first * dw..][..dw], *w0 as u64);
    for (t, &w) in rest.iter().enumerate() {
        row_mul_add(acc, &plane[(first + 1 + t) * dw..][..dw], w as u64);
    }
}

#[cfg(not(feature = "simd"))]
#[inline]
fn row_mul(acc: &mut [u64], row: &[u32], w: u64) {
    for (a, &v) in acc.iter_mut().zip(row) {
        *a = w * v as u64;
    }
}

#[cfg(not(feature = "simd"))]
#[inline]
fn row_mul_add(acc: &mut [u64], row: &[u32], w: u64) {
    for (a, &v) in acc.iter_mut().zip(row) {
        *a += w * v as u64;
    }
}

/// Explicit-lanes variants (`simd` feature): fixed 8-wide chunks give
/// the optimizer a vector-shaped loop body with a scalar tail. The
/// arithmetic is identical integer math, so output bytes are identical
/// to the autovectorized default path.
#[cfg(feature = "simd")]
#[inline]
fn row_mul(acc: &mut [u64], row: &[u32], w: u64) {
    const L: usize = 8;
    let (a8, at) = acc.as_chunks_mut::<L>();
    let (r8, rt) = row.as_chunks::<L>();
    for (a, r) in a8.iter_mut().zip(r8) {
        for l in 0..L {
            a[l] = w * r[l] as u64;
        }
    }
    for (a, &v) in at.iter_mut().zip(rt) {
        *a = w * v as u64;
    }
}

#[cfg(feature = "simd")]
#[inline]
fn row_mul_add(acc: &mut [u64], row: &[u32], w: u64) {
    const L: usize = 8;
    let (a8, at) = acc.as_chunks_mut::<L>();
    let (r8, rt) = row.as_chunks::<L>();
    for (a, r) in a8.iter_mut().zip(r8) {
        for l in 0..L {
            a[l] += w * r[l] as u64;
        }
    }
    for (a, &v) in at.iter_mut().zip(rt) {
        *a += w * v as u64;
    }
}

/// Quantizes an accumulator row into one packed destination row.
fn encode_row(fmt: PixelFormat, drow: &mut [u8], acc: &[u64], dw: usize, div: &FixedDiv) {
    match fmt {
        PixelFormat::Rgb888 => {
            let (px, _) = drow.as_chunks_mut::<3>();
            for (j, p) in px.iter_mut().enumerate().take(dw) {
                *p = [div.q(acc[j]), div.q(acc[dw + j]), div.q(acc[2 * dw + j])];
            }
        }
        PixelFormat::Rgba8888 => {
            let (px, _) = drow.as_chunks_mut::<4>();
            for (j, p) in px.iter_mut().enumerate().take(dw) {
                *p = [
                    div.q(acc[j]),
                    div.q(acc[dw + j]),
                    div.q(acc[2 * dw + j]),
                    div.q(acc[3 * dw + j]),
                ];
            }
        }
        _ => {
            let bpp = fmt.bytes_per_pixel();
            for (j, p) in drow.chunks_exact_mut(bpp).enumerate().take(dw) {
                let c = Color::rgba(
                    div.q(acc[j]),
                    div.q(acc[dw + j]),
                    div.q(acc[2 * dw + j]),
                    255,
                );
                fmt.encode(c, p);
            }
        }
    }
}

/// Exact round-half-up divider by a fixed denominator, via reciprocal
/// multiplication: `q(num) == (num + den/2) / den` for every
/// `num ≤ 255·den`, provided `den ≤ 2^55`.
///
/// With `M = ⌊2^S/den⌋ + 1` the product adds an error term
/// `e ≤ x/2^S` to `x/den` (`x = num + den/2`), and `⌊x/den + e⌋`
/// equals `⌊x/den⌋` whenever `e < 1/den`, i.e. whenever
/// `x·den < 2^S`; `x < 256·den` and `den ≤ 2^55` give
/// `x·den < 2^118 < 2^S`. `x·M < 256·(2^S + den) < 2^128`, so the
/// `u128` product cannot overflow. Exhaustively spot-checked against
/// direct division in the unit tests below.
struct FixedDiv {
    den: u64,
    half: u64,
    m: u128,
}

const FIXED_DIV_SHIFT: u32 = 119;

impl FixedDiv {
    fn new(den: u64) -> FixedDiv {
        debug_assert!(den > 0 && den <= 1 << 55);
        FixedDiv {
            den,
            half: den / 2,
            m: ((1u128 << FIXED_DIV_SHIFT) / den as u128) + 1,
        }
    }

    #[inline]
    fn q(&self, num: u64) -> u8 {
        debug_assert!(num <= 255 * self.den);
        (((num + self.half) as u128 * self.m) >> FIXED_DIV_SHIFT) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::PixelFormat;

    fn flat(w: u32, h: u32, c: Color) -> Framebuffer {
        let mut f = Framebuffer::new(w, h, PixelFormat::Rgb888);
        f.fill_rect(&Rect::new(0, 0, w, h), c);
        f
    }

    #[test]
    fn flat_image_stays_flat_under_both_filters() {
        let src = flat(10, 10, Color::rgb(40, 90, 160));
        for filter in [ScaleFilter::Nearest, ScaleFilter::Fant] {
            let out = scale_image(&src, 3, 7, filter);
            for y in 0..7 {
                for x in 0..3 {
                    assert_eq!(out.get_pixel(x, y), Some(Color::rgb(40, 90, 160)));
                }
            }
        }
    }

    #[test]
    fn identity_scale_is_exact() {
        let mut src = Framebuffer::new(5, 5, PixelFormat::Rgb888);
        for y in 0..5 {
            for x in 0..5 {
                src.set_pixel(x, y, Color::rgb((x * 50) as u8, (y * 50) as u8, 7));
            }
        }
        let out = scale_image(&src, 5, 5, ScaleFilter::Fant);
        assert_eq!(out, src);
        let out2 = scale_image(&src, 5, 5, ScaleFilter::Nearest);
        assert_eq!(out2, src);
    }

    #[test]
    fn fant_downscale_averages_no_pixel_dropped() {
        // Half black, half white columns; 8 -> 2: both outputs are the
        // average of their own half, i.e. pure black and pure white.
        let mut src = Framebuffer::new(8, 1, PixelFormat::Rgb888);
        src.fill_rect(&Rect::new(4, 0, 4, 1), Color::WHITE);
        let out = scale_image(&src, 2, 1, ScaleFilter::Fant);
        assert_eq!(out.get_pixel(0, 0), Some(Color::BLACK));
        assert_eq!(out.get_pixel(1, 0), Some(Color::WHITE));
        // 8 -> 1: true global average, exactly 128 under round-half-up
        // ((4·255 + 4)/8 = 128).
        let one = scale_image(&src, 1, 1, ScaleFilter::Fant);
        assert_eq!(one.get_pixel(0, 0), Some(Color::rgb(128, 128, 128)));
    }

    #[test]
    fn fant_antialiases_thin_features_nearest_drops_them() {
        // A single white column among 7 black ones, downscaled 8 -> 2.
        let mut src = Framebuffer::new(8, 1, PixelFormat::Rgb888);
        src.fill_rect(&Rect::new(3, 0, 1, 1), Color::WHITE);
        let fant = scale_image(&src, 2, 1, ScaleFilter::Fant);
        // Fant keeps 1/4 of the white energy in the left output pixel.
        assert!(fant.get_pixel(0, 0).unwrap().r > 0);
        let nearest = scale_image(&src, 2, 1, ScaleFilter::Nearest);
        // Nearest samples source x=0 and x=4, both black: feature lost.
        assert_eq!(nearest.get_pixel(0, 0), Some(Color::BLACK));
        assert_eq!(nearest.get_pixel(1, 0), Some(Color::BLACK));
    }

    #[test]
    fn upscale_replicates_content() {
        let mut src = Framebuffer::new(2, 1, PixelFormat::Rgb888);
        src.set_pixel(1, 0, Color::WHITE);
        let out = scale_image(&src, 4, 1, ScaleFilter::Fant);
        assert_eq!(out.get_pixel(0, 0), Some(Color::BLACK));
        assert_eq!(out.get_pixel(3, 0), Some(Color::WHITE));
    }

    #[test]
    fn zero_sized_destination_is_empty() {
        let src = flat(4, 4, Color::WHITE);
        let out = scale_image(&src, 0, 3, ScaleFilter::Fant);
        assert_eq!(out.width(), 0);
        assert_eq!(out.data().len(), 0);
    }

    #[test]
    fn scale_region_extracts_and_scales() {
        let mut src = flat(8, 8, Color::BLACK);
        src.fill_rect(&Rect::new(4, 4, 4, 4), Color::WHITE);
        let out = scale_region(&src, &Rect::new(4, 4, 4, 4), 2, 2, ScaleFilter::Fant);
        assert_eq!(out.get_pixel(0, 0), Some(Color::WHITE));
        assert_eq!(out.get_pixel(1, 1), Some(Color::WHITE));
    }

    #[test]
    fn scale_region_clips_before_scaling() {
        // Region hangs off the right/bottom edge: only the in-bounds
        // part (white) is resampled, to the full requested output size.
        let mut src = flat(8, 8, Color::BLACK);
        src.fill_rect(&Rect::new(6, 6, 2, 2), Color::WHITE);
        let out = scale_region(&src, &Rect::new(6, 6, 4, 4), 3, 3, ScaleFilter::Fant);
        assert_eq!((out.width(), out.height()), (3, 3));
        for y in 0..3 {
            for x in 0..3 {
                assert_eq!(out.get_pixel(x, y), Some(Color::WHITE));
            }
        }
        // Fully out-of-bounds region: requested size, all zero bytes.
        let oob = scale_region(&src, &Rect::new(50, 50, 4, 4), 2, 2, ScaleFilter::Fant);
        assert_eq!((oob.width(), oob.height()), (2, 2));
        assert!(oob.data().iter().all(|&b| b == 0));
    }

    #[test]
    fn pda_ratio_downscale_shape() {
        // 1024x768 -> 320x240, the paper's PDA configuration.
        let src = flat(128, 96, Color::rgb(10, 20, 30));
        let out = scale_image(&src, 40, 30, ScaleFilter::Fant);
        assert_eq!((out.width(), out.height()), (40, 30));
        assert_eq!(out.get_pixel(20, 15), Some(Color::rgb(10, 20, 30)));
    }

    #[test]
    fn spans_cover_every_source_exactly() {
        for (n, m) in [(8, 2), (2, 4), (5, 5), (1365, 1024), (7, 3), (1, 9), (9, 1)] {
            let spans = fant_spans(n, m);
            assert_eq!(spans.len(), m);
            let mut per_source = vec![0u64; n];
            for sp in &spans {
                assert_eq!(sp.weights.iter().sum::<u64>(), n as u64, "{n}->{m}");
                for (k, &w) in sp.weights.iter().enumerate() {
                    assert!(w > 0, "zero weight at {n}->{m}");
                    per_source[sp.first + k] += w;
                }
            }
            assert!(per_source.iter().all(|&t| t == m as u64), "{n}->{m}");
        }
    }

    #[test]
    fn fixed_div_matches_direct_division() {
        let dens: &[u64] = &[
            1,
            2,
            3,
            7,
            255,
            256,
            640 * 480,
            1365 * 1024,
            (1 << 48) - 59,
            1 << 48,
            (1 << 55) - 1,
            1 << 55,
        ];
        for &den in dens {
            let div = FixedDiv::new(den);
            let check = |num: u64| {
                assert_eq!(div.q(num), ((num + den / 2) / den) as u8, "num={num} den={den}");
            };
            // Boundaries around every multiple-of-den tie point.
            for k in [0u64, 1, 2, 127, 254, 255] {
                let base = k * den;
                for delta in [0i64, 1, -1] {
                    let num = base.saturating_add_signed(delta);
                    if num <= 255 * den {
                        check(num);
                    }
                }
                if den / 2 > 0 && base + den / 2 <= 255 * den {
                    check(base + den / 2 - 1);
                    check(base + den / 2);
                }
            }
            // Deterministic pseudo-random sweep.
            let mut x = 0x9e3779b97f4a7c15u64 ^ den;
            for _ in 0..4000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                check(x % (255 * den + 1));
            }
        }
    }

    #[test]
    fn fant_rejects_out_of_range_sources() {
        // The range invariant is a hard assert, not silent corruption.
        let r = std::panic::catch_unwind(|| {
            let src = Framebuffer::new((MAX_FANT_SRC_DIM + 1) as u32, 1, PixelFormat::Rgb888);
            scale_image(&src, 4, 1, ScaleFilter::Fant)
        });
        assert!(r.is_err());
    }
}
