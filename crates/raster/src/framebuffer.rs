//! A software framebuffer with the raster operations a 2D display
//! driver accelerates: solid fill, pattern (tile) fill, stipple fill,
//! screen-to-screen copy, and raw pixel transfer.
//!
//! These are exactly the operations THINC's five protocol commands map
//! onto (Table 1 of the paper), so both the server-side drawables and
//! the client's local framebuffer are instances of this type.

use crate::geometry::Rect;
use crate::pixel::{Color, PixelFormat};

/// A rectangular grid of pixels in a single [`PixelFormat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    format: PixelFormat,
    data: Vec<u8>,
}

impl Framebuffer {
    /// Creates a framebuffer filled with zero bytes (black/transparent).
    pub fn new(width: u32, height: u32, format: PixelFormat) -> Self {
        let len = width as usize * height as usize * format.bytes_per_pixel();
        Self {
            width,
            height,
            format,
            data: vec![0; len],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel storage format.
    pub fn format(&self) -> PixelFormat {
        self.format
    }

    /// The rectangle `(0, 0, width, height)`.
    pub fn bounds(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    /// Raw backing bytes, row-major, no padding.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Bytes per row.
    pub fn stride(&self) -> usize {
        self.width as usize * self.format.bytes_per_pixel()
    }

    fn clip(&self, r: &Rect) -> Rect {
        r.intersection(&self.bounds())
    }

    fn offset(&self, x: i32, y: i32) -> usize {
        debug_assert!(x >= 0 && y >= 0);
        y as usize * self.stride() + x as usize * self.format.bytes_per_pixel()
    }

    /// Reads the pixel at `(x, y)`, or `None` when out of bounds.
    pub fn get_pixel(&self, x: i32, y: i32) -> Option<Color> {
        if x < 0 || y < 0 || x >= self.width as i32 || y >= self.height as i32 {
            return None;
        }
        let bpp = self.format.bytes_per_pixel();
        let off = self.offset(x, y);
        Some(self.format.decode(&self.data[off..off + bpp]))
    }

    /// Writes the pixel at `(x, y)`; out-of-bounds writes are ignored.
    pub fn set_pixel(&mut self, x: i32, y: i32, c: Color) {
        if x < 0 || y < 0 || x >= self.width as i32 || y >= self.height as i32 {
            return;
        }
        let bpp = self.format.bytes_per_pixel();
        let off = self.offset(x, y);
        self.format.encode(c, &mut self.data[off..off + bpp]);
    }

    /// Solid-fills `r` (clipped to the framebuffer) with `c`.
    ///
    /// This is the semantic of the THINC `SFILL` command.
    pub fn fill_rect(&mut self, r: &Rect, c: Color) {
        let clip = self.clip(r);
        if clip.is_empty() {
            return;
        }
        let bpp = self.format.bytes_per_pixel();
        let mut px = vec![0u8; bpp];
        self.format.encode(c, &mut px);
        let stride = self.stride();
        let row_len = clip.w as usize * bpp;
        // Build one row of the fill color, then copy it into each row.
        let row: Vec<u8> = px.iter().cycle().take(row_len).copied().collect();
        let first = self.offset(clip.x, clip.y);
        for r in 0..clip.h as usize {
            let off = first + r * stride;
            self.data[off..off + row_len].copy_from_slice(&row);
        }
    }

    /// Tiles `r` with `tile`, phase-locked to the destination origin so
    /// that adjacent fills align seamlessly.
    ///
    /// This is the semantic of the THINC `PFILL` command. The tile must
    /// be in the same pixel format.
    ///
    /// # Panics
    ///
    /// Panics if the tile is empty or has a different pixel format.
    pub fn tile_rect(&mut self, r: &Rect, tile: &Framebuffer) {
        assert!(tile.width > 0 && tile.height > 0, "empty tile");
        assert_eq!(tile.format, self.format, "tile pixel format mismatch");
        let clip = self.clip(r);
        if clip.is_empty() {
            return;
        }
        let bpp = self.format.bytes_per_pixel();
        for y in clip.y..clip.bottom() {
            let ty = (y.rem_euclid(tile.height as i32)) as u32;
            for x in clip.x..clip.right() {
                let tx = (x.rem_euclid(tile.width as i32)) as u32;
                let src = tile.offset(tx as i32, ty as i32);
                let dst = self.offset(x, y);
                let (s, d) = (src, dst);
                // Per-pixel copy; tiles are small so this is fine.
                let pixel: [u8; 4] = {
                    let mut tmp = [0u8; 4];
                    tmp[..bpp].copy_from_slice(&tile.data[s..s + bpp]);
                    tmp
                };
                self.data[d..d + bpp].copy_from_slice(&pixel[..bpp]);
            }
        }
    }

    /// Fills `r` using `bits` as a stipple: 1 bits paint `fg`, 0 bits
    /// paint `bg` (or are skipped when `bg` is `None`, i.e. a
    /// transparent stipple).
    ///
    /// This is the semantic of the THINC `BITMAP` command. `bits` is
    /// row-major, one bit per pixel, each row padded to a whole byte,
    /// with bit 7 of each byte the leftmost pixel. The bitmap is
    /// anchored at the rectangle origin (not the screen origin).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is shorter than the rectangle requires.
    pub fn bitmap_rect(&mut self, r: &Rect, bits: &[u8], fg: Color, bg: Option<Color>) {
        let row_bytes = (r.w as usize).div_ceil(8);
        assert!(
            bits.len() >= row_bytes * r.h as usize,
            "stipple bitmap too short: {} < {}",
            bits.len(),
            row_bytes * r.h as usize
        );
        let clip = self.clip(r);
        if clip.is_empty() {
            return;
        }
        for y in clip.y..clip.bottom() {
            let by = (y - r.y) as usize;
            for x in clip.x..clip.right() {
                let bx = (x - r.x) as usize;
                let byte = bits[by * row_bytes + bx / 8];
                let on = byte & (0x80 >> (bx % 8)) != 0;
                if on {
                    self.set_pixel(x, y, fg);
                } else if let Some(bg) = bg {
                    self.set_pixel(x, y, bg);
                }
            }
        }
    }

    /// Copies the rectangle `src` to the position `(dst_x, dst_y)`
    /// within the same framebuffer, handling overlap like `memmove`.
    ///
    /// This is the semantic of the THINC `COPY` command (scrolling,
    /// opaque window movement). Source and destination are both clipped
    /// consistently: pixels whose source or destination fall outside
    /// the framebuffer are dropped.
    pub fn copy_rect(&mut self, src: &Rect, dst_x: i32, dst_y: i32) {
        let dx = dst_x - src.x;
        let dy = dst_y - src.y;
        // Clip the source so that both source and destination are in bounds.
        let mut s = self.clip(src);
        let dst = s.translated(dx, dy);
        let dst_clipped = self.clip(&dst);
        s = dst_clipped.translated(-dx, -dy);
        if s.is_empty() {
            return;
        }
        let bpp = self.format.bytes_per_pixel();
        let stride = self.stride();
        let row_len = s.w as usize * bpp;
        // Choose iteration order to be safe for overlapping regions.
        let rows: Box<dyn Iterator<Item = i32>> = if dy > 0 || (dy == 0 && dx > 0) {
            Box::new((0..s.h as i32).rev())
        } else {
            Box::new(0..s.h as i32)
        };
        for row in rows {
            let sy = s.y + row;
            let ty = sy + dy;
            let s_off = sy as usize * stride + s.x as usize * bpp;
            let d_off = ty as usize * stride + (s.x + dx) as usize * bpp;
            if dy == 0 {
                // Same row: use copy_within for overlap safety.
                self.data.copy_within(s_off..s_off + row_len, d_off);
            } else {
                let (lo, hi, from_lo) = if s_off < d_off {
                    (s_off, d_off, true)
                } else {
                    (d_off, s_off, false)
                };
                let (a, b) = self.data.split_at_mut(hi);
                if from_lo {
                    b[..row_len].copy_from_slice(&a[lo..lo + row_len]);
                } else {
                    a[lo..lo + row_len].copy_from_slice(&b[..row_len]);
                }
            }
        }
    }

    /// Writes raw pixel data (in this framebuffer's format, tightly
    /// packed rows of `r.w` pixels) into `r`, clipping to bounds.
    ///
    /// This is the semantic of the THINC `RAW` command.
    ///
    /// # Panics
    ///
    /// Panics if `pixels` is shorter than `r` requires.
    pub fn put_raw(&mut self, r: &Rect, pixels: &[u8]) {
        let bpp = self.format.bytes_per_pixel();
        let src_stride = r.w as usize * bpp;
        assert!(
            pixels.len() >= src_stride * r.h as usize,
            "raw pixel buffer too short"
        );
        let clip = self.clip(r);
        if clip.is_empty() {
            return;
        }
        let row_len = clip.w as usize * bpp;
        let x_skip = (clip.x - r.x) as usize * bpp;
        for y in clip.y..clip.bottom() {
            let sy = (y - r.y) as usize;
            let s_off = sy * src_stride + x_skip;
            let d_off = self.offset(clip.x, y);
            self.data[d_off..d_off + row_len].copy_from_slice(&pixels[s_off..s_off + row_len]);
        }
    }

    /// Reads the pixels of `r` (clipped) as tightly packed rows.
    ///
    /// Returns the clipped rectangle actually read together with the
    /// bytes; returns an empty rect and buffer if nothing is in bounds.
    pub fn get_raw(&self, r: &Rect) -> (Rect, Vec<u8>) {
        let clip = self.clip(r);
        if clip.is_empty() {
            return (Rect::default(), Vec::new());
        }
        let bpp = self.format.bytes_per_pixel();
        let row_len = clip.w as usize * bpp;
        let mut out = Vec::with_capacity(row_len * clip.h as usize);
        for y in clip.y..clip.bottom() {
            let off = self.offset(clip.x, y);
            out.extend_from_slice(&self.data[off..off + row_len]);
        }
        (clip, out)
    }

    /// Converts the full framebuffer to another pixel format.
    pub fn convert(&self, format: PixelFormat) -> Framebuffer {
        if format == self.format {
            return self.clone();
        }
        let mut out = Framebuffer::new(self.width, self.height, format);
        for y in 0..self.height as i32 {
            for x in 0..self.width as i32 {
                let c = self.get_pixel(x, y).expect("in bounds");
                out.set_pixel(x, y, c);
            }
        }
        out
    }

    /// FNV-1a checksum over the pixel bytes, for cheap equality checks
    /// in tests and the headless client.
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in &self.data {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(w: u32, h: u32) -> Framebuffer {
        Framebuffer::new(w, h, PixelFormat::Rgb888)
    }

    #[test]
    fn new_is_black() {
        let f = fb(4, 4);
        assert_eq!(f.get_pixel(0, 0), Some(Color::BLACK));
        assert_eq!(f.data().len(), 4 * 4 * 3);
    }

    #[test]
    fn pixel_read_write_and_bounds() {
        let mut f = fb(4, 4);
        f.set_pixel(2, 3, Color::rgb(9, 8, 7));
        assert_eq!(f.get_pixel(2, 3), Some(Color::rgb(9, 8, 7)));
        assert_eq!(f.get_pixel(4, 0), None);
        assert_eq!(f.get_pixel(-1, 0), None);
        f.set_pixel(100, 100, Color::WHITE); // No panic, no effect.
    }

    #[test]
    fn fill_rect_clips() {
        let mut f = fb(4, 4);
        f.fill_rect(&Rect::new(2, 2, 10, 10), Color::WHITE);
        assert_eq!(f.get_pixel(3, 3), Some(Color::WHITE));
        assert_eq!(f.get_pixel(1, 1), Some(Color::BLACK));
    }

    #[test]
    fn fill_rect_exact_area() {
        let mut f = fb(8, 8);
        f.fill_rect(&Rect::new(1, 2, 3, 4), Color::rgb(10, 20, 30));
        let mut painted = 0;
        for y in 0..8 {
            for x in 0..8 {
                if f.get_pixel(x, y) == Some(Color::rgb(10, 20, 30)) {
                    painted += 1;
                }
            }
        }
        assert_eq!(painted, 12);
    }

    #[test]
    fn tile_rect_phase_locked() {
        let mut tile = fb(2, 2);
        tile.set_pixel(0, 0, Color::WHITE);
        // Checkerboard via 2x2 tile with one white pixel at (0,0).
        let mut f = fb(6, 6);
        f.tile_rect(&Rect::new(0, 0, 6, 6), &tile);
        assert_eq!(f.get_pixel(0, 0), Some(Color::WHITE));
        assert_eq!(f.get_pixel(2, 0), Some(Color::WHITE));
        assert_eq!(f.get_pixel(4, 4), Some(Color::WHITE));
        assert_eq!(f.get_pixel(1, 0), Some(Color::BLACK));
        // A second fill over a sub-rect must align with the first.
        let mut g = fb(6, 6);
        g.tile_rect(&Rect::new(0, 0, 3, 6), &tile);
        g.tile_rect(&Rect::new(3, 0, 3, 6), &tile);
        assert_eq!(f, g);
    }

    #[test]
    fn bitmap_rect_fg_bg() {
        let mut f = fb(8, 2);
        // One row: 0b10100000 pattern over 8 px, two rows.
        let bits = [0b1010_0000u8, 0b0101_0000u8];
        f.bitmap_rect(
            &Rect::new(0, 0, 8, 2),
            &bits,
            Color::WHITE,
            Some(Color::rgb(1, 1, 1)),
        );
        assert_eq!(f.get_pixel(0, 0), Some(Color::WHITE));
        assert_eq!(f.get_pixel(1, 0), Some(Color::rgb(1, 1, 1)));
        assert_eq!(f.get_pixel(2, 0), Some(Color::WHITE));
        assert_eq!(f.get_pixel(1, 1), Some(Color::WHITE));
        assert_eq!(f.get_pixel(0, 1), Some(Color::rgb(1, 1, 1)));
    }

    #[test]
    fn bitmap_rect_transparent_bg_preserves() {
        let mut f = fb(4, 1);
        f.fill_rect(&Rect::new(0, 0, 4, 1), Color::rgb(5, 5, 5));
        f.bitmap_rect(&Rect::new(0, 0, 4, 1), &[0b1000_0000], Color::WHITE, None);
        assert_eq!(f.get_pixel(0, 0), Some(Color::WHITE));
        assert_eq!(f.get_pixel(1, 0), Some(Color::rgb(5, 5, 5)));
    }

    #[test]
    fn bitmap_anchored_at_rect_origin() {
        let mut f = fb(8, 8);
        f.bitmap_rect(&Rect::new(3, 3, 2, 1), &[0b0100_0000], Color::WHITE, None);
        assert_eq!(f.get_pixel(4, 3), Some(Color::WHITE));
        assert_eq!(f.get_pixel(3, 3), Some(Color::BLACK));
    }

    #[test]
    fn copy_rect_disjoint() {
        let mut f = fb(8, 8);
        f.fill_rect(&Rect::new(0, 0, 2, 2), Color::WHITE);
        f.copy_rect(&Rect::new(0, 0, 2, 2), 4, 4);
        assert_eq!(f.get_pixel(4, 4), Some(Color::WHITE));
        assert_eq!(f.get_pixel(5, 5), Some(Color::WHITE));
        assert_eq!(f.get_pixel(0, 0), Some(Color::WHITE)); // Source kept.
    }

    #[test]
    fn copy_rect_overlapping_down_right() {
        let mut f = fb(6, 6);
        // Paint a gradient-ish pattern for overlap detection.
        for y in 0..6 {
            for x in 0..6 {
                f.set_pixel(x, y, Color::rgb(x as u8 * 10, y as u8 * 10, 0));
            }
        }
        let snapshot = f.clone();
        f.copy_rect(&Rect::new(0, 0, 4, 4), 2, 2);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(
                    f.get_pixel(x + 2, y + 2),
                    snapshot.get_pixel(x, y),
                    "at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn copy_rect_overlapping_up_left() {
        let mut f = fb(6, 6);
        for y in 0..6 {
            for x in 0..6 {
                f.set_pixel(x, y, Color::rgb(x as u8 * 10, y as u8 * 10, 0));
            }
        }
        let snapshot = f.clone();
        f.copy_rect(&Rect::new(2, 2, 4, 4), 0, 0);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(f.get_pixel(x, y), snapshot.get_pixel(x + 2, y + 2));
            }
        }
    }

    #[test]
    fn copy_rect_same_row_overlap() {
        let mut f = fb(8, 1);
        for x in 0..8 {
            f.set_pixel(x, 0, Color::rgb(x as u8, 0, 0));
        }
        f.copy_rect(&Rect::new(0, 0, 6, 1), 2, 0);
        for x in 0..6 {
            assert_eq!(f.get_pixel(x + 2, 0), Some(Color::rgb(x as u8, 0, 0)));
        }
    }

    #[test]
    fn copy_rect_clips_offscreen_destination() {
        let mut f = fb(4, 4);
        f.fill_rect(&Rect::new(0, 0, 2, 2), Color::WHITE);
        f.copy_rect(&Rect::new(0, 0, 2, 2), 3, 3);
        assert_eq!(f.get_pixel(3, 3), Some(Color::WHITE));
        // The rest fell off the edge; nothing panicked.
    }

    #[test]
    fn put_and_get_raw_round_trip() {
        let mut f = fb(4, 4);
        let r = Rect::new(1, 1, 2, 2);
        let pixels: Vec<u8> = (0..12).collect();
        f.put_raw(&r, &pixels);
        let (clip, got) = f.get_raw(&r);
        assert_eq!(clip, r);
        assert_eq!(got, pixels);
    }

    #[test]
    fn put_raw_clips() {
        let mut f = fb(4, 4);
        let r = Rect::new(3, 3, 2, 2);
        let pixels = vec![7u8; 2 * 2 * 3];
        f.put_raw(&r, &pixels);
        assert_eq!(f.get_pixel(3, 3), Some(Color::rgb(7, 7, 7)));
    }

    #[test]
    fn get_raw_out_of_bounds_is_empty() {
        let f = fb(4, 4);
        let (clip, got) = f.get_raw(&Rect::new(10, 10, 2, 2));
        assert!(clip.is_empty());
        assert!(got.is_empty());
    }

    #[test]
    fn convert_depth_round_trip_888_to_8888() {
        let mut f = fb(3, 3);
        f.fill_rect(&Rect::new(0, 0, 3, 3), Color::rgb(10, 20, 30));
        let g = f.convert(PixelFormat::Rgba8888);
        assert_eq!(g.get_pixel(1, 1), Some(Color::rgb(10, 20, 30)));
        let back = g.convert(PixelFormat::Rgb888);
        assert_eq!(back, f);
    }

    #[test]
    fn checksum_changes_with_content() {
        let mut f = fb(4, 4);
        let c0 = f.checksum();
        f.set_pixel(0, 0, Color::rgb(0, 0, 1));
        assert_ne!(f.checksum(), c0);
    }
}
