//! A software framebuffer with the raster operations a 2D display
//! driver accelerates: solid fill, pattern (tile) fill, stipple fill,
//! screen-to-screen copy, and raw pixel transfer.
//!
//! These are exactly the operations THINC's five protocol commands map
//! onto (Table 1 of the paper), so both the server-side drawables and
//! the client's local framebuffer are instances of this type.

use crate::geometry::Rect;
use crate::pixel::{Color, PixelFormat};

/// A rectangular grid of pixels in a single [`PixelFormat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    format: PixelFormat,
    data: Vec<u8>,
}

impl Framebuffer {
    /// Creates a framebuffer filled with zero bytes (black/transparent).
    pub fn new(width: u32, height: u32, format: PixelFormat) -> Self {
        let len = width as usize * height as usize * format.bytes_per_pixel();
        Self {
            width,
            height,
            format,
            data: vec![0; len],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel storage format.
    pub fn format(&self) -> PixelFormat {
        self.format
    }

    /// The rectangle `(0, 0, width, height)`.
    pub fn bounds(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    /// Raw backing bytes, row-major, no padding.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Bytes per row.
    pub fn stride(&self) -> usize {
        self.width as usize * self.format.bytes_per_pixel()
    }

    /// Mutable raw backing bytes, for the in-crate row kernels.
    pub(crate) fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    #[inline]
    fn clip(&self, r: &Rect) -> Rect {
        r.intersection(&self.bounds())
    }

    #[inline]
    fn offset(&self, x: i32, y: i32) -> usize {
        debug_assert!(x >= 0 && y >= 0);
        debug_assert!((x as u32) < self.width && (y as u32) < self.height);
        y as usize * self.stride() + x as usize * self.format.bytes_per_pixel()
    }

    /// Reads the pixel at `(x, y)`, or `None` when out of bounds.
    #[inline]
    pub fn get_pixel(&self, x: i32, y: i32) -> Option<Color> {
        if x < 0 || y < 0 || x >= self.width as i32 || y >= self.height as i32 {
            return None;
        }
        let bpp = self.format.bytes_per_pixel();
        let off = self.offset(x, y);
        Some(self.format.decode(&self.data[off..off + bpp]))
    }

    /// Writes the pixel at `(x, y)`; out-of-bounds writes are ignored.
    #[inline]
    pub fn set_pixel(&mut self, x: i32, y: i32, c: Color) {
        if x < 0 || y < 0 || x >= self.width as i32 || y >= self.height as i32 {
            return;
        }
        let bpp = self.format.bytes_per_pixel();
        let off = self.offset(x, y);
        self.format.encode(c, &mut self.data[off..off + bpp]);
    }

    /// Solid-fills `r` (clipped to the framebuffer) with `c`.
    ///
    /// This is the semantic of the THINC `SFILL` command.
    pub fn fill_rect(&mut self, r: &Rect, c: Color) {
        let clip = self.clip(r);
        if clip.is_empty() {
            return;
        }
        let bpp = self.format.bytes_per_pixel();
        let mut px = [0u8; 4];
        self.format.encode(c, &mut px[..bpp]);
        let stride = self.stride();
        let row_len = clip.w as usize * bpp;
        let first = self.offset(clip.x, clip.y);
        if px[..bpp].iter().all(|&b| b == px[0]) {
            // Uniform byte pattern (black, white, grey in RGB formats,
            // anything in 1-byte formats): straight memset, one call for
            // full-width fills, one per row otherwise.
            if row_len == stride {
                self.data[first..first + row_len * clip.h as usize].fill(px[0]);
            } else {
                for r in 0..clip.h as usize {
                    let off = first + r * stride;
                    self.data[off..off + row_len].fill(px[0]);
                }
            }
            return;
        }
        // Splat the pixel across the first row by doubling, then copy
        // that row into each remaining row.
        {
            let row = &mut self.data[first..first + row_len];
            row[..bpp].copy_from_slice(&px[..bpp]);
            let mut filled = bpp;
            while filled < row_len {
                let n = filled.min(row_len - filled);
                row.copy_within(..n, filled);
                filled += n;
            }
        }
        for r in 1..clip.h as usize {
            let off = first + r * stride;
            let (done, rest) = self.data.split_at_mut(off);
            rest[..row_len].copy_from_slice(&done[first..first + row_len]);
        }
    }

    /// Tiles `r` with `tile`, phase-locked to the destination origin so
    /// that adjacent fills align seamlessly.
    ///
    /// This is the semantic of the THINC `PFILL` command. The tile must
    /// be in the same pixel format.
    ///
    /// # Panics
    ///
    /// Panics if the tile is empty or has a different pixel format.
    pub fn tile_rect(&mut self, r: &Rect, tile: &Framebuffer) {
        assert!(tile.width > 0 && tile.height > 0, "empty tile");
        assert_eq!(tile.format, self.format, "tile pixel format mismatch");
        let clip = self.clip(r);
        if clip.is_empty() {
            return;
        }
        let bpp = self.format.bytes_per_pixel();
        let row_len = clip.w as usize * bpp;
        let tile_row_len = tile.width as usize * bpp;
        // Every destination row with the same tile phase is identical, so
        // splat each needed tile row once — rotated to the destination's
        // x phase — then blit it with a straight row copy.
        let phase = clip.x.rem_euclid(tile.width as i32) as usize * bpp;
        let mut rows: Vec<Vec<u8>> = vec![Vec::new(); tile.height as usize];
        for i in 0..clip.h {
            let y = clip.y + i as i32;
            let ty = y.rem_euclid(tile.height as i32) as usize;
            if rows[ty].is_empty() {
                let trow = &tile.data[ty * tile_row_len..(ty + 1) * tile_row_len];
                let mut out = Vec::with_capacity(row_len + tile_row_len);
                out.extend_from_slice(&trow[phase..]);
                while out.len() < row_len {
                    let n = (row_len - out.len()).min(tile_row_len);
                    out.extend_from_slice(&trow[..n]);
                }
                out.truncate(row_len);
                rows[ty] = out;
            }
            let off = self.offset(clip.x, y);
            self.data[off..off + row_len].copy_from_slice(&rows[ty]);
        }
    }

    /// Fills `r` using `bits` as a stipple: 1 bits paint `fg`, 0 bits
    /// paint `bg` (or are skipped when `bg` is `None`, i.e. a
    /// transparent stipple).
    ///
    /// This is the semantic of the THINC `BITMAP` command. `bits` is
    /// row-major, one bit per pixel, each row padded to a whole byte,
    /// with bit 7 of each byte the leftmost pixel. The bitmap is
    /// anchored at the rectangle origin (not the screen origin).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is shorter than the rectangle requires.
    pub fn bitmap_rect(&mut self, r: &Rect, bits: &[u8], fg: Color, bg: Option<Color>) {
        let row_bytes = (r.w as usize).div_ceil(8);
        assert!(
            bits.len() >= row_bytes * r.h as usize,
            "stipple bitmap too short: {} < {}",
            bits.len(),
            row_bytes * r.h as usize
        );
        let clip = self.clip(r);
        if clip.is_empty() {
            return;
        }
        let bpp = self.format.bytes_per_pixel();
        let (fg_px, _) = self.format.encode_to_array(fg);
        let mut bg_px = [0u8; 4];
        if let Some(bg) = bg {
            bg_px = self.format.encode_to_array(bg).0;
        }
        let x0 = (clip.x - r.x) as usize;
        let x_end = x0 + clip.w as usize;
        // Opaque glyph path: expand each possible bitmap byte to its
        // 8-pixel byte pattern once (256 × 8·bpp table), then every
        // interior bitmap byte becomes a single table blit — no
        // per-bit tests at all. Partial leading/trailing bytes fall
        // back to per-pixel writes. The run-based path below stays for
        // transparent stipples (bg = None, where 0 bits must not
        // write) and rects too small to amortize the table build.
        if bg.is_some() && clip.w >= 16 && clip.w as usize * clip.h as usize >= 1024 {
            let mut table = vec![0u8; 256 * 8 * bpp];
            for v in 0..256usize {
                let row = &mut table[v * 8 * bpp..][..8 * bpp];
                for bit in 0..8 {
                    let px = if v & (0x80 >> bit) != 0 {
                        &fg_px[..bpp]
                    } else {
                        &bg_px[..bpp]
                    };
                    row[bit * bpp..(bit + 1) * bpp].copy_from_slice(px);
                }
            }
            // Bitmap byte b covers bits [8b, 8b+8); full bytes are the
            // ones wholly inside [x0, x_end). clip.w >= 16 guarantees
            // at least one.
            let first_full = x0.div_ceil(8);
            let last_full = x_end / 8;
            debug_assert!(first_full < last_full);
            for y in clip.y..clip.bottom() {
                let by = (y - r.y) as usize;
                let brow = &bits[by * row_bytes..(by + 1) * row_bytes];
                let row_off = self.offset(clip.x, y);
                let row = &mut self.data[row_off..row_off + clip.w as usize * bpp];
                let mut put = |bx: usize| {
                    let on = brow[bx / 8] & (0x80 >> (bx % 8)) != 0;
                    let px = if on { &fg_px[..bpp] } else { &bg_px[..bpp] };
                    row[(bx - x0) * bpp..(bx - x0 + 1) * bpp].copy_from_slice(px);
                };
                for bx in x0..first_full * 8 {
                    put(bx);
                }
                for bx in last_full * 8..x_end {
                    put(bx);
                }
                for b in first_full..last_full {
                    let dst = (b * 8 - x0) * bpp;
                    row[dst..dst + 8 * bpp]
                        .copy_from_slice(&table[brow[b] as usize * 8 * bpp..][..8 * bpp]);
                }
            }
            return;
        }
        for y in clip.y..clip.bottom() {
            let by = (y - r.y) as usize;
            let brow = &bits[by * row_bytes..(by + 1) * row_bytes];
            let row_off = self.offset(clip.x, y);
            let row = &mut self.data[row_off..row_off + clip.w as usize * bpp];
            // Decode the bit row into maximal same-value runs and paint
            // each run as one span instead of per-pixel set_pixel calls.
            let mut bx = x0;
            while bx < x_end {
                let on = brow[bx / 8] & (0x80 >> (bx % 8)) != 0;
                let len = bit_run_len(brow, bx, x_end, on);
                if on {
                    fill_span(&mut row[(bx - x0) * bpp..(bx - x0 + len) * bpp], &fg_px[..bpp]);
                } else if bg.is_some() {
                    fill_span(&mut row[(bx - x0) * bpp..(bx - x0 + len) * bpp], &bg_px[..bpp]);
                }
                bx += len;
            }
        }
    }

    /// Copies the rectangle `src` to the position `(dst_x, dst_y)`
    /// within the same framebuffer, handling overlap like `memmove`.
    ///
    /// This is the semantic of the THINC `COPY` command (scrolling,
    /// opaque window movement). Source and destination are both clipped
    /// consistently: pixels whose source or destination fall outside
    /// the framebuffer are dropped.
    pub fn copy_rect(&mut self, src: &Rect, dst_x: i32, dst_y: i32) {
        let dx = dst_x - src.x;
        let dy = dst_y - src.y;
        // Clip the source so that both source and destination are in bounds.
        let mut s = self.clip(src);
        let dst = s.translated(dx, dy);
        let dst_clipped = self.clip(&dst);
        s = dst_clipped.translated(-dx, -dy);
        if s.is_empty() {
            return;
        }
        if dx == 0 && dy == 0 {
            return;
        }
        let bpp = self.format.bytes_per_pixel();
        let stride = self.stride();
        let row_len = s.w as usize * bpp;
        let s_first = s.y as usize * stride + s.x as usize * bpp;
        let d_first = (s.y + dy) as usize * stride + (s.x + dx) as usize * bpp;
        let h = s.h as usize;
        // `copy_within` is memmove, so each row copy is overlap-safe on
        // its own (covers the dy == 0 sideways scroll); across rows,
        // iterate bottom-up when moving down so a source row is never
        // clobbered before it is read. The direction branch is hoisted
        // out of the loop — no per-row test, no boxed iterator.
        if dy > 0 {
            for row in (0..h).rev() {
                let o = row * stride;
                self.data.copy_within(s_first + o..s_first + o + row_len, d_first + o);
            }
        } else {
            for row in 0..h {
                let o = row * stride;
                self.data.copy_within(s_first + o..s_first + o + row_len, d_first + o);
            }
        }
    }

    /// Writes raw pixel data (in this framebuffer's format, tightly
    /// packed rows of `r.w` pixels) into `r`, clipping to bounds.
    ///
    /// This is the semantic of the THINC `RAW` command.
    ///
    /// # Panics
    ///
    /// Panics if `pixels` is shorter than `r` requires.
    pub fn put_raw(&mut self, r: &Rect, pixels: &[u8]) {
        let bpp = self.format.bytes_per_pixel();
        let src_stride = r.w as usize * bpp;
        assert!(
            pixels.len() >= src_stride * r.h as usize,
            "raw pixel buffer too short"
        );
        let clip = self.clip(r);
        if clip.is_empty() {
            return;
        }
        let row_len = clip.w as usize * bpp;
        let x_skip = (clip.x - r.x) as usize * bpp;
        for y in clip.y..clip.bottom() {
            let sy = (y - r.y) as usize;
            let s_off = sy * src_stride + x_skip;
            let d_off = self.offset(clip.x, y);
            self.data[d_off..d_off + row_len].copy_from_slice(&pixels[s_off..s_off + row_len]);
        }
    }

    /// Reads the pixels of `r` (clipped) as tightly packed rows.
    ///
    /// Returns the clipped rectangle actually read together with the
    /// bytes; returns an empty rect and buffer if nothing is in bounds.
    pub fn get_raw(&self, r: &Rect) -> (Rect, Vec<u8>) {
        let clip = self.clip(r);
        if clip.is_empty() {
            return (Rect::default(), Vec::new());
        }
        let bpp = self.format.bytes_per_pixel();
        let row_len = clip.w as usize * bpp;
        let mut out = Vec::with_capacity(row_len * clip.h as usize);
        for y in clip.y..clip.bottom() {
            let off = self.offset(clip.x, y);
            out.extend_from_slice(&self.data[off..off + row_len]);
        }
        (clip, out)
    }

    /// Converts the full framebuffer to another pixel format.
    ///
    /// Every (source, destination) format pair is monomorphized to a
    /// loop over const-width pixel arrays (`as_chunks`), so the
    /// decode/encode matches constant-fold away and the bodies are
    /// straight lane arithmetic or fixed-size array stores the
    /// compiler can vectorize. `Indexed8` sources expand through a
    /// 256-entry table of fixed-size arrays (one whole-array store per
    /// pixel, no runtime-width `copy_from_slice`).
    pub fn convert(&self, format: PixelFormat) -> Framebuffer {
        if format == self.format {
            return self.clone();
        }
        let mut out = Framebuffer::new(self.width, self.height, format);
        use PixelFormat as PF;
        let src = &self.data;
        let dst = &mut out.data;
        match (self.format, format) {
            (PF::Rgb888, PF::Rgba8888) => {
                convert_px::<3, 4>(src, dst, |s, d| *d = [s[0], s[1], s[2], 255]);
            }
            (PF::Rgba8888, PF::Rgb888) => {
                convert_px::<4, 3>(src, dst, |s, d| *d = [s[0], s[1], s[2]]);
            }
            (PF::Indexed8, PF::Rgb565) => lut_expand::<2>(src, dst, format),
            (PF::Indexed8, PF::Rgb888) => lut_expand::<3>(src, dst, format),
            (PF::Indexed8, PF::Rgba8888) => lut_expand::<4>(src, dst, format),
            (PF::Rgb565, PF::Indexed8) => {
                convert_px::<2, 1>(src, dst, |s, d| PF::Indexed8.encode(PF::Rgb565.decode(s), d));
            }
            (PF::Rgb565, PF::Rgb888) => {
                convert_px::<2, 3>(src, dst, |s, d| PF::Rgb888.encode(PF::Rgb565.decode(s), d));
            }
            (PF::Rgb565, PF::Rgba8888) => {
                convert_px::<2, 4>(src, dst, |s, d| PF::Rgba8888.encode(PF::Rgb565.decode(s), d));
            }
            (PF::Rgb888, PF::Indexed8) => {
                convert_px::<3, 1>(src, dst, |s, d| PF::Indexed8.encode(PF::Rgb888.decode(s), d));
            }
            (PF::Rgb888, PF::Rgb565) => {
                convert_px::<3, 2>(src, dst, |s, d| PF::Rgb565.encode(PF::Rgb888.decode(s), d));
            }
            (PF::Rgba8888, PF::Indexed8) => {
                convert_px::<4, 1>(src, dst, |s, d| PF::Indexed8.encode(PF::Rgba8888.decode(s), d));
            }
            (PF::Rgba8888, PF::Rgb565) => {
                convert_px::<4, 2>(src, dst, |s, d| PF::Rgb565.encode(PF::Rgba8888.decode(s), d));
            }
            (PF::Indexed8, PF::Indexed8)
            | (PF::Rgb565, PF::Rgb565)
            | (PF::Rgb888, PF::Rgb888)
            | (PF::Rgba8888, PF::Rgba8888) => unreachable!("identity handled above"),
        }
        out
    }

    /// FNV-1a checksum over the pixel bytes, for cheap equality checks
    /// in tests and the headless client.
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in &self.data {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// Length of the run of bits equal to `on` starting at `start`
/// (exclusive end `end`), skipping whole `0x00`/`0xFF` bytes at a time.
#[inline]
fn bit_run_len(brow: &[u8], start: usize, end: usize, on: bool) -> usize {
    let skip = if on { 0xFFu8 } else { 0x00u8 };
    let mut bx = start;
    while bx < end {
        if bx.is_multiple_of(8) && bx + 8 <= end && brow[bx / 8] == skip {
            bx += 8;
            continue;
        }
        if (brow[bx / 8] & (0x80 >> (bx % 8)) != 0) != on {
            break;
        }
        bx += 1;
    }
    bx - start
}

/// Applies a fixed-width per-pixel recode over packed buffers. The
/// const widths make every load/store a whole-array access, so the
/// per-format closures compile to branch-free loop bodies.
#[inline]
fn convert_px<const S: usize, const D: usize>(
    src: &[u8],
    dst: &mut [u8],
    f: impl Fn(&[u8; S], &mut [u8; D]),
) {
    let (s, _) = src.as_chunks::<S>();
    let (d, _) = dst.as_chunks_mut::<D>();
    for (sp, dp) in s.iter().zip(d) {
        f(sp, dp);
    }
}

/// Expands `Indexed8` bytes through a palette table of fixed-size
/// pixel arrays: one indexed load and one whole-array store per pixel.
fn lut_expand<const D: usize>(src: &[u8], dst: &mut [u8], to: PixelFormat) {
    let mut lut = [[0u8; D]; 256];
    for (i, e) in lut.iter_mut().enumerate() {
        to.encode(PixelFormat::Indexed8.decode(&[i as u8]), e);
    }
    let (d, _) = dst.as_chunks_mut::<D>();
    for (&s, dp) in src.iter().zip(d) {
        *dp = lut[s as usize];
    }
}

/// Fills `span` with the repeating pixel `px` (1–4 bytes): memset when
/// the pixel is a uniform byte, doubling `copy_within` splat otherwise.
#[inline]
fn fill_span(span: &mut [u8], px: &[u8]) {
    if px.iter().all(|&b| b == px[0]) {
        span.fill(px[0]);
        return;
    }
    let n = span.len();
    span[..px.len()].copy_from_slice(px);
    let mut filled = px.len();
    while filled < n {
        let c = filled.min(n - filled);
        span.copy_within(..c, filled);
        filled += c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(w: u32, h: u32) -> Framebuffer {
        Framebuffer::new(w, h, PixelFormat::Rgb888)
    }

    #[test]
    fn new_is_black() {
        let f = fb(4, 4);
        assert_eq!(f.get_pixel(0, 0), Some(Color::BLACK));
        assert_eq!(f.data().len(), 4 * 4 * 3);
    }

    #[test]
    fn pixel_read_write_and_bounds() {
        let mut f = fb(4, 4);
        f.set_pixel(2, 3, Color::rgb(9, 8, 7));
        assert_eq!(f.get_pixel(2, 3), Some(Color::rgb(9, 8, 7)));
        assert_eq!(f.get_pixel(4, 0), None);
        assert_eq!(f.get_pixel(-1, 0), None);
        f.set_pixel(100, 100, Color::WHITE); // No panic, no effect.
    }

    #[test]
    fn fill_rect_clips() {
        let mut f = fb(4, 4);
        f.fill_rect(&Rect::new(2, 2, 10, 10), Color::WHITE);
        assert_eq!(f.get_pixel(3, 3), Some(Color::WHITE));
        assert_eq!(f.get_pixel(1, 1), Some(Color::BLACK));
    }

    #[test]
    fn fill_rect_exact_area() {
        let mut f = fb(8, 8);
        f.fill_rect(&Rect::new(1, 2, 3, 4), Color::rgb(10, 20, 30));
        let mut painted = 0;
        for y in 0..8 {
            for x in 0..8 {
                if f.get_pixel(x, y) == Some(Color::rgb(10, 20, 30)) {
                    painted += 1;
                }
            }
        }
        assert_eq!(painted, 12);
    }

    #[test]
    fn tile_rect_phase_locked() {
        let mut tile = fb(2, 2);
        tile.set_pixel(0, 0, Color::WHITE);
        // Checkerboard via 2x2 tile with one white pixel at (0,0).
        let mut f = fb(6, 6);
        f.tile_rect(&Rect::new(0, 0, 6, 6), &tile);
        assert_eq!(f.get_pixel(0, 0), Some(Color::WHITE));
        assert_eq!(f.get_pixel(2, 0), Some(Color::WHITE));
        assert_eq!(f.get_pixel(4, 4), Some(Color::WHITE));
        assert_eq!(f.get_pixel(1, 0), Some(Color::BLACK));
        // A second fill over a sub-rect must align with the first.
        let mut g = fb(6, 6);
        g.tile_rect(&Rect::new(0, 0, 3, 6), &tile);
        g.tile_rect(&Rect::new(3, 0, 3, 6), &tile);
        assert_eq!(f, g);
    }

    #[test]
    fn bitmap_rect_fg_bg() {
        let mut f = fb(8, 2);
        // One row: 0b10100000 pattern over 8 px, two rows.
        let bits = [0b1010_0000u8, 0b0101_0000u8];
        f.bitmap_rect(
            &Rect::new(0, 0, 8, 2),
            &bits,
            Color::WHITE,
            Some(Color::rgb(1, 1, 1)),
        );
        assert_eq!(f.get_pixel(0, 0), Some(Color::WHITE));
        assert_eq!(f.get_pixel(1, 0), Some(Color::rgb(1, 1, 1)));
        assert_eq!(f.get_pixel(2, 0), Some(Color::WHITE));
        assert_eq!(f.get_pixel(1, 1), Some(Color::WHITE));
        assert_eq!(f.get_pixel(0, 1), Some(Color::rgb(1, 1, 1)));
    }

    #[test]
    fn bitmap_rect_transparent_bg_preserves() {
        let mut f = fb(4, 1);
        f.fill_rect(&Rect::new(0, 0, 4, 1), Color::rgb(5, 5, 5));
        f.bitmap_rect(&Rect::new(0, 0, 4, 1), &[0b1000_0000], Color::WHITE, None);
        assert_eq!(f.get_pixel(0, 0), Some(Color::WHITE));
        assert_eq!(f.get_pixel(1, 0), Some(Color::rgb(5, 5, 5)));
    }

    #[test]
    fn bitmap_anchored_at_rect_origin() {
        let mut f = fb(8, 8);
        f.bitmap_rect(&Rect::new(3, 3, 2, 1), &[0b0100_0000], Color::WHITE, None);
        assert_eq!(f.get_pixel(4, 3), Some(Color::WHITE));
        assert_eq!(f.get_pixel(3, 3), Some(Color::BLACK));
    }

    #[test]
    fn copy_rect_disjoint() {
        let mut f = fb(8, 8);
        f.fill_rect(&Rect::new(0, 0, 2, 2), Color::WHITE);
        f.copy_rect(&Rect::new(0, 0, 2, 2), 4, 4);
        assert_eq!(f.get_pixel(4, 4), Some(Color::WHITE));
        assert_eq!(f.get_pixel(5, 5), Some(Color::WHITE));
        assert_eq!(f.get_pixel(0, 0), Some(Color::WHITE)); // Source kept.
    }

    #[test]
    fn copy_rect_overlapping_down_right() {
        let mut f = fb(6, 6);
        // Paint a gradient-ish pattern for overlap detection.
        for y in 0..6 {
            for x in 0..6 {
                f.set_pixel(x, y, Color::rgb(x as u8 * 10, y as u8 * 10, 0));
            }
        }
        let snapshot = f.clone();
        f.copy_rect(&Rect::new(0, 0, 4, 4), 2, 2);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(
                    f.get_pixel(x + 2, y + 2),
                    snapshot.get_pixel(x, y),
                    "at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn copy_rect_overlapping_up_left() {
        let mut f = fb(6, 6);
        for y in 0..6 {
            for x in 0..6 {
                f.set_pixel(x, y, Color::rgb(x as u8 * 10, y as u8 * 10, 0));
            }
        }
        let snapshot = f.clone();
        f.copy_rect(&Rect::new(2, 2, 4, 4), 0, 0);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(f.get_pixel(x, y), snapshot.get_pixel(x + 2, y + 2));
            }
        }
    }

    #[test]
    fn copy_rect_same_row_overlap() {
        let mut f = fb(8, 1);
        for x in 0..8 {
            f.set_pixel(x, 0, Color::rgb(x as u8, 0, 0));
        }
        f.copy_rect(&Rect::new(0, 0, 6, 1), 2, 0);
        for x in 0..6 {
            assert_eq!(f.get_pixel(x + 2, 0), Some(Color::rgb(x as u8, 0, 0)));
        }
    }

    #[test]
    fn copy_rect_one_pixel_scrolls_all_directions() {
        // Scrolling by a single pixel maximises source/destination
        // overlap — the case that breaks a copy loop with the wrong
        // row order. Check all four directions against a snapshot.
        for (dx, dy) in [(0i32, -1i32), (0, 1), (-1, 0), (1, 0)] {
            let mut f = fb(16, 16);
            for y in 0..16 {
                for x in 0..16 {
                    f.set_pixel(x, y, Color::rgb(x as u8 * 16, y as u8 * 16, 123));
                }
            }
            let snapshot = f.clone();
            let src = Rect::new(0, 0, 16, 16);
            f.copy_rect(&src, dx, dy);
            for y in 0..16i32 {
                for x in 0..16i32 {
                    let (sx, sy) = (x - dx, y - dy);
                    let want = if (0..16).contains(&sx) && (0..16).contains(&sy) {
                        snapshot.get_pixel(sx, sy)
                    } else {
                        // Outside the shifted region the pixel is
                        // untouched.
                        snapshot.get_pixel(x, y)
                    };
                    assert_eq!(f.get_pixel(x, y), want, "scroll ({dx},{dy}) at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn copy_rect_clips_offscreen_destination() {
        let mut f = fb(4, 4);
        f.fill_rect(&Rect::new(0, 0, 2, 2), Color::WHITE);
        f.copy_rect(&Rect::new(0, 0, 2, 2), 3, 3);
        assert_eq!(f.get_pixel(3, 3), Some(Color::WHITE));
        // The rest fell off the edge; nothing panicked.
    }

    #[test]
    fn put_and_get_raw_round_trip() {
        let mut f = fb(4, 4);
        let r = Rect::new(1, 1, 2, 2);
        let pixels: Vec<u8> = (0..12).collect();
        f.put_raw(&r, &pixels);
        let (clip, got) = f.get_raw(&r);
        assert_eq!(clip, r);
        assert_eq!(got, pixels);
    }

    #[test]
    fn put_raw_clips() {
        let mut f = fb(4, 4);
        let r = Rect::new(3, 3, 2, 2);
        let pixels = vec![7u8; 2 * 2 * 3];
        f.put_raw(&r, &pixels);
        assert_eq!(f.get_pixel(3, 3), Some(Color::rgb(7, 7, 7)));
    }

    #[test]
    fn get_raw_out_of_bounds_is_empty() {
        let f = fb(4, 4);
        let (clip, got) = f.get_raw(&Rect::new(10, 10, 2, 2));
        assert!(clip.is_empty());
        assert!(got.is_empty());
    }

    #[test]
    fn convert_depth_round_trip_888_to_8888() {
        let mut f = fb(3, 3);
        f.fill_rect(&Rect::new(0, 0, 3, 3), Color::rgb(10, 20, 30));
        let g = f.convert(PixelFormat::Rgba8888);
        assert_eq!(g.get_pixel(1, 1), Some(Color::rgb(10, 20, 30)));
        let back = g.convert(PixelFormat::Rgb888);
        assert_eq!(back, f);
    }

    #[test]
    fn checksum_changes_with_content() {
        let mut f = fb(4, 4);
        let c0 = f.checksum();
        f.set_pixel(0, 0, Color::rgb(0, 0, 1));
        assert_ne!(f.checksum(), c0);
    }
}
