//! Degenerate-geometry sweep for the four rewritten kernels.
//!
//! The equivalence suite (`equivalence.rs`) covers random geometry in
//! a comfortable range; this file drives the edges where the fast
//! paths change shape — odd dimensions and their chroma tails,
//! zero-area rectangles, one-pixel strips, and extreme aspect-ratio
//! resampling — and checks byte-exactness against the references at
//! each one. Run with and without `--features simd`; the outputs must
//! be identical either way.

use proptest::prelude::*;
use thinc_raster::scale::fant_spans;
use thinc_raster::yuv::YuvFormat;
use thinc_raster::{reference, Color, Framebuffer, PixelFormat, Rect, ScaleFilter, YuvFrame};

const FORMATS: [PixelFormat; 4] = [
    PixelFormat::Indexed8,
    PixelFormat::Rgb565,
    PixelFormat::Rgb888,
    PixelFormat::Rgba8888,
];

/// A framebuffer filled with deterministic pseudo-random bytes.
fn noise_fb(w: u32, h: u32, format: PixelFormat, seed: u64) -> Framebuffer {
    let mut fb = Framebuffer::new(w, h, format);
    let len = w as usize * h as usize * format.bytes_per_pixel();
    let mut x = seed | 1;
    let bytes: Vec<u8> = (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect();
    fb.put_raw(&Rect::new(0, 0, w, h), &bytes);
    fb
}

/// YV12's round-up chroma geometry at odd dimensions: 1×1, odd×odd,
/// odd×even, and even×odd frames must all match the reference, which
/// averages only the pixels that exist in each 2×2 block.
#[test]
fn yuv_pack_odd_dimension_regressions() {
    for (w, h) in [(1, 1), (3, 3), (3, 4), (4, 3), (1, 4), (4, 1), (5, 5), (7, 2), (2, 7)] {
        for yfmt in [YuvFormat::Yv12, YuvFormat::Yuy2] {
            for (i, fmt) in FORMATS.iter().enumerate() {
                let src = noise_fb(w, h, *fmt, 0x51ED + (w * 31 + h) as u64 + i as u64);
                let r = Rect::new(0, 0, w, h);
                let fast = YuvFrame::from_rgb(&src, &r, yfmt);
                let naive = reference::yuv_from_rgb(&src, &r, yfmt);
                assert_eq!(
                    fast.data, naive.data,
                    "{yfmt:?} {w}x{h} {fmt:?} diverged from reference"
                );
            }
        }
    }
}

/// Zero-area packs must produce a zero-length (well, header-only)
/// frame and not touch the source at all.
#[test]
fn yuv_pack_zero_area_is_empty() {
    let src = noise_fb(8, 8, PixelFormat::Rgb888, 7);
    for r in [Rect::new(0, 0, 0, 5), Rect::new(0, 0, 5, 0), Rect::new(20, 20, 4, 4)] {
        let frame = YuvFrame::from_rgb(&src, &r, YuvFormat::Yv12);
        assert_eq!(frame.data, reference::yuv_from_rgb(&src, &r, YuvFormat::Yv12).data);
    }
}

/// Extreme aspect ratios through the Fant resampler: single-row and
/// single-column sources and destinations, including the paper's
/// 1365→1024 non-integer ratio, stay byte-exact.
#[test]
fn scale_fant_extreme_ratios() {
    let cases: [(u32, u32, u32, u32); 8] = [
        (1365, 1, 1024, 1),
        (1, 1365, 1, 1024),
        (2048, 1, 1, 1),
        (1, 1, 64, 64),
        (2, 2, 2048, 1),
        (2048, 2, 2, 2048),
        (640, 1, 7, 3),
        (3, 999, 999, 3),
    ];
    for (sw, sh, dw, dh) in cases {
        let src = noise_fb(sw, sh, PixelFormat::Rgb888, (sw * 7 + sh) as u64);
        let fast = thinc_raster::scale_image(&src, dw, dh, ScaleFilter::Fant);
        let naive = reference::scale_fant(&src, dw, dh);
        assert_eq!(
            fast.data(),
            naive.data(),
            "fant {sw}x{sh} -> {dw}x{dh} diverged from reference"
        );
    }
}

/// Zero-area destinations and sources produce empty buffers without
/// panicking, for both scale filters.
#[test]
fn scale_zero_area_edges() {
    let src = noise_fb(5, 5, PixelFormat::Rgba8888, 3);
    for (dw, dh) in [(0, 5), (5, 0), (0, 0)] {
        for filter in [ScaleFilter::Nearest, ScaleFilter::Fant] {
            let out = thinc_raster::scale_image(&src, dw, dh, filter);
            assert_eq!(out.width(), dw);
            assert_eq!(out.height(), dh);
            assert!(out.data().is_empty());
        }
    }
}

/// One-pixel strips through bitmap_rect (both the run path and, at
/// width ≥ 16 with a background, the byte-table path) match the
/// reference, as do zero-area rects.
#[test]
fn bitmap_rect_strips_and_zero_area() {
    let fg = Color::rgb(250, 10, 30);
    let cases: [(Rect, Option<Color>); 8] = [
        (Rect::new(0, 0, 48, 1), Some(Color::rgb(5, 6, 7))),
        (Rect::new(0, 0, 48, 1), None),
        (Rect::new(3, 2, 1, 40), Some(Color::rgb(9, 9, 9))),
        (Rect::new(-5, 0, 48, 1), Some(Color::BLACK)),
        (Rect::new(0, 0, 0, 8), Some(Color::BLACK)),
        (Rect::new(0, 0, 8, 0), None),
        (Rect::new(40, 40, 30, 30), Some(Color::WHITE)),
        (Rect::new(0, 0, 17, 2), Some(Color::rgb(1, 2, 3))),
    ];
    for (i, (r, bg)) in cases.iter().enumerate() {
        let row_bytes = (r.w as usize).div_ceil(8);
        let mut x = 0x9E3779B97F4A7C15u64 | 1;
        let bits: Vec<u8> = (0..row_bytes * r.h as usize)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        for fmt in FORMATS {
            let mut fast = noise_fb(48, 48, fmt, i as u64 + 1);
            let mut naive = fast.clone();
            fast.bitmap_rect(r, &bits, fg, *bg);
            reference::bitmap_rect(&mut naive, r, &bits, fg, *bg);
            assert_eq!(fast.data(), naive.data(), "case {i} {fmt:?} diverged");
        }
    }
}

/// Format conversion on degenerate buffers: 1×1, single-row, and
/// single-column images across every ordered format pair.
#[test]
fn convert_degenerate_buffers() {
    for (w, h) in [(1, 1), (64, 1), (1, 64), (2, 3)] {
        for from in FORMATS {
            for to in FORMATS {
                let src = noise_fb(w, h, from, (w + h) as u64);
                let fast = src.convert(to);
                let naive = reference::convert(&src, to);
                assert_eq!(
                    fast.data(),
                    naive.data(),
                    "convert {from:?}->{to:?} {w}x{h} diverged"
                );
            }
        }
    }
}

proptest! {
    /// Randomized span coverage: for any axis map n→m, every source
    /// pixel's weight is fully distributed (column sums equal m),
    /// every output's weights sum to n, and no zero weights appear —
    /// the invariant that fixes the right/bottom-edge coverage bug at
    /// non-integer ratios.
    #[test]
    fn fant_spans_distribute_all_weight(n in 1usize..3000, m in 1usize..3000) {
        let spans = fant_spans(n, m);
        prop_assert_eq!(spans.len(), m);
        let mut per_source = vec![0u64; n];
        for sp in &spans {
            let mut total = 0u64;
            for (k, &w) in sp.weights.iter().enumerate() {
                prop_assert!(w > 0, "zero weight in span");
                per_source[sp.first + k] += w;
                total += w;
            }
            prop_assert_eq!(total, n as u64, "output span does not sum to n");
        }
        for (s, &t) in per_source.iter().enumerate() {
            prop_assert_eq!(t, m as u64, "source {} weight not fully distributed", s);
        }
    }

    /// Strip-shaped proptest sweep: 1-pixel-tall and 1-pixel-wide
    /// sources through the Fant path at random destination sizes.
    #[test]
    fn scale_fant_strips_match_reference(len in 1u32..200, dlen in 1u32..200,
                                         vertical in any::<bool>(), seed in any::<u64>()) {
        let (sw, sh, dw, dh) = if vertical { (1, len, 1, dlen) } else { (len, 1, dlen, 1) };
        let src = noise_fb(sw, sh, PixelFormat::Rgba8888, seed);
        let fast = thinc_raster::scale_image(&src, dw, dh, ScaleFilter::Fant);
        let naive = reference::scale_fant(&src, dw, dh);
        prop_assert_eq!(fast.data(), naive.data());
    }
}
