//! Byte-exact equivalence of the optimized raster kernels against the
//! retained naive references in `thinc_raster::reference`.
//!
//! Every fast-path kernel (fill, tile, stipple, copy, convert, YUV
//! pack/unpack, nearest and Fant scaling) must produce *identical
//! bytes* to its pixel-at-a-time reference on random geometry, random
//! content, and every pixel format — this is what licenses the perf
//! rewrite to claim "same output, faster".

use proptest::prelude::*;
use thinc_raster::yuv::YuvFormat;
use thinc_raster::{reference, Color, Framebuffer, PixelFormat, Rect, ScaleFilter, YuvFrame};

const FORMATS: [PixelFormat; 4] = [
    PixelFormat::Indexed8,
    PixelFormat::Rgb565,
    PixelFormat::Rgb888,
    PixelFormat::Rgba8888,
];

fn arb_format() -> impl Strategy<Value = PixelFormat> {
    (0usize..4).prop_map(|i| FORMATS[i])
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-20..60i32, -20..60i32, 0u32..40, 0u32..40).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

/// A framebuffer filled with deterministic pseudo-random bytes.
fn noise_fb(w: u32, h: u32, format: PixelFormat, seed: u64) -> Framebuffer {
    let mut fb = Framebuffer::new(w, h, format);
    let len = w as usize * h as usize * format.bytes_per_pixel();
    let mut x = seed | 1;
    let bytes: Vec<u8> = (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect();
    fb.put_raw(&Rect::new(0, 0, w, h), &bytes);
    fb
}

proptest! {
    #[test]
    fn fill_rect_matches_reference(r in arb_rect(), fmt in arb_format(),
                                   c in any::<(u8, u8, u8, u8)>(), seed in any::<u64>()) {
        let color = Color::rgba(c.0, c.1, c.2, c.3);
        let mut fast = noise_fb(48, 48, fmt, seed);
        let mut naive = fast.clone();
        fast.fill_rect(&r, color);
        reference::fill_rect(&mut naive, &r, color);
        prop_assert_eq!(fast.data(), naive.data());
    }

    #[test]
    fn tile_rect_matches_reference(r in arb_rect(), fmt in arb_format(),
                                   tw in 1u32..9, th in 1u32..9, seed in any::<u64>()) {
        let tile = noise_fb(tw, th, fmt, seed ^ 0xABCD);
        let mut fast = noise_fb(48, 48, fmt, seed);
        let mut naive = fast.clone();
        fast.tile_rect(&r, &tile);
        reference::tile_rect(&mut naive, &r, &tile);
        prop_assert_eq!(fast.data(), naive.data());
    }

    #[test]
    fn bitmap_rect_matches_reference(r in arb_rect(), fmt in arb_format(),
                                     fg in any::<(u8, u8, u8)>(),
                                     bg in any::<(bool, u8, u8, u8)>(),
                                     seed in any::<u64>()) {
        let fg = Color::rgb(fg.0, fg.1, fg.2);
        let bg = bg.0.then(|| Color::rgb(bg.1, bg.2, bg.3));
        let row_bytes = (r.w as usize).div_ceil(8);
        let mut x = seed | 1;
        let bits: Vec<u8> = (0..row_bytes * r.h as usize)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let mut fast = noise_fb(48, 48, fmt, seed);
        let mut naive = fast.clone();
        fast.bitmap_rect(&r, &bits, fg, bg);
        reference::bitmap_rect(&mut naive, &r, &bits, fg, bg);
        prop_assert_eq!(fast.data(), naive.data());
    }

    #[test]
    fn copy_rect_matches_reference(src in arb_rect(), fmt in arb_format(),
                                   dx in -30..30i32, dy in -30..30i32, seed in any::<u64>()) {
        let mut fast = noise_fb(48, 48, fmt, seed);
        let mut naive = fast.clone();
        fast.copy_rect(&src, src.x + dx, src.y + dy);
        reference::copy_rect(&mut naive, &src, src.x + dx, src.y + dy);
        prop_assert_eq!(fast.data(), naive.data());
    }

    #[test]
    fn convert_matches_reference(from in arb_format(), to in arb_format(),
                                 w in 1u32..24, h in 1u32..24, seed in any::<u64>()) {
        let src = noise_fb(w, h, from, seed);
        let fast = src.convert(to);
        let naive = reference::convert(&src, to);
        prop_assert_eq!(fast.data(), naive.data());
    }

    #[test]
    fn yuv_pack_matches_reference(r in arb_rect(), fmt in arb_format(),
                                  planar in any::<bool>(), seed in any::<u64>()) {
        let yfmt = if planar { YuvFormat::Yv12 } else { YuvFormat::Yuy2 };
        let src = noise_fb(48, 48, fmt, seed);
        let fast = YuvFrame::from_rgb(&src, &r, yfmt);
        let naive = reference::yuv_from_rgb(&src, &r, yfmt);
        prop_assert_eq!(fast.data, naive.data);
    }

    #[test]
    fn yuv_unpack_scaled_matches_reference(sw in 1u32..24, sh in 1u32..24,
                                           dw in 0u32..32, dh in 0u32..32,
                                           fmt in arb_format(),
                                           planar in any::<bool>(), seed in any::<u64>()) {
        let yfmt = if planar { YuvFormat::Yv12 } else { YuvFormat::Yuy2 };
        let rgb = noise_fb(sw, sh, PixelFormat::Rgb888, seed);
        let frame = YuvFrame::from_rgb(&rgb, &Rect::new(0, 0, sw, sh), yfmt);
        let fast = frame.to_rgb_scaled(dw, dh, fmt);
        let naive = reference::yuv_to_rgb_scaled(&frame, dw, dh, fmt);
        prop_assert_eq!(fast.data(), naive.data());
    }

    #[test]
    fn scale_nearest_matches_reference(sw in 1u32..24, sh in 1u32..24,
                                       dw in 1u32..32, dh in 1u32..32,
                                       fmt in arb_format(), seed in any::<u64>()) {
        let src = noise_fb(sw, sh, fmt, seed);
        let fast = thinc_raster::scale_image(&src, dw, dh, ScaleFilter::Nearest);
        let naive = reference::scale_nearest(&src, dw, dh);
        prop_assert_eq!(fast.data(), naive.data());
    }

    #[test]
    fn scale_fant_matches_reference(sw in 1u32..20, sh in 1u32..20,
                                    dw in 1u32..24, dh in 1u32..24,
                                    fmt in arb_format(), seed in any::<u64>()) {
        let src = noise_fb(sw, sh, fmt, seed);
        let fast = thinc_raster::scale_image(&src, dw, dh, ScaleFilter::Fant);
        let naive = reference::scale_fant(&src, dw, dh);
        prop_assert_eq!(fast.data(), naive.data());
    }
}
