//! Property-based tests of the raster substrate's core invariants:
//! region algebra is a correct set algebra, raster operations agree
//! with their per-pixel definitions, and copies behave like memmove
//! under arbitrary overlap.

use proptest::prelude::*;
use thinc_raster::{Color, Framebuffer, PixelFormat, Rect, Region};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-20..60i32, -20..60i32, 0u32..40, 0u32..40).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

fn rect_pixels(r: &Rect) -> Vec<(i32, i32)> {
    let mut v = Vec::new();
    for y in r.y..r.bottom() {
        for x in r.x..r.right() {
            v.push((x, y));
        }
    }
    v
}

fn region_contains_point(reg: &Region, p: (i32, i32)) -> bool {
    reg.rects()
        .iter()
        .any(|r| r.contains_point(thinc_raster::Point::new(p.0, p.1)))
}

proptest! {
    #[test]
    fn rect_subtract_partitions(a in arb_rect(), b in arb_rect()) {
        let parts = a.subtract(&b);
        // Each pixel of `a` is in exactly one of: parts, or a∩b.
        for p in rect_pixels(&a) {
            let in_b = b.contains_point(thinc_raster::Point::new(p.0, p.1));
            let count = parts
                .iter()
                .filter(|r| r.contains_point(thinc_raster::Point::new(p.0, p.1)))
                .count();
            prop_assert_eq!(count, usize::from(!in_b), "pixel {:?}", p);
        }
        // Parts never exceed a.
        for part in &parts {
            prop_assert!(a.contains(part));
            prop_assert!(!part.intersects(&b));
        }
    }

    #[test]
    fn rect_intersection_commutes_and_bounds(a in arb_rect(), b in arb_rect()) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab, ba);
        prop_assert!(a.contains(&ab) || ab.is_empty());
        prop_assert!(ab.area() <= a.area().min(b.area()));
    }

    #[test]
    fn region_union_subtract_pixelwise(rects in prop::collection::vec(arb_rect(), 1..6),
                                       hole in arb_rect()) {
        let mut reg = Region::new();
        for r in &rects {
            reg.union_rect(r);
        }
        let before_area = reg.area();
        // Union area: count distinct pixels.
        let mut seen = std::collections::HashSet::new();
        for r in &rects {
            for p in rect_pixels(r) {
                seen.insert(p);
            }
        }
        prop_assert_eq!(before_area, seen.len() as u64);
        // Subtract and re-check membership per pixel.
        reg.subtract_rect(&hole);
        for &p in &seen {
            let in_hole = hole.contains_point(thinc_raster::Point::new(p.0, p.1));
            prop_assert_eq!(region_contains_point(&reg, p), !in_hole, "pixel {:?}", p);
        }
        // Disjointness of the representation.
        let rs = reg.rects();
        for (i, x) in rs.iter().enumerate() {
            for y in &rs[i + 1..] {
                prop_assert!(!x.intersects(y));
            }
        }
    }

    #[test]
    fn fill_matches_pixelwise_definition(r in arb_rect(), c in any::<(u8, u8, u8)>()) {
        let color = Color::rgb(c.0, c.1, c.2);
        let mut fb = Framebuffer::new(48, 48, PixelFormat::Rgb888);
        fb.fill_rect(&r, color);
        for y in 0..48 {
            for x in 0..48 {
                let expect = if r.contains_point(thinc_raster::Point::new(x, y)) {
                    color
                } else {
                    Color::BLACK
                };
                prop_assert_eq!(fb.get_pixel(x, y), Some(expect));
            }
        }
    }

    #[test]
    fn copy_rect_equals_snapshot_copy(src in arb_rect(), dx in -30..30i32, dy in -30..30i32) {
        let mut fb = Framebuffer::new(48, 48, PixelFormat::Rgb888);
        for y in 0..48 {
            for x in 0..48 {
                fb.set_pixel(x, y, Color::rgb((x * 5) as u8, (y * 5) as u8, (x ^ y) as u8));
            }
        }
        let snapshot = fb.clone();
        fb.copy_rect(&src, src.x + dx, src.y + dy);
        for y in 0..48 {
            for x in 0..48 {
                // A pixel is copied iff its source position is inside
                // the clipped src and itself inside the clipped dst.
                let sx = x - dx;
                let sy = y - dy;
                let src_clip = src.intersection(&snapshot.bounds());
                let from_copy = src_clip.contains_point(thinc_raster::Point::new(sx, sy))
                    && snapshot.bounds().contains_point(thinc_raster::Point::new(x, y));
                let expect = if from_copy {
                    snapshot.get_pixel(sx, sy)
                } else {
                    snapshot.get_pixel(x, y)
                };
                prop_assert_eq!(fb.get_pixel(x, y), expect, "at ({}, {})", x, y);
            }
        }
    }

    #[test]
    fn raw_round_trip_any_rect(r in arb_rect()) {
        let mut fb = Framebuffer::new(48, 48, PixelFormat::Rgb888);
        for y in 0..48 {
            for x in 0..48 {
                fb.set_pixel(x, y, Color::rgb(x as u8, y as u8, 7));
            }
        }
        let (clip, data) = fb.get_raw(&r);
        let mut fb2 = Framebuffer::new(48, 48, PixelFormat::Rgb888);
        if !clip.is_empty() {
            fb2.put_raw(&clip, &data);
            for p in rect_pixels(&clip) {
                prop_assert_eq!(fb2.get_pixel(p.0, p.1), fb.get_pixel(p.0, p.1));
            }
        }
    }

    #[test]
    fn scaled_rect_covers_source_image(r in arb_rect(),
                                       num in 1u32..8, den in 1u32..8) {
        prop_assume!(!r.is_empty());
        let s = r.scaled(num, den, num, den);
        // Center maps inside the covering rect.
        let cx = (r.x as i64 * 2 + r.w as i64) * num as i64 / (2 * den as i64);
        let cy = (r.y as i64 * 2 + r.h as i64) * num as i64 / (2 * den as i64);
        prop_assert!(!s.is_empty());
        prop_assert!(cx >= s.x as i64 - 1 && cx <= s.right() as i64 + 1);
        prop_assert!(cy >= s.y as i64 - 1 && cy <= s.bottom() as i64 + 1);
    }
}
