//! A minimal priority event queue for virtual-time simulations.
//!
//! Benchmarks that interleave periodic sources with network drains
//! (a video player emitting a frame every 41.7 ms while the link is
//! still busy, THINC's periodic buffer flush) need an ordered agenda.
//! Events with equal timestamps pop in insertion order, which keeps
//! simulations deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of events of type `T`.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventSlot<T>)>>,
    seq: u64,
}

/// Wrapper that exempts the payload from ordering.
#[derive(Debug)]
struct EventSlot<T>(T);

impl<T> PartialEq for EventSlot<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for EventSlot<T> {}
impl<T> PartialOrd for EventSlot<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for EventSlot<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `at`.
    pub fn schedule(&mut self, at: SimTime, event: T) {
        self.heap.push(Reverse((at, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Removes and returns the earliest event with its time.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse((t, _, slot))| (t, slot.0))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the agenda is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(7), ());
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        q.schedule(SimTime(5), 2);
        q.schedule(SimTime(15), 3);
        assert_eq!(q.pop(), Some((SimTime(5), 2)));
        q.schedule(SimTime(1), 4);
        assert_eq!(q.pop(), Some((SimTime(1), 4)));
        assert_eq!(q.pop(), Some((SimTime(15), 3)));
    }
}
