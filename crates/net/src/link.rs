//! Duplex links and the paper's network configurations.
//!
//! A [`DuplexLink`] pairs two [`TcpPipe`]s (downlink: server→client,
//! uplink: client→server). [`NetworkConfig`] provides the three
//! testbed environments of §8.1 — LAN Desktop, WAN Desktop, 802.11g
//! PDA — plus arbitrary custom ones (the remote sites of Table 2 are
//! built by the bench crate on top of this) and relay routing for the
//! GoToMyPC-style intermediate-server topology.

use crate::fault::FaultPlan;
use crate::tcp::{TcpParams, TcpPipe};
use crate::time::{SimDuration, SimTime};

/// A named network environment.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Human-readable name ("LAN Desktop", "WAN Desktop", …).
    pub name: String,
    /// Link bandwidth, bits per second (symmetric).
    pub bandwidth_bps: u64,
    /// Path round-trip time.
    pub rtt: SimDuration,
    /// TCP receive window, bytes.
    pub rwnd_bytes: u64,
    /// Faults injected on this path, if any (see [`crate::fault`]).
    /// [`connect`](Self::connect) installs the plan on the downlink
    /// as-is and reseeds it for the uplink so the two directions draw
    /// independent fault sequences.
    pub fault: Option<FaultPlan>,
}

impl NetworkConfig {
    /// The paper's LAN Desktop environment: 100 Mbps switched
    /// FastEthernet; sub-millisecond RTT.
    pub fn lan_desktop() -> Self {
        Self {
            name: "LAN Desktop".into(),
            bandwidth_bps: 100_000_000,
            rtt: SimDuration::from_micros(200),
            rwnd_bytes: 1024 * 1024,
            fault: None,
        }
    }

    /// The paper's WAN Desktop environment: 100 Mbps with a 66 ms RTT
    /// (Internet2 cross-country emulation), 1 MB TCP window.
    pub fn wan_desktop() -> Self {
        Self {
            name: "WAN Desktop".into(),
            bandwidth_bps: 100_000_000,
            rtt: SimDuration::from_millis(66),
            rwnd_bytes: 1024 * 1024,
            fault: None,
        }
    }

    /// A degraded WAN: DSL-class bandwidth, high RTT, a modest window,
    /// and 1% seeded segment loss. This is the environment the paper's
    /// resilience claims (stateless client, server-held display state,
    /// §1–§3) must hold up in; use [`with_faults`](Self::with_faults)
    /// to add outages or corruption on top, or to change the seed.
    pub fn lossy_wan() -> Self {
        Self {
            name: "Lossy WAN".into(),
            bandwidth_bps: 10_000_000,
            rtt: SimDuration::from_millis(80),
            rwnd_bytes: 256 * 1024,
            fault: Some(FaultPlan::seeded(0x7417C).with_loss(0.01)),
        }
    }

    /// The worst path the resilience stack is asked to survive:
    /// [`lossy_wan`](Self::lossy_wan)'s link parameters and loss, plus
    /// sustained byte corruption, segment reordering and segment
    /// duplication windows. Nothing on this path can be trusted —
    /// this is what the integrity framing (protocol revision 2:
    /// per-frame CRC32 + sequence numbers) exists to survive. Use
    /// [`with_faults`](Self::with_faults) to change the seed or
    /// window schedule.
    pub fn hostile_wan() -> Self {
        let second = SimDuration::from_secs_f64(1.0);
        Self {
            name: "Hostile WAN".into(),
            bandwidth_bps: 10_000_000,
            rtt: SimDuration::from_millis(80),
            rwnd_bytes: 256 * 1024,
            fault: Some(
                FaultPlan::seeded(0x0505_711E)
                    .with_loss(0.01)
                    .with_corruption(SimTime(200_000), second, 0.0005)
                    .with_reorder(SimTime(400_000), second, 0.05)
                    .with_duplication(SimTime(600_000), second, 0.05),
            ),
        }
    }

    /// The paper's 802.11g PDA environment: idealized 24 Mbps wireless,
    /// no added latency or loss (per §8.1: only the small screen and
    /// bandwidth are modeled).
    pub fn pda_802_11g() -> Self {
        Self {
            name: "802.11g PDA".into(),
            bandwidth_bps: 24_000_000,
            rtt: SimDuration::from_micros(500),
            rwnd_bytes: 256 * 1024,
            fault: None,
        }
    }

    /// A custom environment (remote sites, ablations).
    pub fn custom(name: &str, bandwidth_bps: u64, rtt: SimDuration, rwnd_bytes: u64) -> Self {
        Self {
            name: name.into(),
            bandwidth_bps,
            rtt,
            rwnd_bytes,
            fault: None,
        }
    }

    /// Returns this environment with `plan` injected on the path
    /// (replacing any previous plan).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Composes this (client-side) configuration with a relay hop to
    /// the server, as in GoToMyPC's hosted intermediate server: RTTs
    /// add, bandwidth is the minimum, and the window clamp is the
    /// smaller of the two.
    pub fn via_relay(&self, relay_to_server: &NetworkConfig) -> NetworkConfig {
        NetworkConfig {
            name: format!("{} via {}", self.name, relay_to_server.name),
            bandwidth_bps: self.bandwidth_bps.min(relay_to_server.bandwidth_bps),
            rtt: self.rtt + relay_to_server.rtt,
            rwnd_bytes: self.rwnd_bytes.min(relay_to_server.rwnd_bytes),
            // Faults on either leg damage the composed path.
            fault: self.fault.clone().or_else(|| relay_to_server.fault.clone()),
        }
    }

    fn tcp_params(&self) -> TcpParams {
        TcpParams {
            bandwidth_bps: self.bandwidth_bps,
            rtt: self.rtt,
            rwnd_bytes: self.rwnd_bytes,
            ..TcpParams::default()
        }
    }

    /// Opens a fresh duplex connection over this environment. A fault
    /// plan, if present, is installed on both directions: the downlink
    /// executes it with the plan's own seed, the uplink with a derived
    /// seed, so the two flows degrade independently but each run is
    /// reproducible from the one configured seed.
    pub fn connect(&self) -> DuplexLink {
        let mut link = DuplexLink::new(self.tcp_params());
        if let Some(plan) = &self.fault {
            link.down.set_fault_plan(plan.clone());
            link.up
                .set_fault_plan(plan.reseeded(plan.seed.wrapping_add(0x9E37_79B9_7F4A_7C15)));
        }
        link
    }
}

/// A bidirectional TCP connection between client and server.
#[derive(Debug, Clone)]
pub struct DuplexLink {
    /// Server → client flow (display updates).
    pub down: TcpPipe,
    /// Client → server flow (input events, update requests).
    pub up: TcpPipe,
}

impl DuplexLink {
    /// Creates a link with symmetric parameters.
    pub fn new(params: TcpParams) -> Self {
        Self {
            down: TcpPipe::new(params),
            up: TcpPipe::new(params),
        }
    }

    /// One-way propagation delay (half the RTT).
    pub fn one_way(&self) -> SimDuration {
        self.down.params().rtt.div(2)
    }

    /// Full round-trip time.
    pub fn rtt(&self) -> SimDuration {
        self.down.params().rtt
    }

    /// Total bytes sent in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.down.bytes_sent() + self.up.bytes_sent()
    }

    /// Resets both directions (fresh connection).
    pub fn reset(&mut self) {
        self.down.reset();
        self.up.reset();
    }

    /// Sends `len` bytes server→client at `now`; returns arrival time.
    pub fn send_down(&mut self, now: SimTime, len: u64) -> SimTime {
        self.down.send(now, len).1
    }

    /// Sends `len` bytes client→server at `now`; returns arrival time.
    pub fn send_up(&mut self, now: SimTime, len: u64) -> SimTime {
        self.up.send(now, len).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_environments() {
        let lan = NetworkConfig::lan_desktop();
        assert_eq!(lan.bandwidth_bps, 100_000_000);
        let wan = NetworkConfig::wan_desktop();
        assert_eq!(wan.rtt.as_millis(), 66);
        assert_eq!(wan.rwnd_bytes, 1024 * 1024);
        let pda = NetworkConfig::pda_802_11g();
        assert_eq!(pda.bandwidth_bps, 24_000_000);
    }

    #[test]
    fn relay_composition() {
        // Client on a WAN-ish path to the relay, relay close to server.
        let leg1 = NetworkConfig::custom(
            "client-relay",
            50_000_000,
            SimDuration::from_millis(40),
            256 * 1024,
        );
        let leg2 = NetworkConfig::custom(
            "relay-server",
            100_000_000,
            SimDuration::from_millis(30),
            1024 * 1024,
        );
        let path = leg1.via_relay(&leg2);
        assert_eq!(path.rtt.as_millis(), 70); // Matches the paper's ~70 ms.
        assert_eq!(path.bandwidth_bps, 50_000_000);
        assert_eq!(path.rwnd_bytes, 256 * 1024);
    }

    #[test]
    fn duplex_directions_are_independent() {
        let mut link = NetworkConfig::lan_desktop().connect();
        let a_down = link.send_down(SimTime::ZERO, 1_000_000);
        let a_up = link.send_up(SimTime::ZERO, 100);
        // The big downlink transfer does not delay the uplink packet.
        assert!(a_up < a_down);
        assert_eq!(link.total_bytes(), 1_000_100);
    }

    #[test]
    fn wan_round_trip_request_response() {
        let mut link = NetworkConfig::wan_desktop().connect();
        // Client request, server response: at least one full RTT.
        let req_arrival = link.send_up(SimTime::ZERO, 100);
        let resp_arrival = link.send_down(req_arrival, 100);
        assert!(resp_arrival.as_micros() >= 66_000);
    }

    #[test]
    fn reset_clears_counters() {
        let mut link = NetworkConfig::lan_desktop().connect();
        link.send_down(SimTime::ZERO, 12345);
        link.reset();
        assert_eq!(link.total_bytes(), 0);
    }

    #[test]
    fn lossy_wan_preset_installs_loss_plan() {
        let cfg = NetworkConfig::lossy_wan();
        let plan = cfg.fault.as_ref().expect("preset carries a plan");
        assert!(plan.loss_rate > 0.0);
        let mut link = cfg.connect();
        assert!(link.down.fault_plan().is_some());
        assert!(link.up.fault_plan().is_some());
        // The two directions draw from different seeds.
        assert_ne!(
            link.down.fault_plan().unwrap().seed,
            link.up.fault_plan().unwrap().seed
        );
        // Enough traffic (~1000 congestion rounds) observes a loss.
        link.send_down(SimTime::ZERO, 100_000_000);
        assert!(link.down.fault_stats().segments_lost > 0);
    }

    #[test]
    fn hostile_wan_preset_combines_all_stream_faults() {
        let cfg = NetworkConfig::hostile_wan();
        let plan = cfg.fault.as_ref().expect("preset carries a plan");
        assert!(plan.loss_rate > 0.0);
        assert!(!plan.corruption.is_empty());
        assert!(!plan.reorder.is_empty());
        assert!(!plan.duplication.is_empty());
        let mut link = cfg.connect();
        // Mid-schedule, the reorder and duplication windows are live.
        assert!(link.down.fault_plan().unwrap().reorder_rate(SimTime(500_000)) > 0.0);
        assert!(
            link.down
                .fault_plan()
                .unwrap()
                .duplication_rate(SimTime(700_000))
                > 0.0
        );
        assert!(link.down.fault_window_active(SimTime(500_000)));
        // Disturbing traffic through the window reorders/duplicates.
        let mut reordered = 0;
        let mut duplicated = 0;
        for i in 0..400u32 {
            let _ = link.down.disturb(SimTime(650_000), vec![i as u8; 8]);
            let s = link.down.fault_stats();
            reordered = s.segments_reordered;
            duplicated = s.segments_duplicated;
        }
        let _ = link.down.flush_disturbed();
        assert!(reordered > 0, "reorder window never fired");
        assert!(duplicated > 0, "duplication window never fired");
    }

    #[test]
    fn with_faults_builder_applies_plan() {
        let plan = FaultPlan::seeded(5).with_outage(SimTime(1_000), SimDuration::from_millis(1));
        let link = NetworkConfig::lan_desktop().with_faults(plan).connect();
        assert!(link.down.is_down(SimTime(1_500)));
        assert!(link.up.is_down(SimTime(1_500)));
        assert!(!link.down.is_down(SimTime(2_500)));
    }

    #[test]
    fn relay_propagates_faults_from_either_leg() {
        let faulty = NetworkConfig::lan_desktop().with_faults(FaultPlan::seeded(3).with_loss(0.1));
        let clean = NetworkConfig::wan_desktop();
        assert!(clean.via_relay(&faulty).fault.is_some());
        assert!(faulty.via_relay(&clean).fault.is_some());
        assert!(clean.via_relay(&clean).fault.is_none());
    }
}
