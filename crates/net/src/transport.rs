//! Real byte transports for live (non-simulated) operation.
//!
//! The simulator ([`crate::tcp`]) drives the *experiments*; this
//! module lets the same protocol stack run over actual connections —
//! a TCP socket between real processes, or an in-memory channel
//! between threads — with the non-blocking write semantics THINC's
//! flush pipeline needs (§5: the server must detect that a write
//! would block and postpone the command).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Why a transport operation failed.
#[derive(Debug)]
pub enum TransportError {
    /// The peer closed the connection.
    Closed,
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "connection closed"),
            TransportError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// A non-blocking, stream-oriented byte transport.
pub trait Transport {
    /// Attempts to write `data`, returning how many bytes were
    /// accepted (possibly 0 when the transport would block).
    fn try_send(&mut self, data: &[u8]) -> Result<usize, TransportError>;

    /// Attempts to read into `buf`, returning how many bytes were
    /// received (0 when nothing is available yet).
    fn try_recv(&mut self, buf: &mut [u8]) -> Result<usize, TransportError>;

    /// Blocks until all of `data` is written (convenience for
    /// clients and tests; the server side should prefer `try_send`).
    fn send_all(&mut self, data: &[u8]) -> Result<(), TransportError> {
        let mut off = 0;
        while off < data.len() {
            match self.try_send(&data[off..])? {
                0 => std::thread::yield_now(),
                n => off += n,
            }
        }
        Ok(())
    }

    /// Blocks until `buf` is completely filled (the receive-side
    /// mirror of [`send_all`](Self::send_all)). A transport failure —
    /// including the peer closing mid-read — surfaces as the typed
    /// error, so callers observe and recover instead of aborting.
    fn recv_exact(&mut self, buf: &mut [u8]) -> Result<(), TransportError> {
        let mut off = 0;
        while off < buf.len() {
            match self.try_recv(&mut buf[off..])? {
                0 => std::thread::yield_now(),
                n => off += n,
            }
        }
        Ok(())
    }
}

/// A [`Transport`] over a real TCP socket (non-blocking mode).
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connects to a listening peer.
    pub fn connect(addr: SocketAddr) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Wraps an accepted stream.
    pub fn from_stream(stream: TcpStream) -> Result<Self, TransportError> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(Self { stream })
    }

    /// Binds a listener and returns it with its local address
    /// (`port 0` picks a free port).
    pub fn listen(addr: SocketAddr) -> Result<(TcpListener, SocketAddr), TransportError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok((listener, local))
    }

    /// Accepts one connection from `listener` (blocking).
    pub fn accept(listener: &TcpListener) -> Result<Self, TransportError> {
        let (stream, _) = listener.accept()?;
        Self::from_stream(stream)
    }
}

impl Transport for TcpTransport {
    fn try_send(&mut self, data: &[u8]) -> Result<usize, TransportError> {
        match self.stream.write(data) {
            Ok(0) => Err(TransportError::Closed),
            Ok(n) => Ok(n),
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(0),
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    fn try_recv(&mut self, buf: &mut [u8]) -> Result<usize, TransportError> {
        match self.stream.read(buf) {
            Ok(0) => Err(TransportError::Closed),
            Ok(n) => Ok(n),
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(0),
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e.into()),
        }
    }
}

/// An in-memory [`Transport`] pair backed by byte queues — for
/// single-process examples and deterministic tests. Each endpoint has
/// a bounded outgoing buffer, so `try_send` exhibits realistic
/// would-block behaviour.
pub struct ChannelTransport {
    tx: std::sync::mpsc::SyncSender<Vec<u8>>,
    rx: std::sync::mpsc::Receiver<Vec<u8>>,
    pending: Vec<u8>,
}

impl ChannelTransport {
    /// Creates a connected pair of endpoints with the given per-
    /// direction buffer depth (messages).
    pub fn pair(depth: usize) -> (ChannelTransport, ChannelTransport) {
        let (a_tx, b_rx) = std::sync::mpsc::sync_channel(depth.max(1));
        let (b_tx, a_rx) = std::sync::mpsc::sync_channel(depth.max(1));
        (
            ChannelTransport {
                tx: a_tx,
                rx: a_rx,
                pending: Vec::new(),
            },
            ChannelTransport {
                tx: b_tx,
                rx: b_rx,
                pending: Vec::new(),
            },
        )
    }
}

impl Transport for ChannelTransport {
    fn try_send(&mut self, data: &[u8]) -> Result<usize, TransportError> {
        use std::sync::mpsc::TrySendError;
        match self.tx.try_send(data.to_vec()) {
            Ok(()) => Ok(data.len()),
            Err(TrySendError::Full(_)) => Ok(0),
            Err(TrySendError::Disconnected(_)) => Err(TransportError::Closed),
        }
    }

    fn try_recv(&mut self, buf: &mut [u8]) -> Result<usize, TransportError> {
        use std::sync::mpsc::TryRecvError;
        if self.pending.is_empty() {
            match self.rx.try_recv() {
                Ok(chunk) => self.pending = chunk,
                Err(TryRecvError::Empty) => return Ok(0),
                Err(TryRecvError::Disconnected) => return Err(TransportError::Closed),
            }
        }
        let n = buf.len().min(self.pending.len());
        buf[..n].copy_from_slice(&self.pending[..n]);
        self.pending.drain(..n);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_round_trips() {
        let (mut a, mut b) = ChannelTransport::pair(8);
        a.send_all(b"hello thinc").unwrap();
        let mut buf = [0u8; 64];
        let mut got = Vec::new();
        while got.len() < 11 {
            let n = b.try_recv(&mut buf).unwrap();
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(&got, b"hello thinc");
    }

    #[test]
    fn channel_would_block_when_full() {
        let (mut a, _b) = ChannelTransport::pair(1);
        assert_eq!(a.try_send(b"x").unwrap(), 1);
        // Buffer full; non-blocking send accepts nothing.
        assert_eq!(a.try_send(b"y").unwrap(), 0);
    }

    #[test]
    fn channel_close_detected() {
        let (mut a, b) = ChannelTransport::pair(1);
        drop(b);
        assert!(matches!(a.try_send(b"x"), Err(TransportError::Closed)));
    }

    #[test]
    fn channel_partial_reads() {
        let (mut a, mut b) = ChannelTransport::pair(4);
        a.send_all(&[1, 2, 3, 4, 5]).unwrap();
        let mut buf = [0u8; 2];
        let mut got = Vec::new();
        while got.len() < 5 {
            let n = b.try_recv(&mut buf).unwrap();
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn recv_exact_surfaces_peer_close_as_typed_error() {
        let (a, mut b) = ChannelTransport::pair(1);
        drop(a);
        let mut buf = [0u8; 4];
        assert!(matches!(
            b.recv_exact(&mut buf),
            Err(TransportError::Closed)
        ));
    }

    #[test]
    fn tcp_loopback_round_trips() -> Result<(), TransportError> {
        // Every transport failure propagates as a typed
        // `TransportError` — no panicking on the receive path.
        let (listener, addr) = TcpTransport::listen("127.0.0.1:0".parse().unwrap())?;
        let server = std::thread::spawn(move || -> Result<(), TransportError> {
            let mut t = TcpTransport::accept(&listener)?;
            t.send_all(b"from server")
        });
        let mut client = TcpTransport::connect(addr)?;
        let mut got = [0u8; 11];
        client.recv_exact(&mut got)?;
        assert_eq!(&got, b"from server");
        server.join().expect("server thread completes")?;
        Ok(())
    }
}
