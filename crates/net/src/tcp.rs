//! A flow-level TCP model.
//!
//! The experiments in the paper are dominated by three transport
//! effects: serialization delay (bytes over a finite-bandwidth link),
//! propagation delay (RTT), and window limiting (throughput can never
//! exceed `window / RTT` — the effect that caps the Korea PlanetLab
//! site at its 256 KB receive window). This model reproduces all three
//! plus slow start, at *flow* granularity: a transfer is advanced one
//! congestion-window round at a time rather than per segment, which is
//! orders of magnitude faster to simulate and accurate to within a
//! round trip — far finer than the page-latency differences measured.
//!
//! The model is one-directional; see [`crate::link::DuplexLink`] for a
//! bidirectional connection.

use crate::fault::{FaultPlan, FaultState, FaultStats};
use crate::time::{SimDuration, SimTime};

/// Parameters of a one-directional TCP flow over a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpParams {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Round-trip time of the path.
    pub rtt: SimDuration,
    /// Receive window in bytes (the `rwnd` clamp; the paper tunes this
    /// to 1 MB in the WAN testbed and is stuck with 256 KB on
    /// PlanetLab).
    pub rwnd_bytes: u64,
    /// Maximum segment size in bytes.
    pub mss: u64,
    /// Initial congestion window in segments (RFC 2581-era default).
    pub initial_cwnd_segments: u64,
    /// Sender socket-buffer size in bytes; governs when a non-blocking
    /// sender would observe `EWOULDBLOCK`.
    pub sndbuf_bytes: u64,
}

impl Default for TcpParams {
    fn default() -> Self {
        Self {
            bandwidth_bps: 100_000_000,
            rtt: SimDuration::from_micros(200),
            rwnd_bytes: 64 * 1024,
            mss: 1448,
            initial_cwnd_segments: 4,
            sndbuf_bytes: 256 * 1024,
        }
    }
}

/// One direction of a TCP connection.
///
/// The pipe carries opaque byte counts; message boundaries and traces
/// are layered above. State (congestion window, transmit horizon)
/// persists across transfers, modeling a long-lived session — which
/// matters: by mid-benchmark the window is fully open.
#[derive(Debug, Clone)]
pub struct TcpPipe {
    params: TcpParams,
    /// Congestion window in bytes.
    cwnd: f64,
    /// Virtual time at which the sender's outgoing queue drains.
    tx_free: SimTime,
    /// Total payload bytes accepted for transmission.
    bytes_sent: u64,
    /// Injected faults, if any (see [`crate::fault`]).
    fault: Option<FaultState>,
}

impl TcpPipe {
    /// Creates a fresh pipe (slow start restarts).
    pub fn new(params: TcpParams) -> Self {
        let cwnd = (params.initial_cwnd_segments * params.mss) as f64;
        Self {
            params,
            cwnd,
            tx_free: SimTime::ZERO,
            bytes_sent: 0,
            fault: None,
        }
    }

    /// Creates a pipe executing `plan` (see [`crate::fault`]).
    pub fn with_faults(params: TcpParams, plan: FaultPlan) -> Self {
        let mut pipe = Self::new(params);
        pipe.set_fault_plan(plan);
        pipe
    }

    /// Installs (or replaces) the fault plan on this pipe. The plan's
    /// PRNG restarts from its seed; counters restart from zero.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(FaultState::new(plan));
    }

    /// Injected-fault counters so far (all zero when no plan is
    /// installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.as_ref().map(|f| f.stats()).unwrap_or_default()
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| f.plan())
    }

    /// Whether an outage window has the link down at `now`.
    pub fn is_down(&self, now: SimTime) -> bool {
        self.fault.as_ref().is_some_and(|f| f.is_down(now))
    }

    /// Whether any scheduled fault window is live at `now`: the link
    /// is down, serving at a collapsed rate, or corrupting bytes.
    /// Degradation controllers observe this to react *during* an
    /// episode instead of waiting for the damage counters to move.
    pub fn fault_window_active(&self, now: SimTime) -> bool {
        self.fault.as_ref().is_some_and(|f| {
            let plan = f.plan();
            plan.is_down(now)
                || plan.rate_factor(now) < 1.0
                || plan.corruption_rate(now) > 0.0
                || plan.reorder_rate(now) > 0.0
                || plan.duplication_rate(now) > 0.0
        })
    }

    /// Damages `data` in place per the corruption window active at
    /// `now`, returning the number of bytes hit (zero with no plan or
    /// outside every window). TCP itself never delivers corrupt
    /// payload; this models damage *around* the transport — broken
    /// middleboxes, proxies, drivers — and is applied by the harness
    /// to the encoded byte stream it carries.
    pub fn corrupt(&mut self, now: SimTime, data: &mut [u8]) -> usize {
        match self.fault.as_mut() {
            Some(f) => f.corrupt(now, data),
            None => 0,
        }
    }

    /// Applies every byte-stream disturbance active at `now`
    /// (corruption, reordering, duplication) to one outgoing segment,
    /// returning the segments to deliver in order. With no plan
    /// installed the segment passes through untouched. See
    /// [`FaultState::disturb`](crate::fault::FaultState::disturb).
    pub fn disturb(&mut self, now: SimTime, seg: Vec<u8>) -> Vec<Vec<u8>> {
        match self.fault.as_mut() {
            Some(f) => f.disturb(now, seg),
            None => vec![seg],
        }
    }

    /// Releases a segment held back by a reorder window, if any. Call
    /// at end of stream so reordering never silently drops bytes.
    pub fn flush_disturbed(&mut self) -> Option<Vec<u8>> {
        self.fault.as_mut().and_then(|f| f.flush_disturbed())
    }

    /// The flow parameters.
    pub fn params(&self) -> &TcpParams {
        &self.params
    }

    /// Total payload bytes accepted so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Current congestion window in bytes.
    pub fn cwnd_bytes(&self) -> u64 {
        self.cwnd as u64
    }

    /// Fraction of the link's serialization capacity consumed by this
    /// flow between the epoch and `now` (0–1). Zero before any time
    /// has passed. This is the downlink-utilization figure exported by
    /// session telemetry.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let serialization_s = self.bytes_sent as f64 * 8.0 / self.params.bandwidth_bps as f64;
        (serialization_s / elapsed).clamp(0.0, 1.0)
    }

    /// Steady-state throughput cap in bytes per second:
    /// `min(bandwidth, rwnd / RTT)`.
    pub fn throughput_cap_bps(&self) -> u64 {
        let bw = self.params.bandwidth_bps;
        let rtt_s = self.params.rtt.as_secs_f64().max(1e-9);
        let wnd_bps = (self.params.rwnd_bytes as f64 * 8.0 / rtt_s) as u64;
        bw.min(wnd_bps)
    }

    /// Link bandwidth in bytes per second.
    fn bw_bytes_per_sec(&self) -> f64 {
        self.params.bandwidth_bps as f64 / 8.0
    }

    /// Effective sending rate given the current window, bytes/second.
    fn rate(&self) -> f64 {
        let rtt_s = self.params.rtt.as_secs_f64().max(1e-9);
        let w = self.cwnd.min(self.params.rwnd_bytes as f64);
        self.bw_bytes_per_sec().min(w / rtt_s)
    }

    /// Sends `len` payload bytes at (no earlier than) `now`.
    ///
    /// Returns `(departure_complete, arrival_complete)`: the time the
    /// last byte leaves the sender and the time it reaches the
    /// receiver. A zero-length send models a bare signalling packet:
    /// it still takes half an RTT to arrive.
    pub fn send(&mut self, now: SimTime, len: u64) -> (SimTime, SimTime) {
        let mut start = now.max(self.tx_free);
        // An outage window defers the start of the transfer.
        if let Some(f) = self.fault.as_mut() {
            start = f.defer_past_outage(start);
        }
        let mut t = start;
        let mut remaining = len as f64;
        let rtt_s = self.params.rtt.as_secs_f64().max(1e-9);
        // Advance one congestion round at a time.
        while remaining > 0.0 {
            // An outage starting mid-transfer stalls the flow until
            // the link comes back.
            if let Some(f) = self.fault.as_mut() {
                t = f.defer_past_outage(t);
            }
            let mut rate = self.rate();
            // A bandwidth collapse serves this round at reduced rate.
            if let Some(f) = self.fault.as_mut() {
                rate *= f.rate_factor_at(t);
            }
            let rate = rate.max(1.0);
            // Bytes this round: one window's worth (or everything left).
            let per_round = rate * rtt_s;
            let chunk = remaining.min(per_round.max(1.0));
            let dt = chunk / rate;
            t += SimDuration::from_secs_f64(dt);
            remaining -= chunk;
            let lost = self.fault.as_mut().is_some_and(|f| f.draw_loss());
            if lost {
                // Flow-level loss response: the retransmission costs
                // one extra round trip and the congestion window
                // halves (multiplicative decrease, floor one MSS).
                t += self.params.rtt;
                self.cwnd = (self.cwnd / 2.0).max(self.params.mss as f64);
            } else {
                // Slow start: double per round, clamped by rwnd.
                self.cwnd = (self.cwnd * 2.0).min(self.params.rwnd_bytes as f64);
            }
        }
        self.tx_free = t;
        self.bytes_sent += len;
        let arrival = t + self.params.rtt.div(2);
        (t, arrival)
    }

    /// Bytes the sender could hand to the socket right now without
    /// blocking, given the socket-buffer size. Zero means a write
    /// would return `EWOULDBLOCK`.
    pub fn writable_bytes(&self, now: SimTime) -> u64 {
        if self.is_down(now) {
            return 0;
        }
        if self.tx_free <= now {
            return self.params.sndbuf_bytes;
        }
        let backlog_s = (self.tx_free - now).as_secs_f64();
        let backlog_bytes = (backlog_s * self.rate()) as u64;
        self.params.sndbuf_bytes.saturating_sub(backlog_bytes)
    }

    /// Whether a write of `len` bytes at `now` would block.
    pub fn would_block(&self, now: SimTime, len: u64) -> bool {
        self.writable_bytes(now) < len
    }

    /// Time at which the sender's queue is drained.
    pub fn tx_free_at(&self) -> SimTime {
        self.tx_free
    }

    /// Resets the flow (new connection: slow start restarts, queue
    /// drains instantly). Used between benchmark phases. The fault
    /// plan — a property of the *path*, not the connection — stays
    /// installed, PRNG state and counters included, so a reconnect
    /// over the same bad link keeps drawing from the same sequence.
    pub fn reset(&mut self) {
        self.cwnd = (self.params.initial_cwnd_segments * self.params.mss) as f64;
        self.tx_free = SimTime::ZERO;
        self.bytes_sent = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan() -> TcpParams {
        TcpParams {
            bandwidth_bps: 100_000_000,
            rtt: SimDuration::from_micros(200),
            rwnd_bytes: 1024 * 1024,
            ..TcpParams::default()
        }
    }

    fn wan() -> TcpParams {
        TcpParams {
            bandwidth_bps: 100_000_000,
            rtt: SimDuration::from_millis(66),
            rwnd_bytes: 1024 * 1024,
            ..TcpParams::default()
        }
    }

    #[test]
    fn zero_length_send_takes_half_rtt() {
        let mut p = TcpPipe::new(wan());
        let (_, arrival) = p.send(SimTime::ZERO, 0);
        assert_eq!(arrival.as_micros(), 33_000);
    }

    #[test]
    fn small_send_on_lan_is_fast() {
        let mut p = TcpPipe::new(lan());
        let (_, arrival) = p.send(SimTime::ZERO, 1000);
        // ~80us serialization + 100us propagation.
        assert!(arrival.as_micros() < 1_000, "{arrival}");
    }

    #[test]
    fn bulk_transfer_approaches_link_rate_on_lan() {
        let mut p = TcpPipe::new(lan());
        let bytes = 10_000_000u64; // 10 MB.
        let (_, arrival) = p.send(SimTime::ZERO, bytes);
        let secs = arrival.as_secs_f64();
        let ideal = bytes as f64 * 8.0 / 100e6;
        assert!(secs >= ideal, "faster than the link: {secs} < {ideal}");
        assert!(secs < ideal * 1.3, "too slow: {secs} vs {ideal}");
    }

    #[test]
    fn window_caps_wan_throughput() {
        // 256 KB window over 66 ms RTT caps at ~31.8 Mbps even though
        // the link is 100 Mbps — the Korea PlanetLab effect.
        let params = TcpParams {
            rwnd_bytes: 256 * 1024,
            ..wan()
        };
        let mut p = TcpPipe::new(params);
        assert!(p.throughput_cap_bps() < 35_000_000);
        let bytes = 20_000_000u64;
        let (_, arrival) = p.send(SimTime::ZERO, bytes);
        let achieved_bps = bytes as f64 * 8.0 / arrival.as_secs_f64();
        assert!(achieved_bps < 35e6, "{achieved_bps}");
        // A 1 MB window lifts the cap.
        let mut p2 = TcpPipe::new(wan());
        let (_, a2) = p2.send(SimTime::ZERO, bytes);
        assert!(a2 < arrival);
    }

    #[test]
    fn slow_start_penalizes_short_wan_transfers() {
        let mut p = TcpPipe::new(wan());
        // 100 KB with initial window 4*1448: needs several RTT rounds.
        let (_, arrival) = p.send(SimTime::ZERO, 100_000);
        assert!(
            arrival.as_micros() > 3 * 66_000,
            "expected multiple rounds, got {arrival}"
        );
        // A second transfer on the warm connection is much faster.
        let start = arrival;
        let (_, second) = p.send(start, 100_000);
        assert!((second - start).as_micros() < 2 * (arrival - SimTime::ZERO).as_micros() / 3);
    }

    #[test]
    fn back_to_back_sends_queue_fifo() {
        let mut p = TcpPipe::new(lan());
        let (_, a1) = p.send(SimTime::ZERO, 500_000);
        let (_, a2) = p.send(SimTime::ZERO, 500_000);
        assert!(a2 > a1);
    }

    #[test]
    fn would_block_when_backlogged() {
        let params = TcpParams {
            sndbuf_bytes: 64 * 1024,
            ..wan()
        };
        let mut p = TcpPipe::new(params);
        assert!(!p.would_block(SimTime::ZERO, 1024));
        // Queue several MB: the socket buffer fills.
        p.send(SimTime::ZERO, 8_000_000);
        assert!(p.would_block(SimTime::ZERO, 64 * 1024));
        // After the queue drains it becomes writable again.
        let later = p.tx_free_at();
        assert!(!p.would_block(later, 1024));
    }

    #[test]
    fn reset_restores_slow_start() {
        let mut p = TcpPipe::new(wan());
        p.send(SimTime::ZERO, 5_000_000);
        let warm = p.cwnd_bytes();
        p.reset();
        assert!(p.cwnd_bytes() < warm);
        assert_eq!(p.bytes_sent(), 0);
    }

    #[test]
    fn utilization_tracks_offered_load() {
        let mut p = TcpPipe::new(lan());
        assert_eq!(p.utilization(SimTime::ZERO), 0.0);
        // 1.25 MB at 100 Mbps serializes in exactly 0.1 s.
        p.send(SimTime::ZERO, 1_250_000);
        let half_loaded = p.utilization(SimTime(200_000));
        assert!((half_loaded - 0.5).abs() < 1e-9, "{half_loaded}");
        // Never reports beyond 1 even right at the busy horizon.
        assert!(p.utilization(SimTime(1)) <= 1.0);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut p = TcpPipe::new(wan());
            let mut t = SimTime::ZERO;
            let mut out = Vec::new();
            for i in 0..50 {
                let (_, a) = p.send(t, 10_000 + i * 13);
                out.push(a.as_micros());
                t = a;
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn loss_slows_transfer_and_counts() {
        let clean = {
            let mut p = TcpPipe::new(wan());
            p.send(SimTime::ZERO, 5_000_000).1
        };
        let mut p = TcpPipe::with_faults(wan(), FaultPlan::seeded(42).with_loss(0.05));
        let lossy = p.send(SimTime::ZERO, 5_000_000).1;
        assert!(lossy > clean, "loss must cost time: {lossy} vs {clean}");
        let stats = p.fault_stats();
        assert!(stats.segments_lost > 0);
        assert_eq!(stats.segments_lost, stats.retransmits);
    }

    #[test]
    fn outage_defers_send_and_blocks_writes() {
        let plan =
            FaultPlan::seeded(1).with_outage(SimTime(1_000_000), SimDuration::from_millis(500));
        let mut p = TcpPipe::with_faults(lan(), plan);
        // Writes inside the window observe EWOULDBLOCK.
        assert_eq!(p.writable_bytes(SimTime(1_200_000)), 0);
        assert!(p.would_block(SimTime(1_200_000), 1));
        // A send issued mid-outage starts only once the link is back.
        let (departure, _) = p.send(SimTime(1_200_000), 1000);
        assert!(departure >= SimTime(1_500_000), "{departure}");
        assert_eq!(p.fault_stats().outage_defers, 1);
    }

    #[test]
    fn collapse_window_reduces_rate() {
        let plan = FaultPlan::seeded(2).with_collapse(
            SimTime::ZERO,
            SimDuration::from_secs_f64(60.0),
            0.1,
        );
        let clean = {
            let mut p = TcpPipe::new(lan());
            p.send(SimTime::ZERO, 2_000_000).1
        };
        let mut p = TcpPipe::with_faults(lan(), plan);
        let collapsed = p.send(SimTime::ZERO, 2_000_000).1;
        assert!(
            collapsed.as_micros() > 5 * clean.as_micros(),
            "{collapsed} vs {clean}"
        );
        assert!(p.fault_stats().collapsed_rounds > 0);
    }

    #[test]
    fn faulty_pipe_is_deterministic() {
        let run = || {
            let plan = FaultPlan::seeded(7)
                .with_loss(0.03)
                .with_outage(SimTime(500_000), SimDuration::from_millis(100))
                .with_corruption(SimTime::ZERO, SimDuration::from_secs_f64(10.0), 0.01);
            let mut p = TcpPipe::with_faults(wan(), plan);
            let mut t = SimTime::ZERO;
            let mut out = Vec::new();
            for i in 0..30 {
                let (_, a) = p.send(t, 20_000 + i * 17);
                let mut payload = vec![0u8; 64];
                p.corrupt(t, &mut payload);
                out.push((a.as_micros(), payload));
                t = a;
            }
            (out, p.fault_stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn no_plan_means_no_behavior_change() {
        let mut clean = TcpPipe::new(wan());
        let mut noop = TcpPipe::with_faults(wan(), FaultPlan::seeded(9));
        for i in 0..20 {
            let a = clean.send(SimTime::ZERO, 10_000 + i * 7);
            let b = noop.send(SimTime::ZERO, 10_000 + i * 7);
            assert_eq!(a, b);
        }
        assert_eq!(noop.fault_stats(), FaultStats::default());
    }
}
