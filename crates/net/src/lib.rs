#![warn(missing_docs)]
//! Network substrate for the THINC experiments.
//!
//! The paper evaluates thin clients on a physical testbed (switched
//! FastEthernet + a NISTNet network emulator) and on PlanetLab nodes
//! around the world. This crate replaces that hardware with a
//! deterministic virtual-time simulation:
//!
//! - [`time`]: virtual clock types ([`SimTime`], [`SimDuration`]),
//! - [`tcp`]: a flow-level TCP model (slow start, congestion window,
//!   receive-window clamp, serialization delay, propagation delay) —
//!   the effects that drive the paper's WAN results, including the
//!   Korea site's 256 KB-window throughput cap,
//! - [`fault`]: deterministic fault injection — seeded segment loss,
//!   byte-corruption windows, scheduled outages, and bandwidth
//!   collapses, declared per link as a [`FaultPlan`],
//! - [`link`]: duplex links, network configurations for the paper's
//!   three environments (LAN Desktop, WAN Desktop, 802.11g PDA) and
//!   relay routing (the GoToMyPC intermediate-server topology),
//! - [`trace`]: packet traces and slow-motion-benchmarking
//!   measurement (the reproduction's "Ethereal packet monitor"),
//! - [`events`]: a small priority event queue for imperative
//!   virtual-time simulations,
//! - [`transport`]: *real* byte transports (TCP sockets, in-memory
//!   channels) with non-blocking semantics, so the same protocol
//!   stack also runs live between threads or processes.
//!
//! Everything is deterministic: the same workload over the same
//! configuration produces byte- and microsecond-identical results.

pub mod events;
pub mod fault;
pub mod link;
pub mod tcp;
pub mod time;
pub mod trace;
pub mod transport;

pub use events::EventQueue;
pub use fault::{FaultPlan, FaultState, FaultStats};
pub use link::{DuplexLink, NetworkConfig};
pub use tcp::{TcpParams, TcpPipe};
pub use time::{SimDuration, SimTime};
pub use trace::{Direction, PacketTrace};
