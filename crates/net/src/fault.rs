//! Deterministic fault injection for the simulated network.
//!
//! The paper's resilience story — a stateless client, all display
//! state on the server, sessions that survive bad networks and device
//! switches (§1–§3) — is only believable if bad networks can actually
//! be produced. This module injects them *deterministically*: a
//! [`FaultPlan`] describes what goes wrong on a link (seeded segment
//! loss, byte corruption windows, scheduled outages, bandwidth
//! collapses) and a [`FaultState`] executes the plan from a seeded
//! PRNG, so the same seed over the same workload produces
//! byte-identical degradation every run.
//!
//! The transport effects (loss → retransmit + congestion response,
//! outage → stalled sends, collapse → reduced rate) hook into
//! [`TcpPipe`](crate::tcp::TcpPipe) at flow granularity, matching the
//! rest of the TCP model. Corruption is different: TCP never delivers
//! corrupted payload, but real deployments sit behind broken
//! middleboxes, damaged proxies and buggy drivers, so the plan also
//! supports corruption windows that damage the *byte stream itself*
//! (applied by the harness via [`TcpPipe::corrupt`]
//! (crate::tcp::TcpPipe::corrupt)) — this is what exercises the
//! protocol decoder's skip-and-resync path.

use crate::time::{SimDuration, SimTime};

/// A half-open virtual-time window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
}

impl FaultWindow {
    /// A window covering `[start, start + len)`.
    pub fn new(start: SimTime, len: SimDuration) -> Self {
        Self {
            start,
            end: start + len,
        }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

/// A bandwidth-collapse episode: during the window the link serves
/// only `factor` (0–1) of its configured rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollapseWindow {
    /// When the collapse applies.
    pub window: FaultWindow,
    /// Remaining fraction of link rate (0 < factor ≤ 1).
    pub factor: f64,
}

/// A corruption episode: during the window each payload byte is
/// damaged with probability `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionWindow {
    /// When the corruption applies.
    pub window: FaultWindow,
    /// Per-byte damage probability (0–1).
    pub rate: f64,
}

/// A reordering episode: during the window each delivered segment is
/// held back (swapped with the next one) with probability `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderWindow {
    /// When the reordering applies.
    pub window: FaultWindow,
    /// Per-segment hold-back probability (0–1).
    pub rate: f64,
}

/// A duplication episode: during the window each delivered segment is
/// delivered twice with probability `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DuplicateWindow {
    /// When the duplication applies.
    pub window: FaultWindow,
    /// Per-segment duplication probability (0–1).
    pub rate: f64,
}

/// Everything that goes wrong on one link, declaratively.
///
/// Build with the `with_*` combinators; attach to a pipe with
/// [`TcpPipe::set_fault_plan`](crate::tcp::TcpPipe::set_fault_plan)
/// or to a whole environment with
/// [`NetworkConfig::with_faults`](crate::link::NetworkConfig::with_faults).
///
/// ```
/// use thinc_net::fault::FaultPlan;
/// use thinc_net::time::{SimDuration, SimTime};
///
/// let plan = FaultPlan::seeded(42)
///     .with_loss(0.02)
///     .with_outage(SimTime(2_000_000), SimDuration::from_millis(500))
///     .with_collapse(SimTime(4_000_000), SimDuration::from_millis(300), 0.1)
///     .with_corruption(SimTime::ZERO, SimDuration::from_millis(1_000), 0.001);
/// assert!(plan.is_down(SimTime(2_100_000)));
/// assert!(!plan.is_down(SimTime(2_600_000)));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// PRNG seed; the same seed reproduces the same fault sequence.
    pub seed: u64,
    /// Per-segment (congestion-round) loss probability (0–1).
    pub loss_rate: f64,
    /// Scheduled link-down windows.
    pub outages: Vec<FaultWindow>,
    /// Scheduled bandwidth collapses.
    pub collapses: Vec<CollapseWindow>,
    /// Scheduled byte-corruption windows.
    pub corruption: Vec<CorruptionWindow>,
    /// Scheduled segment-reordering windows.
    pub reorder: Vec<ReorderWindow>,
    /// Scheduled segment-duplication windows.
    pub duplication: Vec<DuplicateWindow>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Sets the per-segment loss probability.
    pub fn with_loss(mut self, rate: f64) -> Self {
        self.loss_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Adds a link outage of `len` starting at `start`.
    pub fn with_outage(mut self, start: SimTime, len: SimDuration) -> Self {
        self.outages.push(FaultWindow::new(start, len));
        self
    }

    /// Adds a bandwidth collapse to `factor` of link rate.
    pub fn with_collapse(mut self, start: SimTime, len: SimDuration, factor: f64) -> Self {
        self.collapses.push(CollapseWindow {
            window: FaultWindow::new(start, len),
            factor: factor.clamp(1e-6, 1.0),
        });
        self
    }

    /// Adds a byte-corruption window at per-byte probability `rate`.
    pub fn with_corruption(mut self, start: SimTime, len: SimDuration, rate: f64) -> Self {
        self.corruption.push(CorruptionWindow {
            window: FaultWindow::new(start, len),
            rate: rate.clamp(0.0, 1.0),
        });
        self
    }

    /// Adds a segment-reordering window at per-segment probability
    /// `rate`.
    pub fn with_reorder(mut self, start: SimTime, len: SimDuration, rate: f64) -> Self {
        self.reorder.push(ReorderWindow {
            window: FaultWindow::new(start, len),
            rate: rate.clamp(0.0, 1.0),
        });
        self
    }

    /// Adds a segment-duplication window at per-segment probability
    /// `rate`.
    pub fn with_duplication(mut self, start: SimTime, len: SimDuration, rate: f64) -> Self {
        self.duplication.push(DuplicateWindow {
            window: FaultWindow::new(start, len),
            rate: rate.clamp(0.0, 1.0),
        });
        self
    }

    /// Derives a plan with a different seed (for the reverse direction
    /// of a duplex link, so the two flows draw independent faults).
    pub fn reseeded(&self, seed: u64) -> Self {
        Self {
            seed,
            ..self.clone()
        }
    }

    /// Whether the link is down at `t`.
    pub fn is_down(&self, t: SimTime) -> bool {
        self.outages.iter().any(|w| w.contains(t))
    }

    /// The earliest time at or after `t` when the link is up. Outage
    /// windows may abut or overlap; chains are followed.
    pub fn next_up(&self, mut t: SimTime) -> SimTime {
        // At most outages.len() hops: each hop exits one window.
        for _ in 0..=self.outages.len() {
            match self.outages.iter().find(|w| w.contains(t)) {
                Some(w) => t = w.end,
                None => return t,
            }
        }
        t
    }

    /// The fraction of link rate available at `t` (1.0 when no
    /// collapse is active; overlapping collapses multiply).
    pub fn rate_factor(&self, t: SimTime) -> f64 {
        self.collapses
            .iter()
            .filter(|c| c.window.contains(t))
            .map(|c| c.factor)
            .product()
    }

    /// The per-byte corruption probability at `t` (0.0 outside every
    /// corruption window).
    pub fn corruption_rate(&self, t: SimTime) -> f64 {
        self.corruption
            .iter()
            .filter(|c| c.window.contains(t))
            .map(|c| c.rate)
            .fold(0.0, f64::max)
    }

    /// The per-segment reorder probability at `t` (0.0 outside every
    /// reorder window).
    pub fn reorder_rate(&self, t: SimTime) -> f64 {
        self.reorder
            .iter()
            .filter(|r| r.window.contains(t))
            .map(|r| r.rate)
            .fold(0.0, f64::max)
    }

    /// The per-segment duplication probability at `t` (0.0 outside
    /// every duplication window).
    pub fn duplication_rate(&self, t: SimTime) -> f64 {
        self.duplication
            .iter()
            .filter(|d| d.window.contains(t))
            .map(|d| d.rate)
            .fold(0.0, f64::max)
    }

    /// Whether the plan injects anything at all.
    pub fn is_noop(&self) -> bool {
        self.loss_rate == 0.0
            && self.outages.is_empty()
            && self.collapses.is_empty()
            && self.corruption.is_empty()
            && self.reorder.is_empty()
            && self.duplication.is_empty()
    }
}

/// Injected-fault counters for one link direction (plain values;
/// harnesses fold them into `thinc-telemetry`'s resilience group —
/// this crate stays dependency-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Segments lost to injected loss.
    pub segments_lost: u64,
    /// Retransmission rounds performed.
    pub retransmits: u64,
    /// Corruption events (calls that damaged at least one byte).
    pub corrupt_events: u64,
    /// Total bytes damaged.
    pub corrupted_bytes: u64,
    /// Sends deferred or stalled by outage windows.
    pub outage_defers: u64,
    /// Congestion rounds served at collapsed rate.
    pub collapsed_rounds: u64,
    /// Segments delivered out of order.
    pub segments_reordered: u64,
    /// Segments delivered more than once.
    pub segments_duplicated: u64,
}

/// A [`FaultPlan`] in execution: the seeded PRNG plus counters.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultState {
    plan: FaultPlan,
    rng: SplitMix64,
    stats: FaultStats,
    /// Segment held back by an active reorder window, delivered after
    /// the next segment (or by [`flush_disturbed`](Self::flush_disturbed)).
    held: Option<Vec<u8>>,
}

impl FaultState {
    /// Starts executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed);
        Self {
            plan,
            rng,
            stats: FaultStats::default(),
            held: None,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether the link is down at `t`.
    pub fn is_down(&self, t: SimTime) -> bool {
        self.plan.is_down(t)
    }

    /// Earliest up-time at or after `t`; counts a defer when `t` is
    /// inside an outage.
    pub fn defer_past_outage(&mut self, t: SimTime) -> SimTime {
        if self.plan.is_down(t) {
            self.stats.outage_defers += 1;
            self.plan.next_up(t)
        } else {
            t
        }
    }

    /// Rate factor at `t`; counts a collapsed round when below 1.
    pub fn rate_factor_at(&mut self, t: SimTime) -> f64 {
        let f = self.plan.rate_factor(t);
        if f < 1.0 {
            self.stats.collapsed_rounds += 1;
        }
        f
    }

    /// Draws whether the next segment round suffers a loss; counts
    /// loss + retransmit when it does.
    pub fn draw_loss(&mut self) -> bool {
        if self.plan.loss_rate <= 0.0 {
            return false;
        }
        let lost = self.rng.next_f64() < self.plan.loss_rate;
        if lost {
            self.stats.segments_lost += 1;
            self.stats.retransmits += 1;
        }
        lost
    }

    /// Damages `data` in place per the corruption rate active at `t`
    /// (XORing a random nonzero byte — a bit-flip pattern), returning
    /// the number of bytes damaged. Deterministic for a given seed and
    /// call sequence.
    pub fn corrupt(&mut self, t: SimTime, data: &mut [u8]) -> usize {
        let rate = self.plan.corruption_rate(t);
        if rate <= 0.0 || data.is_empty() {
            return 0;
        }
        let mut damaged = 0;
        for b in data.iter_mut() {
            if self.rng.next_f64() < rate {
                let mut flip = (self.rng.next_u64() & 0xFF) as u8;
                if flip == 0 {
                    flip = 0x80;
                }
                *b ^= flip;
                damaged += 1;
            }
        }
        if damaged > 0 {
            self.stats.corrupt_events += 1;
            self.stats.corrupted_bytes += damaged as u64;
        }
        damaged
    }

    /// Applies every byte-stream disturbance active at `t` to one
    /// outgoing segment and returns the segments to deliver, in order.
    ///
    /// Corruption happens first (in place), then reordering — a
    /// segment may be held back and released after its successor —
    /// then duplication appends a second copy of the segment. A held
    /// segment is released by the next `disturb` call or by
    /// [`flush_disturbed`](Self::flush_disturbed) at end of stream.
    /// Plans without reorder/duplication windows draw no extra PRNG
    /// values, so existing corruption-only seeds reproduce the exact
    /// byte streams they always did.
    pub fn disturb(&mut self, t: SimTime, mut seg: Vec<u8>) -> Vec<Vec<u8>> {
        self.corrupt(t, &mut seg);
        let reorder = self.plan.reorder_rate(t);
        if reorder > 0.0
            && self.held.is_none()
            && !seg.is_empty()
            && self.rng.next_f64() < reorder
        {
            self.stats.segments_reordered += 1;
            self.held = Some(seg);
            return Vec::new();
        }
        let mut out = Vec::with_capacity(3);
        out.push(seg);
        if let Some(held) = self.held.take() {
            out.push(held);
        }
        let dup = self.plan.duplication_rate(t);
        if dup > 0.0 && self.rng.next_f64() < dup {
            self.stats.segments_duplicated += 1;
            out.push(out[0].clone());
        }
        out
    }

    /// Releases a segment still held back by a reorder window, if any.
    /// Call when the stream ends so no bytes are silently dropped.
    pub fn flush_disturbed(&mut self) -> Option<Vec<u8>> {
        self.held.take()
    }
}

/// SplitMix64: a tiny, high-quality, dependency-free PRNG. Chosen
/// because its state is one `u64` (cheap to clone with the pipe) and
/// its output is fully determined by the seed — the property the
/// resilience tests rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniform_ish() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mean: f64 = (0..10_000).map(|_| a.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }

    #[test]
    fn outage_windows_chain() {
        let plan = FaultPlan::seeded(1)
            .with_outage(SimTime(1_000), SimDuration(500))
            .with_outage(SimTime(1_500), SimDuration(500));
        assert!(plan.is_down(SimTime(1_000)));
        assert!(plan.is_down(SimTime(1_999)));
        assert!(!plan.is_down(SimTime(2_000)));
        assert_eq!(plan.next_up(SimTime(1_200)), SimTime(2_000));
        assert_eq!(plan.next_up(SimTime(500)), SimTime(500));
    }

    #[test]
    fn collapse_factors_multiply() {
        let plan = FaultPlan::seeded(1)
            .with_collapse(SimTime(0), SimDuration(1_000), 0.5)
            .with_collapse(SimTime(500), SimDuration(1_000), 0.5);
        assert_eq!(plan.rate_factor(SimTime(100)), 0.5);
        assert_eq!(plan.rate_factor(SimTime(700)), 0.25);
        assert_eq!(plan.rate_factor(SimTime(2_000)), 1.0);
    }

    #[test]
    fn corruption_only_inside_window() {
        let plan =
            FaultPlan::seeded(3).with_corruption(SimTime(1_000), SimDuration(1_000), 1.0);
        let mut state = FaultState::new(plan);
        let mut clean = vec![0u8; 64];
        assert_eq!(state.corrupt(SimTime(0), &mut clean), 0);
        assert_eq!(clean, vec![0u8; 64]);
        let mut dirty = vec![0u8; 64];
        assert_eq!(state.corrupt(SimTime(1_500), &mut dirty), 64);
        assert_ne!(dirty, vec![0u8; 64]);
        assert_eq!(state.stats().corrupted_bytes, 64);
        assert_eq!(state.stats().corrupt_events, 1);
    }

    #[test]
    fn corruption_is_seed_deterministic() {
        let plan = FaultPlan::seeded(9).with_corruption(SimTime(0), SimDuration(1_000), 0.3);
        let run = || {
            let mut s = FaultState::new(plan.clone());
            let mut data = vec![0xAAu8; 256];
            s.corrupt(SimTime(10), &mut data);
            data
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn loss_draws_match_rate_roughly() {
        let mut s = FaultState::new(FaultPlan::seeded(11).with_loss(0.1));
        let lost = (0..10_000).filter(|_| s.draw_loss()).count();
        assert!((800..1200).contains(&lost), "{lost}");
        assert_eq!(s.stats().segments_lost as usize, lost);
    }

    #[test]
    fn noop_plan_detected() {
        assert!(FaultPlan::seeded(5).is_noop());
        assert!(!FaultPlan::seeded(5).with_loss(0.01).is_noop());
        assert!(!FaultPlan::seeded(5)
            .with_reorder(SimTime(0), SimDuration(1), 0.5)
            .is_noop());
        assert!(!FaultPlan::seeded(5)
            .with_duplication(SimTime(0), SimDuration(1), 0.5)
            .is_noop());
    }

    #[test]
    fn disturb_preserves_bytes_and_multiset() {
        // Reorder + duplication never lose or damage payload when no
        // corruption window is active: every input segment comes out
        // at least once, duplicates are exact copies.
        let plan = FaultPlan::seeded(21)
            .with_reorder(SimTime(0), SimDuration(1_000_000), 0.4)
            .with_duplication(SimTime(0), SimDuration(1_000_000), 0.3);
        let mut s = FaultState::new(plan);
        let inputs: Vec<Vec<u8>> = (0..200u8).map(|i| vec![i; 3]).collect();
        let mut delivered = Vec::new();
        for seg in &inputs {
            delivered.extend(s.disturb(SimTime(10), seg.clone()));
        }
        if let Some(tail) = s.flush_disturbed() {
            delivered.push(tail);
        }
        let stats = s.stats();
        assert!(stats.segments_reordered > 0, "{stats:?}");
        assert!(stats.segments_duplicated > 0, "{stats:?}");
        assert_eq!(
            delivered.len(),
            inputs.len() + stats.segments_duplicated as usize
        );
        // Every input appears; dedup restores the original multiset.
        let mut seen = delivered.clone();
        seen.sort();
        seen.dedup();
        let mut want = inputs.clone();
        want.sort();
        want.dedup();
        assert_eq!(seen, want);
    }

    #[test]
    fn disturb_without_windows_is_transparent_and_drawless() {
        let plan = FaultPlan::seeded(33).with_loss(0.5);
        let mut s = FaultState::new(plan.clone());
        let mut reference = FaultState::new(plan);
        let out = s.disturb(SimTime(5), vec![1, 2, 3]);
        assert_eq!(out, vec![vec![1, 2, 3]]);
        assert_eq!(s.flush_disturbed(), None);
        // No PRNG draws happened: the loss sequence is unchanged.
        let a: Vec<bool> = (0..64).map(|_| s.draw_loss()).collect();
        let b: Vec<bool> = (0..64).map(|_| reference.draw_loss()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn disturb_is_seed_deterministic() {
        let plan = FaultPlan::seeded(77)
            .with_reorder(SimTime(0), SimDuration(1_000), 0.5)
            .with_duplication(SimTime(0), SimDuration(1_000), 0.5);
        let run = || {
            let mut s = FaultState::new(plan.clone());
            let mut out = Vec::new();
            for i in 0..50u8 {
                out.extend(s.disturb(SimTime(1), vec![i]));
            }
            out.extend(s.flush_disturbed());
            (out, s.stats())
        };
        assert_eq!(run(), run());
    }
}
