//! Virtual time for the network simulation.
//!
//! All timing in the reproduction is virtual: a [`SimTime`] is an
//! absolute instant in microseconds since simulation start, and a
//! [`SimDuration`] is a span. Microsecond resolution comfortably
//! resolves both the 0.2 ms LAN RTT and multi-second page latencies.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// A duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// A duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// A duration of `s` seconds (fractional).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e6).round().max(0.0) as u64)
    }

    /// Microseconds in the span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in the span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds in the span, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the span by an integer factor.
    pub const fn mul(self, k: u64) -> Self {
        SimDuration(self.0 * k)
    }

    /// Divides the span by an integer factor.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub const fn div(self, k: u64) -> Self {
        SimDuration(self.0 / k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(66);
        assert_eq!(t.as_micros(), 66_000);
        let t2 = t + SimDuration::from_secs(1);
        assert_eq!((t2 - t).as_millis(), 1_000);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.0347).as_micros(), 34_700);
        assert_eq!(SimDuration::from_secs(34).as_secs_f64(), 34.0);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(5) < SimTime(6));
        assert!(SimDuration::from_millis(1) > SimDuration::from_micros(999));
    }

    #[test]
    fn mul_div() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul(3).as_millis(), 30);
        assert_eq!(d.div(2).as_millis(), 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn saturating_subtraction_of_durations() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a - b, SimDuration::ZERO);
    }
}
