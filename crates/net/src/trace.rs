//! Packet traces and slow-motion benchmarking measurement.
//!
//! The paper measures closed systems noninvasively by capturing
//! network traffic (Ethereal) and applying slow-motion benchmarking:
//! page latency is the time from the first packet of mouse input to
//! the last packet of page data; A/V quality is derived from playback
//! duration and delivered data. [`PacketTrace`] is this reproduction's
//! packet monitor: protocols record every logical packet, and the
//! measurement helpers compute the paper's metrics from the record.

use crate::time::{SimDuration, SimTime};

/// Which way a packet traveled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → server (input, update requests).
    Up,
    /// Server → client (display updates, audio/video).
    Down,
}

/// One captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketRecord {
    /// When the packet was sent.
    pub sent: SimTime,
    /// When the last byte arrived.
    pub arrived: SimTime,
    /// Payload size in bytes.
    pub size: u64,
    /// Direction of travel.
    pub dir: Direction,
    /// Free-form tag ("input", "update", "video", …) used to
    /// disambiguate phases, as the paper does with inter-page delays.
    pub tag: &'static str,
}

/// A capture of all packets in one experiment run.
#[derive(Debug, Clone, Default)]
pub struct PacketTrace {
    records: Vec<PacketRecord>,
}

impl PacketTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one packet.
    pub fn record(&mut self, sent: SimTime, arrived: SimTime, size: u64, dir: Direction, tag: &'static str) {
        self.records.push(PacketRecord {
            sent,
            arrived,
            size,
            dir,
            tag,
        });
    }

    /// All records, in capture order.
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Total bytes in a given direction (any tag).
    pub fn bytes(&self, dir: Direction) -> u64 {
        self.records
            .iter()
            .filter(|r| r.dir == dir)
            .map(|r| r.size)
            .sum()
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.size).sum()
    }

    /// Slow-motion page latency: time from the first `Up` packet at or
    /// after `window_start` to the last `Down` packet arrival in the
    /// window ending at `window_end` (exclusive). Returns `None` if
    /// either side is missing.
    pub fn page_latency(&self, window_start: SimTime, window_end: SimTime) -> Option<SimDuration> {
        let first_input = self
            .records
            .iter()
            .filter(|r| r.dir == Direction::Up && r.sent >= window_start && r.sent < window_end)
            .map(|r| r.sent)
            .min()?;
        let last_update = self
            .records
            .iter()
            .filter(|r| {
                r.dir == Direction::Down && r.arrived >= first_input && r.arrived < window_end
            })
            .map(|r| r.arrived)
            .max()?;
        Some(last_update - first_input)
    }

    /// Bytes transferred down within a time window.
    pub fn bytes_down_in(&self, window_start: SimTime, window_end: SimTime) -> u64 {
        self.records
            .iter()
            .filter(|r| {
                r.dir == Direction::Down && r.arrived >= window_start && r.arrived < window_end
            })
            .map(|r| r.size)
            .sum()
    }

    /// Arrival time of the last packet in the trace.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.records.iter().map(|r| r.arrived).max()
    }

    /// Clears the capture.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

/// Slow-motion A/V quality (Nieh et al. 2003): the fraction of A/V
/// data delivered in time, scaled by the slowdown of the playback.
///
/// `ideal_duration` is the clip length at real-time speed,
/// `actual_duration` is how long playback took, `delivered_fraction`
/// is the fraction of A/V data that reached the client (0.0–1.0).
/// 100% quality requires all data delivered at real-time speed.
pub fn av_quality(
    ideal_duration: SimDuration,
    actual_duration: SimDuration,
    delivered_fraction: f64,
) -> f64 {
    if actual_duration == SimDuration::ZERO {
        return 0.0;
    }
    let slowdown = ideal_duration.as_secs_f64() / actual_duration.as_secs_f64().max(1e-9);
    (delivered_fraction * slowdown.min(1.0)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1000)
    }

    #[test]
    fn byte_accounting() {
        let mut tr = PacketTrace::new();
        tr.record(t(0), t(1), 100, Direction::Up, "input");
        tr.record(t(1), t(2), 5000, Direction::Down, "update");
        tr.record(t(2), t(3), 7000, Direction::Down, "update");
        assert_eq!(tr.bytes(Direction::Up), 100);
        assert_eq!(tr.bytes(Direction::Down), 12000);
        assert_eq!(tr.total_bytes(), 12100);
    }

    #[test]
    fn page_latency_first_input_to_last_update() {
        let mut tr = PacketTrace::new();
        tr.record(t(10), t(11), 50, Direction::Up, "input");
        tr.record(t(12), t(20), 1000, Direction::Down, "update");
        tr.record(t(22), t(95), 9000, Direction::Down, "update");
        let lat = tr.page_latency(t(0), t(1000)).unwrap();
        assert_eq!(lat.as_millis(), 85); // 95 - 10.
    }

    #[test]
    fn page_latency_windows_disambiguate_pages() {
        let mut tr = PacketTrace::new();
        // Page 1.
        tr.record(t(0), t(1), 50, Direction::Up, "input");
        tr.record(t(1), t(40), 1000, Direction::Down, "update");
        // Page 2 starts at 500ms.
        tr.record(t(500), t(501), 50, Direction::Up, "input");
        tr.record(t(501), t(620), 1000, Direction::Down, "update");
        assert_eq!(tr.page_latency(t(0), t(500)).unwrap().as_millis(), 40);
        assert_eq!(tr.page_latency(t(500), t(1000)).unwrap().as_millis(), 120);
    }

    #[test]
    fn page_latency_missing_sides() {
        let mut tr = PacketTrace::new();
        assert!(tr.page_latency(t(0), t(100)).is_none());
        tr.record(t(1), t(2), 50, Direction::Up, "input");
        assert!(tr.page_latency(t(0), t(100)).is_none());
    }

    #[test]
    fn av_quality_perfect() {
        let q = av_quality(SimDuration::from_secs(34), SimDuration::from_secs(34), 1.0);
        assert!((q - 1.0).abs() < 1e-9);
    }

    #[test]
    fn av_quality_half_dropped() {
        let q = av_quality(SimDuration::from_secs(34), SimDuration::from_secs(34), 0.5);
        assert!((q - 0.5).abs() < 1e-9);
    }

    #[test]
    fn av_quality_twice_as_long() {
        let q = av_quality(SimDuration::from_secs(34), SimDuration::from_secs(68), 1.0);
        assert!((q - 0.5).abs() < 1e-9);
    }

    #[test]
    fn av_quality_faster_than_realtime_does_not_exceed_one() {
        let q = av_quality(SimDuration::from_secs(34), SimDuration::from_secs(17), 1.0);
        assert!((q - 1.0).abs() < 1e-9);
    }

    #[test]
    fn av_quality_zero_duration() {
        assert_eq!(av_quality(SimDuration::from_secs(34), SimDuration::ZERO, 1.0), 0.0);
    }
}
