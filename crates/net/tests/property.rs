//! Property tests of the TCP flow model: physical sanity (no
//! faster-than-link transfers, FIFO ordering, monotone time) across
//! arbitrary parameter and workload combinations.

use proptest::prelude::*;
use thinc_net::tcp::{TcpParams, TcpPipe};
use thinc_net::time::{SimDuration, SimTime};

fn arb_params() -> impl Strategy<Value = TcpParams> {
    (
        1_000_000u64..1_000_000_000,   // 1 Mbps .. 1 Gbps.
        100u64..300_000,               // 0.1 ms .. 300 ms RTT.
        8u64..2048,                    // 8 KB .. 2 MB window.
    )
        .prop_map(|(bw, rtt_us, rwnd_kb)| TcpParams {
            bandwidth_bps: bw,
            rtt: SimDuration::from_micros(rtt_us),
            rwnd_bytes: rwnd_kb * 1024,
            ..TcpParams::default()
        })
}

proptest! {
    #[test]
    fn transfers_never_beat_the_link(
        params in arb_params(),
        sizes in prop::collection::vec(1u64..2_000_000, 1..20),
    ) {
        let mut pipe = TcpPipe::new(params);
        let total: u64 = sizes.iter().sum();
        let mut last_arrival = SimTime::ZERO;
        for &s in &sizes {
            let (_, arrival) = pipe.send(SimTime::ZERO, s);
            prop_assert!(arrival >= last_arrival, "FIFO ordering violated");
            last_arrival = arrival;
        }
        // Wall time >= pure serialization + half RTT propagation.
        let min_secs = total as f64 * 8.0 / params.bandwidth_bps as f64
            + params.rtt.as_secs_f64() / 2.0;
        prop_assert!(
            last_arrival.as_secs_f64() >= min_secs * 0.999,
            "faster than the link: {} < {}",
            last_arrival.as_secs_f64(),
            min_secs
        );
    }

    #[test]
    fn throughput_never_exceeds_window_cap(
        params in arb_params(),
        bytes in 1_000_000u64..50_000_000,
    ) {
        let mut pipe = TcpPipe::new(params);
        let cap = pipe.throughput_cap_bps() as f64;
        let (_, arrival) = pipe.send(SimTime::ZERO, bytes);
        let achieved = bytes as f64 * 8.0 / arrival.as_secs_f64().max(1e-9);
        // Allow 1% numerical slack.
        prop_assert!(
            achieved <= cap * 1.01,
            "achieved {achieved} bps > cap {cap} bps"
        );
    }

    #[test]
    fn later_sends_never_finish_earlier(
        params in arb_params(),
        batch in prop::collection::vec((0u64..500_000, 0u64..100_000), 2..30),
    ) {
        let mut pipe = TcpPipe::new(params);
        let mut t = SimTime::ZERO;
        let mut prev = SimTime::ZERO;
        for &(size, gap_us) in &batch {
            t = t + SimDuration::from_micros(gap_us);
            let (departure, arrival) = pipe.send(t, size);
            prop_assert!(departure >= t);
            prop_assert!(arrival >= departure);
            prop_assert!(arrival >= prev, "reordering");
            prev = arrival;
        }
    }

    #[test]
    fn writable_bytes_is_consistent_with_would_block(
        params in arb_params(),
        preload in 0u64..10_000_000,
        probe in 1u64..500_000,
    ) {
        let mut pipe = TcpPipe::new(params);
        if preload > 0 {
            pipe.send(SimTime::ZERO, preload);
        }
        let writable = pipe.writable_bytes(SimTime::ZERO);
        prop_assert_eq!(
            pipe.would_block(SimTime::ZERO, probe),
            writable < probe
        );
        // And the queue always drains eventually.
        let later = pipe.tx_free_at();
        prop_assert!(pipe.writable_bytes(later) >= params.sndbuf_bytes.min(u64::MAX));
    }

    #[test]
    fn warm_connection_is_never_slower(
        params in arb_params(),
        bytes in 10_000u64..2_000_000,
    ) {
        // Cold connection (slow start from scratch).
        let mut cold = TcpPipe::new(params);
        let (_, cold_arrival) = cold.send(SimTime::ZERO, bytes);
        // Warm connection: same transfer after a big priming send.
        let mut warm = TcpPipe::new(params);
        warm.send(SimTime::ZERO, 10_000_000);
        let start = warm.tx_free_at();
        let (_, warm_arrival) = warm.send(start, bytes);
        let cold_dur = cold_arrival - SimTime::ZERO;
        let warm_dur = warm_arrival - start;
        prop_assert!(
            warm_dur.as_micros() <= cold_dur.as_micros() + 1,
            "warm {warm_dur} slower than cold {cold_dur}"
        );
    }
}
