//! The client's wire-facing layer: byte stream in, display out.
//!
//! [`StreamClient`] couples a [`FrameReader`] to a [`ThincClient`]:
//! raw bytes from the connection are fed in, complete messages are
//! decoded and applied, and decode failures are survived — the
//! reader scans forward to the next plausible frame boundary and the
//! client flags that it wants a full refresh from the server (the
//! session's true state lives there, so recovery is always possible).
//! Every error, resync, and skipped byte is counted in the client's
//! resilience accounting.

use std::collections::VecDeque;

use thinc_net::time::{SimDuration, SimTime};
use thinc_protocol::cache::CacheLru;
use thinc_protocol::commands::DisplayCommand;
use thinc_protocol::message::Message;
use thinc_protocol::wire::{FrameReader, IntegrityCounters};
use thinc_raster::{PixelFormat, Rect, Region};

use crate::client::ThincClient;
use crate::hardware::HardwareCaps;
use crate::reconnect::ReconnectPolicy;

/// How long bytes may sit in the reader with zero decode progress
/// before the framing is declared wedged. A corrupted length field
/// can swallow a frame boundary without ever producing a decode
/// error or CRC failure — the reader just waits for a frame that
/// cannot complete, silently eating every later frame fed into it.
/// Any real frame crosses a sane link in well under this; kept below
/// typical liveness timeouts so the client recovers itself before
/// the server declares it dead.
const FRAME_STALL_TIMEOUT: SimDuration = SimDuration::from_millis(1_500);

/// A [`ThincClient`] fed directly from the wire, with decode-error
/// recovery.
pub struct StreamClient {
    client: ThincClient,
    reader: FrameReader,
    /// Set when damage forced the reader to skip bytes (or the link
    /// was re-established): the display may be stale and the server
    /// should resync us. Cleared only when opaque server updates have
    /// covered the whole viewport since the latch — an acknowledgement
    /// that a refresh was *requested* is not evidence it *arrived*.
    needs_refresh: bool,
    /// Viewport area repainted by opaque commands since the latch.
    refresh_cover: Region,
    /// Automatic refresh-request issuance, when installed.
    policy: Option<ReconnectPolicy>,
    /// Messages applied over the client's lifetime — progress marker
    /// for the policy's stalled-framing detection.
    applied_total: u64,
    /// `applied_total` when the policy last fired an attempt.
    applied_at_attempt: u64,
    /// When the current no-progress-with-pending-bytes episode began
    /// (`None` while the reader is empty or decoding normally).
    stall_since: Option<SimTime>,
    /// `applied_total` at the start of that episode.
    stall_applied_mark: u64,
    /// Reader integrity counters already folded into `resilience`
    /// (the reader keeps cumulative tallies; we move the deltas).
    integrity_base: IntegrityCounters,
    /// Content-addressed store (protocol revision 3): every cacheable
    /// full payload received is kept here so a later
    /// [`Message::CacheRef`] can be resolved locally. Mirrors the
    /// server's ledger (same budget, same sizes, same order), and
    /// deliberately survives [`reconnect`](Self::reconnect) so a
    /// resync can repay refresh debt out of the cache.
    cache: CacheLru<Message>,
    /// Cache misses owed to the server (drained by
    /// [`take_cache_miss`](Self::take_cache_miss)).
    pending_cache_miss: VecDeque<Message>,
    /// A warm resume is in flight: a [`resume`](Self::resume) redial
    /// presented a token and the next server message decides the
    /// outcome (a fresh `ServerHello` means the token was rejected —
    /// cold restart; anything else confirms the warm path).
    resume_pending: bool,
    resilience: thinc_telemetry::ResilienceMetrics,
}

impl StreamClient {
    /// A stream client with the given display geometry.
    pub fn new(width: u32, height: u32, format: PixelFormat) -> Self {
        Self::wrap(ThincClient::new(width, height, format))
    }

    /// A stream client with explicit hardware capabilities.
    pub fn with_hardware(width: u32, height: u32, format: PixelFormat, caps: HardwareCaps) -> Self {
        Self::wrap(ThincClient::with_hardware(width, height, format, caps))
    }

    /// Wraps an existing client.
    pub fn wrap(client: ThincClient) -> Self {
        Self {
            client,
            reader: FrameReader::new(),
            needs_refresh: false,
            refresh_cover: Region::new(),
            policy: None,
            applied_total: 0,
            applied_at_attempt: 0,
            stall_since: None,
            stall_applied_mark: 0,
            integrity_base: IntegrityCounters::default(),
            cache: CacheLru::new(thinc_protocol::DEFAULT_CACHE_BUDGET),
            pending_cache_miss: VecDeque::new(),
            resume_pending: false,
            resilience: thinc_telemetry::ResilienceMetrics::new(),
        }
    }

    /// Installs a [`ReconnectPolicy`]: while the display is stale,
    /// [`poll_reconnect`](Self::poll_reconnect) issues
    /// [`Message::RefreshRequest`]s on the policy's backoff schedule.
    pub fn with_reconnect_policy(mut self, policy: ReconnectPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// The installed reconnect policy, if any.
    pub fn reconnect_policy(&self) -> Option<&ReconnectPolicy> {
        self.policy.as_ref()
    }

    /// Sets the content-addressed store's byte budget. The budget
    /// must match the server ledger's (the session's cache budget)
    /// for the eviction mirror to hold — call this before any traffic
    /// when the session runs a non-default budget. Replaces the store
    /// (which is empty before the first payload arrives anyway).
    pub fn with_cache_budget(mut self, budget: u64) -> Self {
        self.cache = CacheLru::new(budget);
        self
    }

    /// Every key in the content-addressed store, sorted ascending.
    /// For coherence checks against the server's ledger.
    pub fn cache_keys(&self) -> Vec<u64> {
        self.cache.keys()
    }

    /// Feeds bytes from the connection and applies every complete
    /// message. Damage never panics or stalls: a decode error is
    /// counted, the reader scans to the next plausible frame start,
    /// and [`needs_refresh`](Self::needs_refresh) is raised so the
    /// caller can request a server resync. Returns the number of
    /// messages applied.
    pub fn feed(&mut self, bytes: &[u8]) -> usize {
        self.reader.feed(bytes);
        let mut applied = 0;
        loop {
            match self.reader.next_message() {
                Ok(Some(msg)) => {
                    // Negotiation: the server's hello fixes the wire
                    // revision for the rest of the stream. The reader
                    // never switches on its own — this is the one
                    // place the session layer decides.
                    if let Message::ServerHello { version, .. } = &msg {
                        self.reader
                            .set_revision((*version).min(thinc_protocol::PROTOCOL_VERSION));
                    }
                    if self.resume_pending {
                        // The first post-redial message settles the
                        // warm-resume handshake. A fresh `ServerHello`
                        // means the standby rejected the token (stale
                        // session, digest mismatch, corrupt
                        // checkpoint): cold restart — the server reset
                        // its ledger, so the mirrored store must go
                        // too, and the display is presumed stale until
                        // the full refresh covers it. Anything else is
                        // the delta stream of a confirmed warm resume.
                        self.resume_pending = false;
                        if matches!(msg, Message::ServerHello { .. }) {
                            self.cache.clear();
                            self.needs_refresh = true;
                            self.refresh_cover = Region::new();
                            self.resilience.record_cold_fallback();
                        } else {
                            self.resilience.record_resume();
                        }
                    }
                    if self.reader.take_seq_break() {
                        // Frames vanished between the previous message
                        // and this one: the framing recovered but the
                        // display is missing updates — escalate to a
                        // refresh, voiding any partial coverage.
                        self.resilience.record_resync_triggered();
                        self.needs_refresh = true;
                        self.refresh_cover = Region::new();
                    }
                    // Resolve cache references against the content
                    // store before the message reaches the display.
                    let (msg, from_cache) = match msg {
                        Message::CacheRef { hash } => {
                            let ref_size = Message::CacheRef { hash }.wire_size();
                            match self.cache.get(hash) {
                                Some(resolved) => {
                                    let resolved = resolved.clone();
                                    self.resilience.record_cache_hit(
                                        resolved.wire_size().saturating_sub(ref_size),
                                    );
                                    (resolved, true)
                                }
                                None => {
                                    // Not damage: the server answers
                                    // the miss with the full payload,
                                    // which repaints the same rect.
                                    self.resilience.record_cache_miss();
                                    self.pending_cache_miss
                                        .push_back(Message::CacheMiss { hash });
                                    continue;
                                }
                            }
                        }
                        other => (other, false),
                    };
                    let errors_before = self.client.stats().errors;
                    self.client.apply(&msg);
                    applied += 1;
                    self.applied_total += 1;
                    if self.needs_refresh && self.client.stats().errors == errors_before {
                        self.note_refresh_progress(&msg);
                    }
                    // Every cacheable full payload enters the store —
                    // the server's ledger marked it held the moment it
                    // was sent, so both sides must see the same insert
                    // sequence (even when the apply was rejected).
                    if !from_cache {
                        if let Some(key) = msg.cache_key() {
                            let evicted = self.cache.insert(key, msg.wire_size(), msg);
                            self.resilience.record_cache_evictions(evicted);
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    self.resilience.record_decode_error();
                    let skipped = self.reader.resync();
                    self.resilience.record_stream_resync(skipped as u64);
                    // New damage invalidates any partial refresh.
                    self.needs_refresh = true;
                    self.refresh_cover = Region::new();
                }
            }
        }
        self.sync_integrity_counters();
        applied
    }

    /// Folds the reader's cumulative integrity tallies (CRC failures,
    /// sequence gaps, duplicates) into the resilience accounting as
    /// deltas since the last fold.
    fn sync_integrity_counters(&mut self) {
        let c = self.reader.integrity();
        let b = self.integrity_base;
        if c != b {
            self.resilience.add_integrity_counts(
                c.crc_fail - b.crc_fail,
                c.seq_gap - b.seq_gap,
                c.seq_dup - b.seq_dup,
            );
            self.integrity_base = c;
        }
    }

    /// Replaces the frame reader with a fresh one at the *same* wire
    /// revision. A post-negotiation reader must never fall back to
    /// legacy framing: a legacy parser fed extended frames would read
    /// sequence/CRC bytes as payload length and could emit a wrong
    /// display command. Sequence tracking restarts (any next sequence
    /// number is accepted), matching the server-side encoder surviving
    /// or restarting across the same event.
    fn reset_reader(&mut self) {
        self.sync_integrity_counters();
        self.reader = FrameReader::with_revision(self.reader.revision());
        self.integrity_base = IntegrityCounters::default();
        self.stall_since = None;
    }

    /// Credits an applied message against the pending refresh: opaque
    /// commands (RAW, SFILL, PFILL, opaque BITMAP) repaint their
    /// destination unconditionally, so once they have covered the
    /// whole viewport every stale pixel has been overwritten and the
    /// latch can clear. COPY and transparent BITMAP depend on the
    /// (possibly stale) local content, so they prove nothing.
    fn note_refresh_progress(&mut self, msg: &Message) {
        let rect = match msg {
            Message::Display(DisplayCommand::Raw { rect, .. })
            | Message::Display(DisplayCommand::Sfill { rect, .. })
            | Message::Display(DisplayCommand::Pfill { rect, .. })
            | Message::Display(DisplayCommand::Bitmap { rect, bg: Some(_), .. }) => *rect,
            _ => return,
        };
        self.refresh_cover.union_rect(&rect);
        let fb = self.client.framebuffer();
        let full = Rect::new(0, 0, fb.width(), fb.height());
        if self.refresh_cover.contains_rect(&full) {
            self.needs_refresh = false;
            self.refresh_cover = Region::new();
            if let Some(p) = self.policy.as_mut() {
                p.note_recovered();
            }
        }
    }

    /// Drives the installed [`ReconnectPolicy`]: while the display is
    /// stale and the backoff window has elapsed, returns the
    /// [`Message::RefreshRequest`] to send upstream. `None` when the
    /// display is current, no policy is installed, the policy is
    /// backing off, or its attempt budget is exhausted.
    pub fn poll_reconnect(&mut self, now: SimTime) -> Option<Message> {
        self.poll_stall_watchdog(now);
        if !self.needs_refresh {
            return None;
        }
        let attempt = self.policy.as_mut()?.poll(now)?;
        // Stalled framing: nothing decoded since the previous attempt
        // while bytes sit in the reader means a corrupted length
        // field swallowed a frame boundary — the stream will never
        // progress on its own (no decode *error* ever fires, the
        // reader just waits for a frame that cannot complete). A
        // retry therefore drops the wire state like a real redial
        // would, so the server's next resync lands on clean framing.
        if attempt > 1
            && self.applied_total == self.applied_at_attempt
            && self.reader.pending_bytes() > 0
        {
            self.reset_reader();
            self.resilience.record_reconnect();
        }
        self.applied_at_attempt = self.applied_total;
        Some(Message::RefreshRequest { attempt })
    }

    /// The framing-stall watchdog. A corrupted length field can
    /// swallow a frame boundary *without* tripping any error: the tag
    /// stays plausible, the declared length is sane-but-wrong, and
    /// the reader simply waits for a completion that never comes —
    /// silently absorbing every later frame into the phantom payload.
    /// No decode error fires, so `needs_refresh` never latches and
    /// the stalled-refresh recovery above is unreachable. This
    /// watchdog closes that gap: bytes pending with zero decode
    /// progress for [`FRAME_STALL_TIMEOUT`] means the framing is
    /// wedged, so the wire state is dropped like a real redial and a
    /// refresh is requested. A genuinely slow frame reset this way
    /// costs one redundant refresh; a wedged one costs the display.
    fn poll_stall_watchdog(&mut self, now: SimTime) {
        if self.reader.pending_bytes() == 0 {
            self.stall_since = None;
            return;
        }
        match self.stall_since {
            Some(since) if self.applied_total == self.stall_applied_mark => {
                if now.since(since) >= FRAME_STALL_TIMEOUT {
                    self.reset_reader();
                    self.resilience.record_reconnect();
                    self.needs_refresh = true;
                    self.refresh_cover = Region::new();
                    self.stall_since = None;
                }
            }
            // First pending byte seen, or frames decoded since the
            // mark (the framing is alive; the tail is just a partial
            // frame still streaming): restart the clock.
            _ => {
                self.stall_since = Some(now);
                self.stall_applied_mark = self.applied_total;
            }
        }
    }

    /// Whether damage has been skipped since the last check — the
    /// display may be stale and a server resync is in order.
    pub fn needs_refresh(&self) -> bool {
        self.needs_refresh
    }

    /// Consumes the refresh flag (for harnesses that drive the resync
    /// themselves instead of installing a [`ReconnectPolicy`]).
    pub fn take_needs_refresh(&mut self) -> bool {
        self.refresh_cover = Region::new();
        std::mem::take(&mut self.needs_refresh)
    }

    /// The resume token this client presents when redialing after a
    /// server crash (`MSG_SESSION_RESUME`, see `docs/PROTOCOL.md`):
    /// the session/client identity it was assigned, the last
    /// integrity-frame sequence number it actually received (so the
    /// standby's encoder can continue the stream without a break),
    /// and a digest over its content store's sorted key set (so the
    /// standby can prove the cache mirror is coherent before shipping
    /// deltas instead of a full refresh).
    pub fn resume_token(&self, session_id: u64, client_id: u32) -> Message {
        Message::SessionResume {
            session_id,
            client_id,
            last_seq: self.reader.last_seq().unwrap_or(0),
            store_digest: thinc_protocol::store_digest(&self.cache.keys()),
        }
    }

    /// Begins a warm resume against a restored standby server.
    /// Returns `true` when the warm path proceeds: the wire state is
    /// clean, the reader restarts (keeping the negotiated revision,
    /// accepting whatever sequence the standby adopts from the
    /// token), and the next server message settles the outcome — see
    /// [`feed`](Self::feed). Returns `false` when a half-received
    /// frame makes the local wire state unusable: it cannot be
    /// stitched onto the standby's stream, so the client falls back
    /// to a cold [`reconnect`](Self::reconnect) immediately (counted
    /// as a cold fallback) and the caller should skip the token.
    ///
    /// Either way this never panics and never leaves the client
    /// wedged: the worst case is a full-view refresh.
    pub fn resume(&mut self) -> bool {
        if self.reader.pending_bytes() > 0 {
            self.reconnect();
            self.resilience.record_cold_fallback();
            return false;
        }
        self.reset_reader();
        self.resume_pending = true;
        true
    }

    /// Whether a warm resume is still awaiting its first post-redial
    /// server message.
    pub fn resume_pending(&self) -> bool {
        self.resume_pending
    }

    /// Resets the wire state for a fresh connection (reconnect): the
    /// reader drops any half-received frame. The display keeps its
    /// content, but a fresh link is presumed stale — updates were
    /// lost while it was down — so `needs_refresh` latches until the
    /// server's resync has actually covered the viewport. (It used to
    /// be cleared here, which lost the pending-refresh state when a
    /// drop raced the resync.)
    pub fn reconnect(&mut self) {
        self.reset_reader();
        self.resume_pending = false;
        self.needs_refresh = true;
        self.refresh_cover = Region::new();
        self.resilience.record_reconnect();
    }

    /// The wire framing revision the reader currently expects
    /// ([`thinc_protocol::WIRE_REV_LEGACY`] until a `ServerHello`
    /// announcing protocol version ≥ 2 arrives).
    pub fn wire_revision(&self) -> u16 {
        self.reader.revision()
    }

    /// Any pong the client owes the server (echo of a liveness ping).
    pub fn take_pong(&mut self) -> Option<Message> {
        self.client.take_pong()
    }

    /// The next [`Message::CacheMiss`] owed to the server, if any. An
    /// unresolved cache reference queues one here; the caller forwards
    /// it upstream (like pongs) and the server answers with the full
    /// payload.
    pub fn take_cache_miss(&mut self) -> Option<Message> {
        self.pending_cache_miss.pop_front()
    }

    /// Entries currently held in the content-addressed store.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Bytes buffered waiting for a complete frame.
    pub fn pending_bytes(&self) -> usize {
        self.reader.pending_bytes()
    }

    /// Client-side resilience accounting (decode errors, resyncs,
    /// skipped bytes, reconnects).
    pub fn resilience_metrics(&self) -> &thinc_telemetry::ResilienceMetrics {
        &self.resilience
    }

    /// The wrapped display client.
    pub fn client(&self) -> &ThincClient {
        &self.client
    }

    /// Mutable access to the wrapped client.
    pub fn client_mut(&mut self) -> &mut ThincClient {
        &mut self.client
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_protocol::commands::DisplayCommand;
    use thinc_protocol::wire::encode_message;
    use thinc_raster::{Color, Rect};

    fn fill(rect: Rect, color: Color) -> Vec<u8> {
        encode_message(&Message::Display(DisplayCommand::Sfill { rect, color }))
    }

    #[test]
    fn clean_stream_applies_messages() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let bytes = fill(Rect::new(0, 0, 32, 32), Color::rgb(9, 9, 9));
        // Fragmented arbitrarily.
        assert_eq!(c.feed(&bytes[..3]), 0);
        assert_eq!(c.feed(&bytes[3..]), 1);
        assert!(!c.needs_refresh());
        assert_eq!(
            c.client().framebuffer().get_pixel(5, 5),
            Some(Color::rgb(9, 9, 9))
        );
    }

    #[test]
    fn damage_is_skipped_counted_and_flags_refresh() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let mut stream = vec![0xEE, 0xFF, 0x13, 0x37]; // line noise
        stream.extend(fill(Rect::new(0, 0, 8, 8), Color::rgb(1, 2, 3)));
        let applied = c.feed(&stream);
        assert_eq!(applied, 1, "the message after the damage survives");
        assert!(c.needs_refresh());
        let m = c.resilience_metrics();
        assert!(m.decode_errors() >= 1);
        assert!(m.stream_resyncs() >= 1);
        assert!(m.skipped_bytes() >= 4);
        assert!(c.take_needs_refresh());
        assert!(!c.needs_refresh());
    }

    #[test]
    fn truncated_frame_waits_without_error() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let bytes = fill(Rect::new(0, 0, 8, 8), Color::rgb(4, 5, 6));
        c.feed(&bytes[..bytes.len() - 1]);
        assert_eq!(c.resilience_metrics().decode_errors(), 0);
        assert!(c.pending_bytes() > 0);
        assert_eq!(c.feed(&bytes[bytes.len() - 1..]), 1);
        assert_eq!(c.pending_bytes(), 0);
    }

    #[test]
    fn reconnect_clears_half_frames_and_counts() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let bytes = fill(Rect::new(0, 0, 8, 8), Color::rgb(7, 7, 7));
        c.feed(&bytes[..4]);
        assert!(c.pending_bytes() > 0);
        c.reconnect();
        assert_eq!(c.pending_bytes(), 0);
        assert_eq!(c.resilience_metrics().reconnects(), 1);
        // A fresh, whole message decodes normally afterwards.
        assert_eq!(c.feed(&bytes), 1);
    }

    #[test]
    fn reconnect_latches_refresh_until_the_viewport_is_covered() {
        // Regression: reconnect() used to clear needs_refresh
        // outright, so a request acknowledged but never answered left
        // the client permanently stale. The latch must survive until
        // opaque updates have actually covered the viewport.
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        c.reconnect();
        assert!(c.needs_refresh(), "a fresh link is presumed stale");
        // A partial repaint is not enough.
        c.feed(&fill(Rect::new(0, 0, 32, 16), Color::rgb(1, 1, 1)));
        assert!(c.needs_refresh());
        // Completing the coverage clears it.
        c.feed(&fill(Rect::new(0, 16, 32, 16), Color::rgb(2, 2, 2)));
        assert!(!c.needs_refresh());
    }

    #[test]
    fn drop_during_resync_keeps_the_latch() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        c.reconnect();
        // Half the refresh lands...
        c.feed(&fill(Rect::new(0, 0, 32, 16), Color::rgb(1, 1, 1)));
        // ...then the link corrupts again: the partial coverage is
        // void and the latch stays up.
        let mut stream = vec![0xEE, 0xFF, 0x13, 0x37];
        stream.extend(fill(Rect::new(0, 16, 32, 16), Color::rgb(2, 2, 2)));
        c.feed(&stream);
        assert!(c.needs_refresh(), "damage mid-resync must re-latch");
        // Only a complete post-damage repaint clears it.
        c.feed(&fill(Rect::new(0, 16, 32, 16), Color::rgb(2, 2, 2)));
        assert!(c.needs_refresh());
        c.feed(&fill(Rect::new(0, 0, 32, 16), Color::rgb(1, 1, 1)));
        assert!(!c.needs_refresh());
    }

    #[test]
    fn copy_does_not_count_as_refresh_coverage() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        c.reconnect();
        // A full-screen COPY only shuffles possibly-stale pixels.
        let copy = encode_message(&Message::Display(DisplayCommand::Copy {
            src_rect: Rect::new(0, 0, 32, 32),
            dst_x: 0,
            dst_y: 0,
        }));
        c.feed(&copy);
        assert!(c.needs_refresh());
        c.feed(&fill(Rect::new(0, 0, 32, 32), Color::rgb(3, 3, 3)));
        assert!(!c.needs_refresh());
    }

    #[test]
    fn policy_drives_refresh_requests_until_recovery() {
        use crate::reconnect::{ReconnectConfig, ReconnectPolicy};
        use thinc_net::time::SimTime;
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888)
            .with_reconnect_policy(ReconnectPolicy::new(ReconnectConfig::default()));
        let t0 = SimTime(1_000_000);
        // Current display: the policy stays quiet.
        assert_eq!(c.poll_reconnect(t0), None);
        c.reconnect();
        match c.poll_reconnect(t0) {
            Some(Message::RefreshRequest { attempt: 1 }) => {}
            other => panic!("{other:?}"),
        }
        // Backoff throttles an immediate retry.
        assert_eq!(c.poll_reconnect(t0), None);
        let at = c.reconnect_policy().unwrap().next_attempt_at().unwrap();
        match c.poll_reconnect(at) {
            Some(Message::RefreshRequest { attempt: 2 }) => {}
            other => panic!("{other:?}"),
        }
        // The refresh lands: latch clears and the backoff resets.
        c.feed(&fill(Rect::new(0, 0, 32, 32), Color::rgb(5, 5, 5)));
        assert!(!c.needs_refresh());
        assert_eq!(c.reconnect_policy().unwrap().attempts(), 0);
        assert_eq!(c.poll_reconnect(at), None);
    }

    #[test]
    fn server_hello_negotiates_integrity_framing() {
        use thinc_protocol::wire::FrameEncoder;
        use thinc_protocol::{PROTOCOL_VERSION, WIRE_REV_INTEGRITY, WIRE_REV_LEGACY};
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        assert_eq!(c.wire_revision(), WIRE_REV_LEGACY);
        let mut enc = FrameEncoder::new();
        enc.negotiate(PROTOCOL_VERSION);
        let hello = Message::ServerHello {
            version: PROTOCOL_VERSION,
            width: 32,
            height: 32,
            depth: 24,
        };
        assert_eq!(c.feed(&enc.encode(&hello)), 1);
        assert_eq!(c.wire_revision(), PROTOCOL_VERSION);
        assert!(c.wire_revision() >= WIRE_REV_INTEGRITY);
        // Post-negotiation traffic is sequence/CRC framed and decodes.
        let msg = Message::Display(DisplayCommand::Sfill {
            rect: Rect::new(0, 0, 16, 16),
            color: Color::rgb(8, 8, 8),
        });
        assert_eq!(c.feed(&enc.encode(&msg)), 1);
        assert_eq!(
            c.client().framebuffer().get_pixel(3, 3),
            Some(Color::rgb(8, 8, 8))
        );
        assert!(!c.needs_refresh());
    }

    #[test]
    fn sequence_gap_escalates_to_refresh_request() {
        use thinc_protocol::wire::FrameEncoder;
        use thinc_protocol::{PROTOCOL_VERSION, WIRE_REV_INTEGRITY};
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        c.feed(&enc.encode(&Message::ServerHello {
            version: PROTOCOL_VERSION,
            width: 32,
            height: 32,
            depth: 24,
        }));
        let frame = |enc: &mut FrameEncoder, y: i32| {
            enc.encode(&Message::Display(DisplayCommand::Sfill {
                rect: Rect::new(0, y, 32, 8),
                color: Color::rgb(1, 1, 1),
            }))
        };
        let f0 = frame(&mut enc, 0);
        let lost = frame(&mut enc, 8); // encoded, never delivered
        let f2 = frame(&mut enc, 16);
        c.feed(&f0);
        assert!(!c.needs_refresh());
        drop(lost);
        c.feed(&f2);
        assert!(c.needs_refresh(), "a sequence gap means lost updates");
        let m = c.resilience_metrics();
        assert_eq!(m.seq_gaps(), 1);
        assert_eq!(m.resyncs_triggered(), 1);
        // A full opaque repaint recovers.
        c.feed(&enc.encode(&Message::Display(DisplayCommand::Sfill {
            rect: Rect::new(0, 0, 32, 32),
            color: Color::rgb(2, 2, 2),
        })));
        assert!(!c.needs_refresh());
    }

    #[test]
    fn duplicate_frames_are_absorbed_silently() {
        use thinc_protocol::wire::FrameEncoder;
        use thinc_protocol::{PROTOCOL_VERSION, WIRE_REV_INTEGRITY};
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        c.feed(&enc.encode(&Message::ServerHello {
            version: PROTOCOL_VERSION,
            width: 32,
            height: 32,
            depth: 24,
        }));
        let bytes = enc.encode(&Message::Display(DisplayCommand::Sfill {
            rect: Rect::new(0, 0, 32, 32),
            color: Color::rgb(6, 6, 6),
        }));
        assert_eq!(c.feed(&bytes), 1);
        assert_eq!(c.feed(&bytes), 0, "the duplicate applies nothing");
        assert_eq!(c.resilience_metrics().seq_dups(), 1);
        assert!(!c.needs_refresh(), "duplicates are not damage");
    }

    #[test]
    fn crc_damage_counts_and_latches_refresh() {
        use thinc_protocol::wire::FrameEncoder;
        use thinc_protocol::{PROTOCOL_VERSION, WIRE_REV_INTEGRITY};
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        c.feed(&enc.encode(&Message::ServerHello {
            version: PROTOCOL_VERSION,
            width: 32,
            height: 32,
            depth: 24,
        }));
        let mut bytes = enc.encode(&Message::Display(DisplayCommand::Sfill {
            rect: Rect::new(0, 0, 32, 32),
            color: Color::rgb(6, 6, 6),
        }));
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert_eq!(c.feed(&bytes), 0, "a damaged frame never applies");
        assert!(c.needs_refresh());
        let m = c.resilience_metrics();
        assert!(m.crc_failures() >= 1);
        assert!(m.decode_errors() >= 1);
    }

    #[test]
    fn reader_reset_preserves_negotiated_revision() {
        use thinc_protocol::wire::FrameEncoder;
        use thinc_protocol::{PROTOCOL_VERSION, WIRE_REV_INTEGRITY};
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        c.feed(&enc.encode(&Message::ServerHello {
            version: PROTOCOL_VERSION,
            width: 32,
            height: 32,
            depth: 24,
        }));
        c.reconnect();
        assert_eq!(
            c.wire_revision(),
            PROTOCOL_VERSION,
            "a redial must not fall back to legacy framing"
        );
        assert!(c.wire_revision() >= WIRE_REV_INTEGRITY);
        // Post-reconnect integrity traffic still decodes (any sequence
        // number is accepted on the fresh stream).
        let bytes = enc.encode(&Message::Display(DisplayCommand::Sfill {
            rect: Rect::new(0, 0, 32, 32),
            color: Color::rgb(4, 4, 4),
        }));
        assert_eq!(c.feed(&bytes), 1);
        assert_eq!(c.resilience_metrics().seq_gaps(), 0);
    }

    fn cacheable_raw(fill: u8) -> Message {
        Message::Display(DisplayCommand::Raw {
            rect: Rect::new(0, 0, 8, 8),
            encoding: thinc_protocol::commands::RawEncoding::None,
            data: vec![fill; 8 * 8 * 3].into(),
        })
    }

    #[test]
    fn cache_reference_resolves_from_the_store() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let raw = cacheable_raw(7);
        let hash = raw.cache_key().expect("pixel payloads over the floor cache");
        assert_eq!(c.feed(&encode_message(&raw)), 1);
        assert_eq!(c.cache_len(), 1);
        // Overwrite the area, then repaint it via reference alone.
        c.feed(&fill(Rect::new(0, 0, 32, 32), Color::rgb(0, 0, 0)));
        assert_eq!(c.feed(&encode_message(&Message::CacheRef { hash })), 1);
        assert_eq!(
            c.client().framebuffer().get_pixel(2, 2),
            Some(Color::rgb(7, 7, 7))
        );
        let m = c.resilience_metrics();
        assert_eq!(m.cache_hits(), 1);
        assert!(m.cache_bytes_saved() > 0);
        assert!(c.take_cache_miss().is_none());
    }

    #[test]
    fn unresolved_reference_queues_a_miss_without_damage() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        assert_eq!(c.feed(&encode_message(&Message::CacheRef { hash: 0xDEAD })), 0);
        assert!(!c.needs_refresh(), "a miss is self-healing, not damage");
        assert_eq!(c.resilience_metrics().cache_misses(), 1);
        match c.take_cache_miss() {
            Some(Message::CacheMiss { hash: 0xDEAD }) => {}
            other => panic!("{other:?}"),
        }
        assert!(c.take_cache_miss().is_none());
    }

    #[test]
    fn cache_survives_reconnect_and_repays_refresh_debt() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let raw = cacheable_raw(9);
        let hash = raw.cache_key().unwrap();
        c.feed(&encode_message(&raw));
        c.reconnect();
        assert_eq!(c.cache_len(), 1, "the store persists across a redial");
        // The server's resync can repay refresh debt from the cache.
        assert_eq!(c.feed(&encode_message(&Message::CacheRef { hash })), 1);
        assert_eq!(c.resilience_metrics().cache_hits(), 1);
        assert_eq!(
            c.client().framebuffer().get_pixel(1, 1),
            Some(Color::rgb(9, 9, 9))
        );
    }

    #[test]
    fn corrupted_length_field_stall_is_broken_by_the_watchdog() {
        // The silent-stall case the chaos engine flushed out: a
        // corrupted length field inflates a frame's declared size
        // without tripping the tag or CRC checks, so the reader waits
        // forever and silently swallows every later frame. No decode
        // error fires, so only the stall watchdog can recover.
        use crate::reconnect::{ReconnectConfig, ReconnectPolicy};
        use thinc_protocol::wire::FrameEncoder;
        use thinc_protocol::{PROTOCOL_VERSION, WIRE_REV_INTEGRITY};
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888)
            .with_reconnect_policy(ReconnectPolicy::new(ReconnectConfig::default()));
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        c.feed(&enc.encode(&Message::ServerHello {
            version: PROTOCOL_VERSION,
            width: 32,
            height: 32,
            depth: 24,
        }));
        let mut wedge = enc.encode(&Message::Display(DisplayCommand::Sfill {
            rect: Rect::new(0, 0, 8, 8),
            color: Color::rgb(1, 2, 3),
        }));
        // Inflate the declared payload length: sane (under the frame
        // cap) but larger than what will ever arrive.
        let bogus = (wedge.len() as u32) + 500;
        wedge[1..5].copy_from_slice(&bogus.to_le_bytes());
        assert_eq!(c.feed(&wedge), 0);
        // Later frames are swallowed whole into the phantom payload:
        // no error, no staleness signal, bytes just accumulate.
        let lost = enc.encode(&Message::Display(DisplayCommand::Sfill {
            rect: Rect::new(0, 0, 32, 32),
            color: Color::rgb(9, 9, 9),
        }));
        assert_eq!(c.feed(&lost), 0);
        assert!(!c.needs_refresh(), "the stall itself raises no error");
        assert_eq!(c.resilience_metrics().decode_errors(), 0);
        assert!(c.pending_bytes() > 0);
        // The watchdog arms on first poll and fires once the timeout
        // elapses with no decode progress: wire state dropped, refresh
        // latched and requested.
        let t0 = SimTime(1_000_000);
        assert_eq!(c.poll_reconnect(t0), None);
        let fired = t0 + FRAME_STALL_TIMEOUT;
        match c.poll_reconnect(fired) {
            Some(Message::RefreshRequest { attempt: 1 }) => {}
            other => panic!("expected a refresh request, got {other:?}"),
        }
        assert_eq!(c.pending_bytes(), 0, "the wedged buffer is dropped");
        assert!(c.needs_refresh());
        // The server's resync lands on clean framing and recovers.
        assert_eq!(
            c.feed(&enc.encode(&Message::Display(DisplayCommand::Sfill {
                rect: Rect::new(0, 0, 32, 32),
                color: Color::rgb(7, 7, 7),
            }))),
            1
        );
        assert!(!c.needs_refresh());
        assert_eq!(
            c.client().framebuffer().get_pixel(31, 31),
            Some(Color::rgb(7, 7, 7))
        );
    }

    #[test]
    fn slow_but_live_framing_does_not_trip_the_watchdog() {
        use crate::reconnect::{ReconnectConfig, ReconnectPolicy};
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888)
            .with_reconnect_policy(ReconnectPolicy::new(ReconnectConfig::default()));
        let bytes = fill(Rect::new(0, 0, 32, 32), Color::rgb(5, 5, 5));
        let mut t = SimTime(1_000_000);
        // A frame trickling in one byte per poll interval keeps making
        // visible progress only on completion — but each completed
        // message resets the stall clock, so steady (if slow) decode
        // cycles never trip the watchdog.
        for chunk in bytes.chunks(4) {
            c.feed(chunk);
            assert_eq!(c.poll_reconnect(t), None);
            t = t + SimDuration::from_millis(200);
        }
        assert!(!c.needs_refresh());
        assert_eq!(c.resilience_metrics().reconnects(), 0);
        assert_eq!(
            c.client().framebuffer().get_pixel(0, 0),
            Some(Color::rgb(5, 5, 5))
        );
    }

    #[test]
    fn resume_token_carries_seq_and_store_digest() {
        use thinc_protocol::wire::FrameEncoder;
        use thinc_protocol::{PROTOCOL_VERSION, WIRE_REV_INTEGRITY};
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        c.feed(&enc.encode(&Message::ServerHello {
            version: PROTOCOL_VERSION,
            width: 32,
            height: 32,
            depth: 24,
        }));
        c.feed(&enc.encode(&cacheable_raw(5)));
        match c.resume_token(0xFEED, 3) {
            Message::SessionResume {
                session_id: 0xFEED,
                client_id: 3,
                last_seq,
                store_digest,
            } => {
                // The hello travels legacy-framed (handshake frames
                // carry no sequence); the RAW is the first numbered
                // frame.
                assert_eq!(last_seq, 0);
                assert_eq!(
                    store_digest,
                    thinc_protocol::store_digest(&c.cache_keys())
                );
                assert_ne!(
                    store_digest,
                    thinc_protocol::store_digest(&[]),
                    "the store holds the cached payload"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn warm_resume_confirms_on_delta_traffic() {
        use thinc_protocol::wire::FrameEncoder;
        use thinc_protocol::{PROTOCOL_VERSION, WIRE_REV_INTEGRITY};
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        c.feed(&enc.encode(&Message::ServerHello {
            version: PROTOCOL_VERSION,
            width: 32,
            height: 32,
            depth: 24,
        }));
        c.feed(&enc.encode(&cacheable_raw(5)));
        let last = match c.resume_token(1, 0) {
            Message::SessionResume { last_seq, .. } => last_seq,
            other => panic!("{other:?}"),
        };
        // Server crashes; the client redials warm.
        assert!(c.resume());
        assert!(c.resume_pending());
        // The standby adopted the token's sequence and ships only the
        // delta — no hello, no refresh, no sequence break.
        let mut standby = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        standby.set_next_seq(last.wrapping_add(1));
        assert_eq!(
            c.feed(&standby.encode(&Message::Display(DisplayCommand::Sfill {
                rect: Rect::new(0, 0, 8, 8),
                color: Color::rgb(2, 2, 2),
            }))),
            1
        );
        assert!(!c.resume_pending());
        assert!(!c.needs_refresh(), "warm resume is not damage");
        assert_eq!(c.cache_len(), 1, "the store survives a warm resume");
        let m = c.resilience_metrics();
        assert_eq!(m.resumes(), 1);
        assert_eq!(m.cold_fallbacks(), 0);
        assert_eq!(m.seq_gaps(), 0, "the sequence stream is unbroken");
    }

    #[test]
    fn rejected_resume_token_falls_back_cold() {
        use thinc_protocol::wire::FrameEncoder;
        use thinc_protocol::{PROTOCOL_VERSION, WIRE_REV_INTEGRITY};
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        c.feed(&enc.encode(&Message::ServerHello {
            version: PROTOCOL_VERSION,
            width: 32,
            height: 32,
            depth: 24,
        }));
        c.feed(&enc.encode(&cacheable_raw(5)));
        assert!(c.resume());
        // The standby rejected the token (stale digest, unknown
        // session, corrupt checkpoint): it answers with a fresh
        // handshake instead of the delta stream.
        let mut standby = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        c.feed(&standby.encode(&Message::ServerHello {
            version: PROTOCOL_VERSION,
            width: 32,
            height: 32,
            depth: 24,
        }));
        assert!(!c.resume_pending());
        assert!(c.needs_refresh(), "a cold restart presumes a stale display");
        assert_eq!(c.cache_len(), 0, "the mirrored store is dropped");
        let m = c.resilience_metrics();
        assert_eq!(m.resumes(), 0);
        assert_eq!(m.cold_fallbacks(), 1);
        // The full refresh then recovers the display as usual.
        c.feed(&standby.encode(&Message::Display(DisplayCommand::Sfill {
            rect: Rect::new(0, 0, 32, 32),
            color: Color::rgb(4, 4, 4),
        })));
        assert!(!c.needs_refresh());
    }

    #[test]
    fn resume_with_half_frame_pending_goes_cold_immediately() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let bytes = fill(Rect::new(0, 0, 8, 8), Color::rgb(1, 1, 1));
        c.feed(&bytes[..4]);
        assert!(c.pending_bytes() > 0);
        // A half-received frame cannot be stitched onto the standby's
        // stream: the redial downgrades to a cold reconnect.
        assert!(!c.resume());
        assert!(!c.resume_pending());
        assert_eq!(c.pending_bytes(), 0);
        assert!(c.needs_refresh());
        let m = c.resilience_metrics();
        assert_eq!(m.cold_fallbacks(), 1);
        assert_eq!(m.reconnects(), 1);
    }

    #[test]
    fn ping_over_the_wire_yields_a_pong() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let bytes = encode_message(&Message::Ping {
            seq: 3,
            timestamp_us: 99,
        });
        c.feed(&bytes);
        match c.take_pong() {
            Some(Message::Pong { seq: 3, timestamp_us: 99 }) => {}
            other => panic!("{other:?}"),
        }
        assert!(c.take_pong().is_none());
    }
}
