//! The client's wire-facing layer: byte stream in, display out.
//!
//! [`StreamClient`] couples a [`FrameReader`] to a [`ThincClient`]:
//! raw bytes from the connection are fed in, complete messages are
//! decoded and applied, and decode failures are survived — the
//! reader scans forward to the next plausible frame boundary and the
//! client flags that it wants a full refresh from the server (the
//! session's true state lives there, so recovery is always possible).
//! Every error, resync, and skipped byte is counted in the client's
//! resilience accounting.

use thinc_protocol::message::Message;
use thinc_protocol::wire::FrameReader;
use thinc_raster::PixelFormat;

use crate::client::ThincClient;
use crate::hardware::HardwareCaps;

/// A [`ThincClient`] fed directly from the wire, with decode-error
/// recovery.
pub struct StreamClient {
    client: ThincClient,
    reader: FrameReader,
    /// Set when damage forced the reader to skip bytes: the display
    /// may now be stale and the server should resync us.
    needs_refresh: bool,
    resilience: thinc_telemetry::ResilienceMetrics,
}

impl StreamClient {
    /// A stream client with the given display geometry.
    pub fn new(width: u32, height: u32, format: PixelFormat) -> Self {
        Self::wrap(ThincClient::new(width, height, format))
    }

    /// A stream client with explicit hardware capabilities.
    pub fn with_hardware(width: u32, height: u32, format: PixelFormat, caps: HardwareCaps) -> Self {
        Self::wrap(ThincClient::with_hardware(width, height, format, caps))
    }

    /// Wraps an existing client.
    pub fn wrap(client: ThincClient) -> Self {
        Self {
            client,
            reader: FrameReader::new(),
            needs_refresh: false,
            resilience: thinc_telemetry::ResilienceMetrics::new(),
        }
    }

    /// Feeds bytes from the connection and applies every complete
    /// message. Damage never panics or stalls: a decode error is
    /// counted, the reader scans to the next plausible frame start,
    /// and [`needs_refresh`](Self::needs_refresh) is raised so the
    /// caller can request a server resync. Returns the number of
    /// messages applied.
    pub fn feed(&mut self, bytes: &[u8]) -> usize {
        self.reader.feed(bytes);
        let mut applied = 0;
        loop {
            match self.reader.next_message() {
                Ok(Some(msg)) => {
                    self.client.apply(&msg);
                    applied += 1;
                }
                Ok(None) => break,
                Err(_) => {
                    self.resilience.record_decode_error();
                    let skipped = self.reader.resync();
                    self.resilience.record_stream_resync(skipped as u64);
                    self.needs_refresh = true;
                }
            }
        }
        applied
    }

    /// Whether damage has been skipped since the last check — the
    /// display may be stale and a server resync is in order.
    pub fn needs_refresh(&self) -> bool {
        self.needs_refresh
    }

    /// Consumes the refresh flag (call when the resync request has
    /// been sent).
    pub fn take_needs_refresh(&mut self) -> bool {
        std::mem::take(&mut self.needs_refresh)
    }

    /// Resets the wire state for a fresh connection (reconnect): the
    /// reader drops any half-received frame; the display keeps its
    /// content until the server's resync overwrites it.
    pub fn reconnect(&mut self) {
        self.reader = FrameReader::new();
        self.needs_refresh = false;
        self.resilience.record_reconnect();
    }

    /// Any pong the client owes the server (echo of a liveness ping).
    pub fn take_pong(&mut self) -> Option<Message> {
        self.client.take_pong()
    }

    /// Bytes buffered waiting for a complete frame.
    pub fn pending_bytes(&self) -> usize {
        self.reader.pending_bytes()
    }

    /// Client-side resilience accounting (decode errors, resyncs,
    /// skipped bytes, reconnects).
    pub fn resilience_metrics(&self) -> &thinc_telemetry::ResilienceMetrics {
        &self.resilience
    }

    /// The wrapped display client.
    pub fn client(&self) -> &ThincClient {
        &self.client
    }

    /// Mutable access to the wrapped client.
    pub fn client_mut(&mut self) -> &mut ThincClient {
        &mut self.client
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_protocol::commands::DisplayCommand;
    use thinc_protocol::wire::encode_message;
    use thinc_raster::{Color, Rect};

    fn fill(rect: Rect, color: Color) -> Vec<u8> {
        encode_message(&Message::Display(DisplayCommand::Sfill { rect, color }))
    }

    #[test]
    fn clean_stream_applies_messages() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let bytes = fill(Rect::new(0, 0, 32, 32), Color::rgb(9, 9, 9));
        // Fragmented arbitrarily.
        assert_eq!(c.feed(&bytes[..3]), 0);
        assert_eq!(c.feed(&bytes[3..]), 1);
        assert!(!c.needs_refresh());
        assert_eq!(
            c.client().framebuffer().get_pixel(5, 5),
            Some(Color::rgb(9, 9, 9))
        );
    }

    #[test]
    fn damage_is_skipped_counted_and_flags_refresh() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let mut stream = vec![0xEE, 0xFF, 0x13, 0x37]; // line noise
        stream.extend(fill(Rect::new(0, 0, 8, 8), Color::rgb(1, 2, 3)));
        let applied = c.feed(&stream);
        assert_eq!(applied, 1, "the message after the damage survives");
        assert!(c.needs_refresh());
        let m = c.resilience_metrics();
        assert!(m.decode_errors() >= 1);
        assert!(m.stream_resyncs() >= 1);
        assert!(m.skipped_bytes() >= 4);
        assert!(c.take_needs_refresh());
        assert!(!c.needs_refresh());
    }

    #[test]
    fn truncated_frame_waits_without_error() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let bytes = fill(Rect::new(0, 0, 8, 8), Color::rgb(4, 5, 6));
        c.feed(&bytes[..bytes.len() - 1]);
        assert_eq!(c.resilience_metrics().decode_errors(), 0);
        assert!(c.pending_bytes() > 0);
        assert_eq!(c.feed(&bytes[bytes.len() - 1..]), 1);
        assert_eq!(c.pending_bytes(), 0);
    }

    #[test]
    fn reconnect_clears_half_frames_and_counts() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let bytes = fill(Rect::new(0, 0, 8, 8), Color::rgb(7, 7, 7));
        c.feed(&bytes[..4]);
        assert!(c.pending_bytes() > 0);
        c.reconnect();
        assert_eq!(c.pending_bytes(), 0);
        assert_eq!(c.resilience_metrics().reconnects(), 1);
        // A fresh, whole message decodes normally afterwards.
        assert_eq!(c.feed(&bytes), 1);
    }

    #[test]
    fn ping_over_the_wire_yields_a_pong() {
        let mut c = StreamClient::new(32, 32, PixelFormat::Rgb888);
        let bytes = encode_message(&Message::Ping {
            seq: 3,
            timestamp_us: 99,
        });
        c.feed(&bytes);
        match c.take_pong() {
            Some(Message::Pong { seq: 3, timestamp_us: 99 }) => {}
            other => panic!("{other:?}"),
        }
        assert!(c.take_pong().is_none());
    }
}
