//! Client-side zoom control (§6).
//!
//! "To view a desktop session through a small-screen mobile device
//! such as a PDA, THINC initially presents a zoomed-out version of
//! the user's desktop, from where the user can zoom in on particular
//! sections of the display. When the user zooms in ... the client
//! presents a temporary magnified view of the desktop while it
//! requests updated content from the server."
//!
//! [`ZoomController`] tracks the view state, produces the `SetView`
//! message for the server, and builds the temporary magnified
//! preview from the pixels the client already has.

use thinc_protocol::message::Message;
use thinc_raster::{scale_image, Framebuffer, Point, Rect, ScaleFilter};

/// Client zoom state for one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoomController {
    session_w: u32,
    session_h: u32,
    viewport_w: u32,
    viewport_h: u32,
    view: Rect,
}

impl ZoomController {
    /// Starts zoomed out: the whole session mapped to the viewport.
    pub fn new(session_w: u32, session_h: u32, viewport_w: u32, viewport_h: u32) -> Self {
        Self {
            session_w,
            session_h,
            viewport_w,
            viewport_h,
            view: Rect::new(0, 0, session_w, session_h),
        }
    }

    /// The session-space region currently viewed.
    pub fn view(&self) -> Rect {
        self.view
    }

    /// The current magnification relative to zoomed-out (1.0 = whole
    /// desktop visible).
    pub fn zoom_factor(&self) -> f64 {
        self.session_w as f64 / self.view.w.max(1) as f64
    }

    /// Maps a viewport point to session coordinates under the current
    /// view.
    pub fn viewport_to_session(&self, p: Point) -> Point {
        Point::new(
            self.view.x + (p.x as i64 * self.view.w as i64 / self.viewport_w.max(1) as i64) as i32,
            self.view.y + (p.y as i64 * self.view.h as i64 / self.viewport_h.max(1) as i64) as i32,
        )
    }

    /// Zooms in by `factor` around the viewport point `center`,
    /// returning the `SetView` request to send to the server.
    ///
    /// The new view keeps the viewport's aspect ratio and is clamped
    /// inside the session.
    pub fn zoom_in(&mut self, center: Point, factor: u32) -> Message {
        let factor = factor.max(1);
        let c = self.viewport_to_session(center);
        let new_w = (self.view.w / factor).max(self.viewport_w.min(self.session_w) / 4).max(8);
        let new_h = (self.view.h / factor).max(self.viewport_h.min(self.session_h) / 4).max(8);
        let x = (c.x - new_w as i32 / 2)
            .clamp(0, (self.session_w.saturating_sub(new_w)) as i32);
        let y = (c.y - new_h as i32 / 2)
            .clamp(0, (self.session_h.saturating_sub(new_h)) as i32);
        self.view = Rect::new(x, y, new_w, new_h);
        Message::SetView { view: self.view }
    }

    /// Returns to the zoomed-out whole-desktop view.
    pub fn zoom_out(&mut self) -> Message {
        self.view = Rect::new(0, 0, self.session_w, self.session_h);
        Message::SetView { view: self.view }
    }

    /// Builds the temporary magnified preview shown while the server
    /// refresh is in flight: the sub-region of the *current* client
    /// framebuffer corresponding to the new view, upscaled to the
    /// viewport (nearest-neighbour — it is a stopgap image).
    ///
    /// `old_view` is the view the framebuffer currently shows.
    pub fn magnify_preview(&self, fb: &Framebuffer, old_view: Rect) -> Framebuffer {
        // Where does the new view sit inside the old one, in
        // viewport pixels?
        let rel_x = (self.view.x - old_view.x) as i64 * self.viewport_w as i64
            / old_view.w.max(1) as i64;
        let rel_y = (self.view.y - old_view.y) as i64 * self.viewport_h as i64
            / old_view.h.max(1) as i64;
        let rel_w = (self.view.w as i64 * self.viewport_w as i64 / old_view.w.max(1) as i64).max(1);
        let rel_h = (self.view.h as i64 * self.viewport_h as i64 / old_view.h.max(1) as i64).max(1);
        let src = Rect::new(rel_x as i32, rel_y as i32, rel_w as u32, rel_h as u32);
        let clip = src.intersection(&fb.bounds());
        if clip.is_empty() {
            return Framebuffer::new(self.viewport_w, self.viewport_h, fb.format());
        }
        let mut cut = Framebuffer::new(clip.w, clip.h, fb.format());
        let (_, raw) = fb.get_raw(&clip);
        cut.put_raw(&Rect::new(0, 0, clip.w, clip.h), &raw);
        scale_image(&cut, self.viewport_w, self.viewport_h, ScaleFilter::Nearest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_raster::{Color, PixelFormat};

    fn controller() -> ZoomController {
        ZoomController::new(1024, 768, 320, 240)
    }

    #[test]
    fn starts_zoomed_out() {
        let z = controller();
        assert_eq!(z.view(), Rect::new(0, 0, 1024, 768));
        assert!((z.zoom_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zoom_in_narrows_view_around_center() {
        let mut z = controller();
        let msg = z.zoom_in(Point::new(160, 120), 2);
        let Message::SetView { view } = msg else { panic!("{msg:?}") };
        assert_eq!(view, z.view());
        assert_eq!(view.w, 512);
        assert_eq!(view.h, 384);
        // Centered on the middle of the session.
        assert!(view.contains_point(Point::new(512, 384)));
        assert!((z.zoom_factor() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zoom_clamps_at_session_edges() {
        let mut z = controller();
        z.zoom_in(Point::new(0, 0), 4);
        let v = z.view();
        assert!(v.x >= 0 && v.y >= 0);
        assert!(v.right() <= 1024 && v.bottom() <= 768);
    }

    #[test]
    fn repeated_zoom_has_floor() {
        let mut z = controller();
        for _ in 0..10 {
            z.zoom_in(Point::new(160, 120), 4);
        }
        assert!(z.view().w >= 8);
        assert!(z.view().h >= 8);
    }

    #[test]
    fn zoom_out_restores_full_view() {
        let mut z = controller();
        z.zoom_in(Point::new(10, 10), 4);
        let msg = z.zoom_out();
        assert!(matches!(msg, Message::SetView { view } if view == Rect::new(0, 0, 1024, 768)));
    }

    #[test]
    fn viewport_to_session_mapping() {
        let mut z = controller();
        // Zoomed out: viewport (160,120) is session (512,384).
        assert_eq!(z.viewport_to_session(Point::new(160, 120)), Point::new(512, 384));
        z.zoom_in(Point::new(160, 120), 2);
        // Zoomed 2x around center: viewport origin maps to view origin.
        let v = z.view();
        assert_eq!(z.viewport_to_session(Point::new(0, 0)), Point::new(v.x, v.y));
    }

    #[test]
    fn magnify_preview_upscales_existing_pixels() {
        let mut z = controller();
        let mut fb = Framebuffer::new(320, 240, PixelFormat::Rgb888);
        // Mark the center of the zoomed-out desktop.
        fb.fill_rect(&Rect::new(150, 110, 20, 20), Color::rgb(200, 10, 10));
        let old_view = z.view();
        z.zoom_in(Point::new(160, 120), 2);
        let preview = z.magnify_preview(&fb, old_view);
        assert_eq!((preview.width(), preview.height()), (320, 240));
        // The marked center should now dominate the middle.
        let c = preview.get_pixel(160, 120).unwrap();
        assert_eq!(c, Color::rgb(200, 10, 10));
    }
}
