//! The THINC client.
//!
//! Executes protocol messages against a local framebuffer. The client
//! holds only transient soft state: everything it knows arrived over
//! the wire, so after any message sequence its framebuffer must be
//! byte-identical to the server's screen (modulo in-flight updates) —
//! the property the integration tests verify.

use std::collections::HashMap;

use thinc_protocol::commands::{DisplayCommand, RawEncoding};
use thinc_protocol::message::Message;
use thinc_raster::{Framebuffer, PixelFormat, Rect, YuvFormat, YuvFrame};

use crate::hardware::{ClientHardware, HardwareCaps};

/// Largest width or height the client will honor for wire-controlled
/// geometry (video destinations, pattern tiles). These dimensions
/// drive local allocations, so a corrupted or hostile message must not
/// be able to request gigabytes; anything past an 8K screen is bogus.
const MAX_WIRE_DIM: u32 = 8_192;

/// Whether wire-supplied dimensions are usable for allocation.
fn sane_dims(w: u32, h: u32) -> bool {
    (1..=MAX_WIRE_DIM).contains(&w) && (1..=MAX_WIRE_DIM).contains(&h)
}

/// A video overlay the client is currently showing.
#[derive(Debug, Clone)]
struct Overlay {
    format: YuvFormat,
    src_width: u32,
    src_height: u32,
    dst: Rect,
    frames_shown: u32,
    last_timestamp_us: u64,
}

/// Client execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Messages applied.
    pub messages: u64,
    /// Display commands executed, by type.
    pub raw: u64,
    /// `COPY` commands executed.
    pub copy: u64,
    /// `SFILL` commands executed.
    pub sfill: u64,
    /// `PFILL` commands executed.
    pub pfill: u64,
    /// `BITMAP` commands executed.
    pub bitmap: u64,
    /// Video frames displayed.
    pub video_frames: u64,
    /// Audio bytes received.
    pub audio_bytes: u64,
    /// Commands rejected as malformed.
    pub errors: u64,
}

/// A THINC client with a local framebuffer.
#[derive(Debug)]
pub struct ThincClient {
    fb: Framebuffer,
    hw: ClientHardware,
    overlays: HashMap<u32, Overlay>,
    stats: ClientStats,
    audio_timestamps: Vec<u64>,
    cursor: crate::cursor::CursorState,
    pending_pong: Option<Message>,
}

impl ThincClient {
    /// Creates a client whose framebuffer is `width`×`height` in
    /// `format` (the viewport geometry it announced to the server).
    pub fn new(width: u32, height: u32, format: PixelFormat) -> Self {
        Self::with_hardware(width, height, format, HardwareCaps::commodity())
    }

    /// Creates a client with explicit hardware capabilities.
    pub fn with_hardware(width: u32, height: u32, format: PixelFormat, caps: HardwareCaps) -> Self {
        Self {
            fb: Framebuffer::new(width, height, format),
            hw: ClientHardware::new(caps),
            overlays: HashMap::new(),
            stats: ClientStats::default(),
            audio_timestamps: Vec::new(),
            cursor: crate::cursor::CursorState::new(),
            pending_pong: None,
        }
    }

    /// Takes the heartbeat reply owed to the server, if a
    /// [`Message::Ping`] was applied since the last call. The caller
    /// owns the uplink and sends it.
    pub fn take_pong(&mut self) -> Option<Message> {
        self.pending_pong.take()
    }

    /// The client's framebuffer.
    pub fn framebuffer(&self) -> &Framebuffer {
        &self.fb
    }

    /// Execution statistics.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The hardware cost model (client processing time accounting).
    pub fn hardware(&self) -> &ClientHardware {
        &self.hw
    }

    /// The hardware cost model, mutably (reset between phases).
    pub fn hardware_mut(&mut self) -> &mut ClientHardware {
        &mut self.hw
    }

    /// Timestamps of received audio packets (A/V sync verification).
    pub fn audio_timestamps(&self) -> &[u64] {
        &self.audio_timestamps
    }

    /// The cursor overlay state.
    pub fn cursor(&self) -> &crate::cursor::CursorState {
        &self.cursor
    }

    /// The image to present: framebuffer with the cursor composited
    /// over it (save-under; the base framebuffer is unmodified).
    pub fn presented(&self) -> Framebuffer {
        self.cursor.present(&self.fb)
    }

    /// Applies one protocol message.
    pub fn apply(&mut self, msg: &Message) {
        self.stats.messages += 1;
        match msg {
            // Handshake traffic (including the client-originated
            // resume request) carries no drawing.
            Message::ServerHello { .. }
            | Message::ClientHello { .. }
            | Message::SessionResume { .. } => {}
            Message::Display(cmd) => self.execute(cmd),
            Message::VideoInit {
                id,
                format,
                src_width,
                src_height,
                dst,
            } => {
                // Stream geometry is wire-controlled and sizes local
                // buffers; reject corrupt values up front.
                if !sane_dims(*src_width, *src_height) || !sane_dims(dst.w, dst.h) {
                    self.stats.errors += 1;
                    return;
                }
                self.overlays.insert(
                    *id,
                    Overlay {
                        format: *format,
                        src_width: *src_width,
                        src_height: *src_height,
                        dst: *dst,
                        frames_shown: 0,
                        last_timestamp_us: 0,
                    },
                );
            }
            Message::VideoData {
                id,
                timestamp_us,
                data,
                ..
            } => {
                let Some(ov) = self.overlays.get_mut(id) else {
                    self.stats.errors += 1;
                    return;
                };
                let expected = ov.format.frame_size(ov.src_width, ov.src_height);
                if data.len() != expected {
                    self.stats.errors += 1;
                    return;
                }
                ov.frames_shown += 1;
                ov.last_timestamp_us = *timestamp_us;
                let (dst, sw, sh, fmt) = (ov.dst, ov.src_width, ov.src_height, ov.format);
                // The overlay "hardware": colorspace-convert and scale
                // to the destination rectangle.
                let frame = YuvFrame::from_data(fmt, sw, sh, data.clone());
                let rgb = frame.to_rgb_scaled(dst.w, dst.h, self.fb.format());
                let (clip, raw) = rgb.get_raw(&Rect::new(0, 0, dst.w, dst.h));
                if !clip.is_empty() {
                    self.fb.put_raw(&Rect::new(dst.x, dst.y, clip.w, clip.h), &raw);
                }
                self.hw.video(sw as u64 * sh as u64, dst.area());
                self.stats.video_frames += 1;
            }
            Message::VideoMove { id, dst } => {
                if !sane_dims(dst.w, dst.h) {
                    self.stats.errors += 1;
                    return;
                }
                if let Some(ov) = self.overlays.get_mut(id) {
                    ov.dst = *dst;
                } else {
                    self.stats.errors += 1;
                }
            }
            Message::VideoEnd { id } => {
                self.overlays.remove(id);
            }
            Message::Audio {
                timestamp_us, data, ..
            } => {
                self.stats.audio_bytes += data.len() as u64;
                self.audio_timestamps.push(*timestamp_us);
            }
            Message::CursorShape {
                width,
                height,
                hot_x,
                hot_y,
                pixels,
            } => {
                if !self.cursor.set_shape(*width, *height, *hot_x, *hot_y, pixels) {
                    self.stats.errors += 1;
                }
            }
            Message::CursorMove { x, y } => {
                self.cursor.move_to(*x, *y);
            }
            Message::Ping { seq, timestamp_us } => {
                self.pending_pong = Some(Message::Pong {
                    seq: *seq,
                    timestamp_us: *timestamp_us,
                });
            }
            Message::CacheRef { .. } => {
                // Cache references are resolved by the stream layer
                // (`StreamClient`) against its content store before the
                // resolved payload is applied here; an unresolved
                // reference reaching the raw client is a no-op.
            }
            Message::Input(_)
            | Message::Resize { .. }
            | Message::SetView { .. }
            | Message::Pong { .. }
            | Message::RefreshRequest { .. }
            | Message::CacheMiss { .. } => {
                // Client-originated; ignore if echoed.
            }
        }
    }

    /// Executes one display command on the local framebuffer.
    fn execute(&mut self, cmd: &DisplayCommand) {
        match cmd {
            DisplayCommand::Raw {
                rect,
                encoding,
                data,
            } => {
                let bpp = self.fb.format().bytes_per_pixel();
                let needed = rect.area() as usize * bpp;
                let pixels: Vec<u8> = match encoding {
                    RawEncoding::None => data.to_vec(),
                    RawEncoding::PngLike => {
                        self.hw.decompress(data.len() as u64);
                        let stride = rect.w as usize * bpp;
                        match thinc_compress::pnglike::decompress(data, bpp, stride) {
                            Some(d) => d,
                            None => {
                                self.stats.errors += 1;
                                return;
                            }
                        }
                    }
                };
                if pixels.len() < needed {
                    self.stats.errors += 1;
                    return;
                }
                self.fb.put_raw(rect, &pixels);
                self.hw.put(rect.area());
                self.stats.raw += 1;
            }
            DisplayCommand::Copy {
                src_rect,
                dst_x,
                dst_y,
            } => {
                self.fb.copy_rect(src_rect, *dst_x, *dst_y);
                self.hw.copy(src_rect.area());
                self.stats.copy += 1;
            }
            DisplayCommand::Sfill { rect, color } => {
                self.fb.fill_rect(rect, *color);
                self.hw.fill(rect.area());
                self.stats.sfill += 1;
            }
            DisplayCommand::Pfill { rect, tile } => {
                if !sane_dims(tile.width, tile.height)
                    || tile.pixels.len()
                        < tile.width as usize
                            * tile.height as usize
                            * self.fb.format().bytes_per_pixel()
                {
                    self.stats.errors += 1;
                    return;
                }
                let mut t = Framebuffer::new(tile.width, tile.height, self.fb.format());
                t.put_raw(&Rect::new(0, 0, tile.width, tile.height), &tile.pixels);
                self.fb.tile_rect(rect, &t);
                self.hw.pattern(rect.area());
                self.stats.pfill += 1;
            }
            DisplayCommand::Bitmap { rect, bits, fg, bg } => {
                let row_bytes = (rect.w as usize).div_ceil(8);
                if bits.len() < row_bytes * rect.h as usize {
                    self.stats.errors += 1;
                    return;
                }
                self.fb.bitmap_rect(rect, bits, *fg, *bg);
                self.hw.pattern(rect.area());
                self.stats.bitmap += 1;
            }
        }
    }

    /// Applies a batch of messages in order.
    pub fn apply_all<'a>(&mut self, msgs: impl IntoIterator<Item = &'a Message>) {
        for m in msgs {
            self.apply(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_protocol::commands::Tile;
    use thinc_raster::Color;

    fn client() -> ThincClient {
        ThincClient::new(64, 64, PixelFormat::Rgb888)
    }

    #[test]
    fn executes_sfill() {
        let mut c = client();
        c.apply(&Message::Display(DisplayCommand::Sfill {
            rect: Rect::new(0, 0, 8, 8),
            color: Color::rgb(1, 2, 3),
        }));
        assert_eq!(c.framebuffer().get_pixel(4, 4), Some(Color::rgb(1, 2, 3)));
        assert_eq!(c.stats().sfill, 1);
    }

    #[test]
    fn executes_compressed_raw() {
        let mut c = client();
        let pixels = vec![9u8; 16 * 16 * 3];
        let packed = thinc_compress::pnglike::compress(&pixels, 3, 48);
        c.apply(&Message::Display(DisplayCommand::Raw {
            rect: Rect::new(0, 0, 16, 16),
            encoding: RawEncoding::PngLike,
            data: packed.into(),
        }));
        assert_eq!(c.framebuffer().get_pixel(8, 8), Some(Color::rgb(9, 9, 9)));
        assert_eq!(c.stats().errors, 0);
    }

    #[test]
    fn corrupt_compressed_raw_counts_error() {
        let mut c = client();
        c.apply(&Message::Display(DisplayCommand::Raw {
            rect: Rect::new(0, 0, 16, 16),
            encoding: RawEncoding::PngLike,
            data: vec![0xFF, 0x22].into(),
        }));
        assert_eq!(c.stats().errors, 1);
    }

    #[test]
    fn short_raw_rejected() {
        let mut c = client();
        c.apply(&Message::Display(DisplayCommand::Raw {
            rect: Rect::new(0, 0, 16, 16),
            encoding: RawEncoding::None,
            data: vec![0; 10].into(),
        }));
        assert_eq!(c.stats().errors, 1);
    }

    #[test]
    fn copy_scrolls_locally() {
        let mut c = client();
        c.apply(&Message::Display(DisplayCommand::Sfill {
            rect: Rect::new(0, 0, 64, 8),
            color: Color::WHITE,
        }));
        c.apply(&Message::Display(DisplayCommand::Copy {
            src_rect: Rect::new(0, 0, 64, 8),
            dst_x: 0,
            dst_y: 32,
        }));
        assert_eq!(c.framebuffer().get_pixel(10, 36), Some(Color::WHITE));
    }

    #[test]
    fn video_stream_lifecycle() {
        let mut c = client();
        let frame = YuvFrame::new(YuvFormat::Yv12, 8, 8);
        c.apply(&Message::VideoInit {
            id: 0,
            format: YuvFormat::Yv12,
            src_width: 8,
            src_height: 8,
            dst: Rect::new(0, 0, 32, 32),
        });
        c.apply(&Message::VideoData {
            id: 0,
            seq: 0,
            timestamp_us: 0,
            data: frame.data.clone(),
        });
        assert_eq!(c.stats().video_frames, 1);
        // Zeroed YV12 decodes to green-ish; just check it drew.
        assert!(c.framebuffer().get_pixel(16, 16).is_some());
        c.apply(&Message::VideoEnd { id: 0 });
        // Frames for dead streams are errors.
        c.apply(&Message::VideoData {
            id: 0,
            seq: 1,
            timestamp_us: 1,
            data: frame.data,
        });
        assert_eq!(c.stats().errors, 1);
    }

    #[test]
    fn video_wrong_size_rejected() {
        let mut c = client();
        c.apply(&Message::VideoInit {
            id: 0,
            format: YuvFormat::Yv12,
            src_width: 8,
            src_height: 8,
            dst: Rect::new(0, 0, 8, 8),
        });
        c.apply(&Message::VideoData {
            id: 0,
            seq: 0,
            timestamp_us: 0,
            data: vec![0; 5],
        });
        assert_eq!(c.stats().errors, 1);
        assert_eq!(c.stats().video_frames, 0);
    }

    #[test]
    fn audio_recorded() {
        let mut c = client();
        c.apply(&Message::Audio {
            seq: 0,
            timestamp_us: 123,
            data: vec![0; 100],
        });
        assert_eq!(c.stats().audio_bytes, 100);
        assert_eq!(c.audio_timestamps(), &[123]);
    }

    #[test]
    fn bad_pfill_rejected() {
        let mut c = client();
        c.apply(&Message::Display(DisplayCommand::Pfill {
            rect: Rect::new(0, 0, 8, 8),
            tile: Tile {
                width: 0,
                height: 0,
                pixels: vec![],
            },
        }));
        assert_eq!(c.stats().errors, 1);
    }

    #[test]
    fn absurd_wire_geometry_rejected() {
        let mut c = client();
        // A corrupted VideoInit must not size local buffers.
        c.apply(&Message::VideoInit {
            id: 0,
            format: YuvFormat::Yv12,
            src_width: u32::MAX,
            src_height: 8,
            dst: Rect::new(0, 0, 8, 8),
        });
        assert_eq!(c.stats().errors, 1);
        c.apply(&Message::VideoInit {
            id: 1,
            format: YuvFormat::Yv12,
            src_width: 8,
            src_height: 8,
            dst: Rect::new(0, 0, u32::MAX, u32::MAX),
        });
        assert_eq!(c.stats().errors, 2);
        // Same for a VideoMove onto a live stream.
        c.apply(&Message::VideoInit {
            id: 2,
            format: YuvFormat::Yv12,
            src_width: 8,
            src_height: 8,
            dst: Rect::new(0, 0, 8, 8),
        });
        c.apply(&Message::VideoMove {
            id: 2,
            dst: Rect::new(0, 0, 0, u32::MAX),
        });
        assert_eq!(c.stats().errors, 3);
        // And for an oversized pattern tile.
        c.apply(&Message::Display(DisplayCommand::Pfill {
            rect: Rect::new(0, 0, 8, 8),
            tile: Tile {
                width: u32::MAX,
                height: u32::MAX,
                pixels: vec![0; 16],
            },
        }));
        assert_eq!(c.stats().errors, 4);
    }

    #[test]
    fn ping_produces_pong() {
        let mut c = client();
        assert_eq!(c.take_pong(), None);
        c.apply(&Message::Ping {
            seq: 3,
            timestamp_us: 777,
        });
        assert_eq!(
            c.take_pong(),
            Some(Message::Pong {
                seq: 3,
                timestamp_us: 777
            })
        );
        // Consumed: a second take returns nothing.
        assert_eq!(c.take_pong(), None);
    }
}
