//! The client hardware model.
//!
//! THINC's commands "mimic operations commonly found in client display
//! hardware and represent a subset of operations accelerated by most
//! graphics subsystems" (§3). This module models such a device: which
//! operations it accelerates, and what each operation costs — the
//! basis for accounting client processing time, which the paper's
//! instrumented clients measure (§8.2). Costs are in abstract cycles;
//! the bench harness converts them to time with a clock rate (the
//! testbed client is a 450 MHz Pentium II).

/// What the client's video card accelerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareCaps {
    /// Accelerated solid fill.
    pub accel_fill: bool,
    /// Accelerated screen-to-screen copy.
    pub accel_copy: bool,
    /// Accelerated pattern/stipple fill.
    pub accel_pattern: bool,
    /// YUV overlay with hardware colorspace conversion and scaling.
    pub yuv_overlay: bool,
    /// Hardware alpha compositing (rare on 2005-era 2D cards; THINC
    /// falls back to server-side software rendering when absent, §3).
    pub alpha_compositing: bool,
}

impl HardwareCaps {
    /// A typical 2005 commodity card: 2D acceleration + YUV overlay,
    /// no alpha compositing.
    pub fn commodity() -> Self {
        Self {
            accel_fill: true,
            accel_copy: true,
            accel_pattern: true,
            yuv_overlay: true,
            alpha_compositing: false,
        }
    }

    /// A bare dumb framebuffer (everything in software).
    pub fn dumb_framebuffer() -> Self {
        Self {
            accel_fill: false,
            accel_copy: false,
            accel_pattern: false,
            yuv_overlay: false,
            alpha_compositing: false,
        }
    }
}

/// Per-operation cost model (abstract cycles).
#[derive(Debug, Clone)]
pub struct ClientHardware {
    caps: HardwareCaps,
    cycles: u64,
}

/// Cycles per pixel for software raster operations.
const SW_PIXEL_CYCLES: u64 = 8;
/// Cycles per pixel when the operation is hardware accelerated (setup
/// amortized; blitters move multiple pixels per cycle).
const HW_PIXEL_CYCLES: u64 = 1;
/// Fixed per-command dispatch cost.
const DISPATCH_CYCLES: u64 = 200;
/// Cycles per byte of software YUV→RGB conversion.
const SW_YUV_CYCLES_PER_PX: u64 = 20;
/// Cycles per byte of decompression (client-side PNG-like decode).
const DECOMPRESS_CYCLES_PER_BYTE: u64 = 12;

impl ClientHardware {
    /// A device with the given capabilities.
    pub fn new(caps: HardwareCaps) -> Self {
        Self { caps, cycles: 0 }
    }

    /// The capability set.
    pub fn caps(&self) -> HardwareCaps {
        self.caps
    }

    /// Total cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Resets the cycle counter (between benchmark phases).
    pub fn reset(&mut self) {
        self.cycles = 0;
    }

    fn raster(&mut self, pixels: u64, accelerated: bool) {
        let per_px = if accelerated { HW_PIXEL_CYCLES } else { SW_PIXEL_CYCLES };
        self.cycles += DISPATCH_CYCLES + pixels * per_px;
    }

    /// Accounts a solid fill of `pixels`.
    pub fn fill(&mut self, pixels: u64) {
        self.raster(pixels, self.caps.accel_fill);
    }

    /// Accounts a copy of `pixels`.
    pub fn copy(&mut self, pixels: u64) {
        self.raster(pixels, self.caps.accel_copy);
    }

    /// Accounts a pattern or stipple fill of `pixels`.
    pub fn pattern(&mut self, pixels: u64) {
        self.raster(pixels, self.caps.accel_pattern);
    }

    /// Accounts a raw pixel write of `pixels` (memory bound; never
    /// "accelerated" beyond a blit).
    pub fn put(&mut self, pixels: u64) {
        self.raster(pixels, true);
    }

    /// Accounts displaying a YUV frame of `src_pixels` scaled to
    /// `dst_pixels`. With an overlay, conversion and scaling are free
    /// beyond the transfer; in software both stages are paid.
    pub fn video(&mut self, src_pixels: u64, dst_pixels: u64) {
        if self.caps.yuv_overlay {
            self.cycles += DISPATCH_CYCLES + src_pixels * HW_PIXEL_CYCLES;
        } else {
            self.cycles +=
                DISPATCH_CYCLES + src_pixels * SW_YUV_CYCLES_PER_PX + dst_pixels * SW_PIXEL_CYCLES;
        }
    }

    /// Accounts decompressing `bytes` of RAW payload.
    pub fn decompress(&mut self, bytes: u64) {
        self.cycles += bytes * DECOMPRESS_CYCLES_PER_BYTE;
    }

    /// Converts consumed cycles to seconds at `clock_hz`.
    pub fn seconds_at(&self, clock_hz: u64) -> f64 {
        self.cycles as f64 / clock_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceleration_is_cheaper() {
        let mut hw = ClientHardware::new(HardwareCaps::commodity());
        hw.fill(10_000);
        let fast = hw.cycles();
        let mut sw = ClientHardware::new(HardwareCaps::dumb_framebuffer());
        sw.fill(10_000);
        assert!(fast < sw.cycles());
    }

    #[test]
    fn overlay_decouples_cost_from_view_size() {
        // Fullscreen playback costs the same as windowed with an
        // overlay — the §4.2 property.
        let mut hw = ClientHardware::new(HardwareCaps::commodity());
        hw.video(352 * 240, 352 * 240);
        let windowed = hw.cycles();
        hw.reset();
        hw.video(352 * 240, 1024 * 768);
        assert_eq!(hw.cycles(), windowed);
        // In software, fullscreen is much more expensive.
        let mut sw = ClientHardware::new(HardwareCaps::dumb_framebuffer());
        sw.video(352 * 240, 352 * 240);
        let sw_windowed = sw.cycles();
        sw.reset();
        sw.video(352 * 240, 1024 * 768);
        assert!(sw.cycles() > sw_windowed * 2);
    }

    #[test]
    fn seconds_scale_with_clock() {
        let mut hw = ClientHardware::new(HardwareCaps::commodity());
        hw.fill(450_000);
        let slow = hw.seconds_at(450_000_000); // The paper's client.
        let fast = hw.seconds_at(933_000_000); // The paper's server.
        assert!(slow > fast);
    }

    #[test]
    fn reset_clears() {
        let mut hw = ClientHardware::new(HardwareCaps::commodity());
        hw.copy(100);
        hw.reset();
        assert_eq!(hw.cycles(), 0);
    }
}
