//! Client-driven reconnection policy.
//!
//! The paper's client is deliberately stateless: after any outage the
//! server can always restore it with a full-view refresh (§2, §7).
//! What the paper leaves implicit — and the test harnesses used to
//! hand-drive — is *who asks* for that refresh. [`ReconnectPolicy`]
//! makes the client responsible: once the stream layer latches
//! `needs_refresh`, the policy emits
//! [`Message::RefreshRequest`](thinc_protocol::message::Message)
//! attempts on a seeded-jitter exponential backoff until the refresh
//! actually lands (full viewport coverage) or the attempt budget runs
//! out. Jitter is deterministic per seed so resilience runs replay
//! exactly.

use thinc_net::fault::SplitMix64;
use thinc_net::time::{SimDuration, SimTime};

/// Backoff and budget knobs for [`ReconnectPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconnectConfig {
    /// Delay scheduled after the first attempt; doubles per attempt.
    pub base_delay: SimDuration,
    /// Ceiling on the (pre-jitter) backoff delay.
    pub max_delay: SimDuration,
    /// Attempts before the policy gives up (the session is presumed
    /// gone and the user must intervene).
    pub max_attempts: u32,
    /// Seed for the jitter PRNG (deterministic replays).
    pub seed: u64,
}

impl Default for ReconnectConfig {
    fn default() -> Self {
        Self {
            base_delay: SimDuration::from_millis(200),
            max_delay: SimDuration::from_secs(10),
            max_attempts: 16,
            seed: 0x7EC0_4EC7,
        }
    }
}

/// Seeded-jitter exponential backoff over refresh attempts.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconnectPolicy {
    config: ReconnectConfig,
    rng: SplitMix64,
    attempts: u32,
    next_at: Option<SimTime>,
    gave_up: bool,
}

impl ReconnectPolicy {
    /// A fresh policy (no attempts made).
    pub fn new(config: ReconnectConfig) -> Self {
        Self {
            rng: SplitMix64::new(config.seed),
            config,
            attempts: 0,
            next_at: None,
            gave_up: false,
        }
    }

    /// The knobs in force.
    pub fn config(&self) -> ReconnectConfig {
        self.config
    }

    /// Attempts made since the last recovery.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Whether the attempt budget is exhausted.
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }

    /// When the next attempt is allowed, if one is scheduled.
    pub fn next_attempt_at(&self) -> Option<SimTime> {
        self.next_at
    }

    /// Asks whether an attempt may fire at `now`. Returns the 1-based
    /// attempt number when it may; schedules the next attempt with
    /// exponentially grown, jittered delay. `None` while backing off
    /// or after giving up.
    pub fn poll(&mut self, now: SimTime) -> Option<u32> {
        if self.gave_up {
            return None;
        }
        if let Some(at) = self.next_at {
            if now < at {
                return None;
            }
        }
        if self.attempts >= self.config.max_attempts {
            self.gave_up = true;
            return None;
        }
        self.attempts += 1;
        let exp = self.attempts.saturating_sub(1).min(20);
        let grown = self
            .config
            .base_delay
            .as_micros()
            .saturating_mul(1u64 << exp)
            .min(self.config.max_delay.as_micros());
        // Jitter in [0.5, 1.5): desynchronizes a fleet of clients
        // re-requesting after a shared outage, deterministically.
        let jittered = (grown as f64 * (0.5 + self.rng.next_f64())) as u64;
        self.next_at = Some(now + SimDuration::from_micros(jittered.max(1)));
        Some(self.attempts)
    }

    /// The refresh landed: reset the backoff for the next outage.
    pub fn note_recovered(&mut self) {
        self.attempts = 0;
        self.next_at = None;
        self.gave_up = false;
        self.rng = SplitMix64::new(self.config.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime((s * 1e6) as u64)
    }

    #[test]
    fn first_attempt_fires_immediately_then_backs_off() {
        let mut p = ReconnectPolicy::new(ReconnectConfig::default());
        assert_eq!(p.poll(secs(1.0)), Some(1));
        // Immediately re-polling is throttled by the scheduled delay.
        assert_eq!(p.poll(secs(1.0)), None);
        let at = p.next_attempt_at().unwrap();
        assert!(at > secs(1.0));
        assert_eq!(p.poll(at), Some(2));
    }

    #[test]
    fn delays_grow_until_the_cap() {
        let cfg = ReconnectConfig {
            base_delay: SimDuration::from_millis(100),
            max_delay: SimDuration::from_millis(400),
            max_attempts: 32,
            seed: 1,
        };
        let mut p = ReconnectPolicy::new(cfg);
        let mut now = secs(0.0);
        let mut delays = Vec::new();
        for _ in 0..6 {
            assert!(p.poll(now).is_some());
            let at = p.next_attempt_at().unwrap();
            delays.push(at.since(now).as_micros());
            now = at;
        }
        // Jitter is [0.5, 1.5)×, so the capped delay never exceeds
        // 1.5×max and the first never exceeds 1.5×base.
        assert!(delays[0] < 150_000);
        for d in &delays {
            assert!(*d < 600_000, "{d}");
        }
        // Later delays reflect growth: the 4th+ attempt is at the cap,
        // so it is at least 0.5×400ms.
        assert!(delays[5] >= 200_000);
    }

    #[test]
    fn budget_exhaustion_gives_up_and_recovery_resets() {
        let cfg = ReconnectConfig {
            max_attempts: 2,
            ..ReconnectConfig::default()
        };
        let mut p = ReconnectPolicy::new(cfg);
        let mut now = secs(0.0);
        assert_eq!(p.poll(now), Some(1));
        now = p.next_attempt_at().unwrap();
        assert_eq!(p.poll(now), Some(2));
        now = p.next_attempt_at().unwrap();
        assert_eq!(p.poll(now), None);
        assert!(p.gave_up());
        p.note_recovered();
        assert!(!p.gave_up());
        assert_eq!(p.poll(now), Some(1));
    }

    #[test]
    fn same_seed_replays_identically() {
        let cfg = ReconnectConfig::default();
        let (mut a, mut b) = (ReconnectPolicy::new(cfg), ReconnectPolicy::new(cfg));
        let mut now = secs(0.0);
        for _ in 0..5 {
            assert_eq!(a.poll(now), b.poll(now));
            assert_eq!(a.next_attempt_at(), b.next_attempt_at());
            now = a.next_attempt_at().unwrap();
        }
    }
}
