#![warn(missing_docs)]
//! THINC clients.
//!
//! The THINC client is a simple input/output device: it keeps a local
//! framebuffer, executes the five protocol commands (all of which map
//! directly onto commodity 2D hardware), hands YUV video data to the
//! "hardware" overlay for colorspace conversion and scaling, and
//! plays timestamped audio. The paper implemented several clients
//! (X, Java, Windows, PDA) plus an instrumented headless client used
//! for the PlanetLab experiments; this crate provides:
//!
//! - [`hardware`]: the client hardware model (acceleration
//!   capabilities and per-operation cost accounting, used for the
//!   client-processing-time measurements of §8.2),
//! - [`client`]: the full client ([`ThincClient`]) with a real
//!   framebuffer — byte-comparable against the server's screen,
//! - [`headless`]: the instrumented headless client that processes
//!   all display and audio data without a display, recording the
//!   statistics slow-motion benchmarking needs,
//! - [`stream`]: the wire-facing layer ([`StreamClient`]) that feeds
//!   raw connection bytes through the frame reader with decode-error
//!   recovery (skip damage, request a server resync, count it),
//! - [`reconnect`]: the client-driven reconnection policy
//!   ([`ReconnectPolicy`]) that turns a stale display into
//!   refresh requests on a seeded-jitter exponential backoff.

pub mod client;
pub mod cursor;
pub mod hardware;
pub mod headless;
pub mod reconnect;
pub mod stream;
pub mod zoom;

pub use client::ThincClient;
pub use hardware::{ClientHardware, HardwareCaps};
pub use headless::HeadlessClient;
pub use reconnect::{ReconnectConfig, ReconnectPolicy};
pub use stream::StreamClient;
pub use zoom::ZoomController;
