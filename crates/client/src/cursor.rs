//! Client-side cursor rendering.
//!
//! The cursor image is composited over the framebuffer locally with
//! save-under semantics: moving the pointer costs a handful of wire
//! bytes (`CursorMove`) and zero display updates, because the base
//! framebuffer is never modified — the cursor only exists in the
//! presented image.

use thinc_raster::{composite_rect, CompositeOp, Framebuffer, Point, Rect};

/// The client's cursor state.
#[derive(Debug, Clone, Default)]
pub struct CursorState {
    /// RGBA cursor image (None = no cursor defined).
    image: Option<Framebuffer>,
    hot: Point,
    /// Hotspot position in viewport coordinates.
    position: Option<Point>,
}

impl CursorState {
    /// No cursor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a cursor image (RGBA pixels, `w`×`h`, hotspot at
    /// `(hot_x, hot_y)`). Returns `false` when the pixel data is too
    /// short.
    pub fn set_shape(&mut self, w: u32, h: u32, hot_x: i32, hot_y: i32, pixels: &[u8]) -> bool {
        if pixels.len() < (w * h * 4) as usize || w == 0 || h == 0 {
            return false;
        }
        let mut img = Framebuffer::new(w, h, thinc_raster::PixelFormat::Rgba8888);
        img.put_raw(&Rect::new(0, 0, w, h), pixels);
        self.image = Some(img);
        self.hot = Point::new(hot_x, hot_y);
        true
    }

    /// Moves the cursor hotspot.
    pub fn move_to(&mut self, x: i32, y: i32) {
        self.position = Some(Point::new(x, y));
    }

    /// Whether a cursor is currently displayable.
    pub fn visible(&self) -> bool {
        self.image.is_some() && self.position.is_some()
    }

    /// Current hotspot position.
    pub fn position(&self) -> Option<Point> {
        self.position
    }

    /// Composites the cursor over a copy of `base` (save-under: the
    /// base framebuffer is untouched). Returns the presented image.
    pub fn present(&self, base: &Framebuffer) -> Framebuffer {
        let mut out = base.clone();
        let (Some(img), Some(pos)) = (&self.image, self.position) else {
            return out;
        };
        composite_rect(
            &mut out,
            img,
            &img.bounds(),
            pos.x - self.hot.x,
            pos.y - self.hot.y,
            CompositeOp::Over,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_raster::{Color, PixelFormat};

    fn arrow_pixels() -> Vec<u8> {
        // 4x4 opaque white block with transparent right half.
        let mut px = Vec::new();
        for _y in 0..4 {
            for x in 0..4 {
                if x < 2 {
                    px.extend_from_slice(&[255, 255, 255, 255]);
                } else {
                    px.extend_from_slice(&[0, 0, 0, 0]);
                }
            }
        }
        px
    }

    #[test]
    fn no_cursor_presents_base_unchanged() {
        let c = CursorState::new();
        let base = Framebuffer::new(8, 8, PixelFormat::Rgb888);
        assert_eq!(c.present(&base), base);
        assert!(!c.visible());
    }

    #[test]
    fn cursor_composites_with_alpha_and_save_under() {
        let mut c = CursorState::new();
        assert!(c.set_shape(4, 4, 0, 0, &arrow_pixels()));
        c.move_to(2, 2);
        assert!(c.visible());
        let mut base = Framebuffer::new(8, 8, PixelFormat::Rgb888);
        base.fill_rect(&Rect::new(0, 0, 8, 8), Color::rgb(10, 10, 10));
        let shown = c.present(&base);
        // Opaque cursor pixels show white; transparent ones show base.
        assert_eq!(shown.get_pixel(2, 2), Some(Color::WHITE));
        assert_eq!(shown.get_pixel(5, 2), Some(Color::rgb(10, 10, 10)));
        // Save-under: base unchanged.
        assert_eq!(base.get_pixel(2, 2), Some(Color::rgb(10, 10, 10)));
    }

    #[test]
    fn hotspot_offsets_the_image() {
        let mut c = CursorState::new();
        c.set_shape(4, 4, 2, 2, &arrow_pixels());
        c.move_to(4, 4);
        let mut base = Framebuffer::new(8, 8, PixelFormat::Rgb888);
        base.fill_rect(&Rect::new(0, 0, 8, 8), Color::BLACK);
        let shown = c.present(&base);
        // Image top-left lands at (2, 2) (position - hotspot).
        assert_eq!(shown.get_pixel(2, 2), Some(Color::WHITE));
    }

    #[test]
    fn short_pixel_data_rejected() {
        let mut c = CursorState::new();
        assert!(!c.set_shape(4, 4, 0, 0, &[0; 10]));
        assert!(!c.set_shape(0, 4, 0, 0, &[]));
    }

    #[test]
    fn cursor_clips_at_edges() {
        let mut c = CursorState::new();
        c.set_shape(4, 4, 0, 0, &arrow_pixels());
        c.move_to(-2, 7);
        let base = Framebuffer::new(8, 8, PixelFormat::Rgb888);
        let shown = c.present(&base); // Must not panic.
        assert_eq!(shown.width(), 8);
    }
}
