//! The instrumented headless client.
//!
//! "To measure THINC performance, we developed an instrumented
//! headless version of the THINC client that could process all
//! display and audio data but did not output the result to any
//! display or sound hardware" (§8.1). This client wraps the real one
//! (so all processing genuinely happens) and records the arrival
//! timeline the slow-motion measurements need: per-message arrival
//! times, bytes, and the time the last update of each phase finished
//! processing — which is how the paper accounts client processing
//! time on platforms it controls.

use thinc_net::time::SimTime;
use thinc_protocol::cache::CacheLru;
use thinc_protocol::message::Message;
use thinc_protocol::DEFAULT_CACHE_BUDGET;
use thinc_raster::PixelFormat;
use thinc_telemetry::ClientMetrics;

use crate::client::{ClientStats, ThincClient};

/// One recorded arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalRecord {
    /// When the message arrived.
    pub at: SimTime,
    /// Encoded message size in bytes.
    pub bytes: u64,
    /// Whether this was audio/video (vs display) data.
    pub av: bool,
}

/// The headless instrumented client.
#[derive(Debug)]
pub struct HeadlessClient {
    inner: ThincClient,
    arrivals: Vec<ArrivalRecord>,
    metrics: ClientMetrics,
    /// Virtual time the in-flight frame update was requested
    /// (set by [`Self::mark_frame_request`]); the next display
    /// arrival closes the latency sample.
    frame_requested: Option<SimTime>,
    /// Revision-3 content store, mirroring the server's per-client
    /// ledger: refs resolve here; the recorded arrival bytes stay the
    /// 13-byte ref — that *is* what crossed the wire.
    store: CacheLru<Message>,
    cache_hits: u64,
    cache_misses: u64,
}

impl HeadlessClient {
    /// Creates a headless client with the given viewport geometry.
    pub fn new(width: u32, height: u32, format: PixelFormat) -> Self {
        Self {
            inner: ThincClient::new(width, height, format),
            arrivals: Vec::new(),
            metrics: ClientMetrics::new(),
            frame_requested: None,
            store: CacheLru::new(DEFAULT_CACHE_BUDGET),
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// The wrapped client (full processing still happens).
    pub fn client(&self) -> &ThincClient {
        &self.inner
    }

    /// Client execution statistics.
    pub fn stats(&self) -> ClientStats {
        self.inner.stats()
    }

    /// Client-side telemetry: per-kind decode counts and
    /// request-to-screen frame latency.
    pub fn metrics(&self) -> &ClientMetrics {
        &self.metrics
    }

    /// Marks the virtual time a frame update was requested (a click,
    /// a scroll). The next display message to arrive closes the
    /// request-to-screen latency sample.
    pub fn mark_frame_request(&mut self, at: SimTime) {
        self.frame_requested = Some(at);
    }

    /// Processes a message that arrived at `at`.
    pub fn receive(&mut self, at: SimTime, msg: &Message) {
        let bytes = msg.wire_size();
        let av = matches!(
            msg,
            Message::Audio { .. }
                | Message::VideoInit { .. }
                | Message::VideoData { .. }
                | Message::VideoMove { .. }
                | Message::VideoEnd { .. }
        );
        self.arrivals.push(ArrivalRecord { at, bytes, av });
        // Resolve a revision-3 cache reference against the store
        // before any processing; message-level delivery is lossless,
        // so the mirrored LRUs cannot dangle (an unresolved ref here
        // is a wiring bug, counted and skipped).
        let resolved;
        let (msg, from_cache) = match msg {
            Message::CacheRef { hash } => match self.store.get(*hash) {
                Some(m) => {
                    self.cache_hits += 1;
                    resolved = m.clone();
                    (&resolved, true)
                }
                None => {
                    self.cache_misses += 1;
                    return;
                }
            },
            other => (other, false),
        };
        self.metrics
            .record_decoded(thinc_protocol::telemetry::command_kind(msg));
        if let (Some(t0), Message::Display(_)) = (self.frame_requested, msg) {
            self.metrics
                .record_frame_latency_us(at.0.saturating_sub(t0.0));
            self.frame_requested = None;
        }
        self.inner.apply(msg);
        // Mirror the server ledger: every cacheable full payload
        // received enters the store (resolved refs only re-ranked,
        // which `get` already did).
        if !from_cache {
            if let Some(key) = msg.cache_key() {
                self.store.insert(key, msg.wire_size(), msg.clone());
            }
        }
    }

    /// Refs resolved from the content store.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Refs that failed to resolve (always 0 over lossless delivery).
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// All recorded arrivals, in order.
    pub fn arrivals(&self) -> &[ArrivalRecord] {
        &self.arrivals
    }

    /// Arrival time of the last message at or after `since`.
    pub fn last_arrival_since(&self, since: SimTime) -> Option<SimTime> {
        self.arrivals
            .iter()
            .filter(|a| a.at >= since)
            .map(|a| a.at)
            .max()
    }

    /// Total bytes received.
    pub fn total_bytes(&self) -> u64 {
        self.arrivals.iter().map(|a| a.bytes).sum()
    }

    /// Total audio/video bytes received.
    pub fn av_bytes(&self) -> u64 {
        self.arrivals.iter().filter(|a| a.av).map(|a| a.bytes).sum()
    }

    /// Clears the arrival log (between benchmark phases).
    pub fn clear_arrivals(&mut self) {
        self.arrivals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_protocol::commands::DisplayCommand;
    use thinc_raster::{Color, Rect};

    fn display(rect: Rect) -> Message {
        Message::Display(DisplayCommand::Sfill {
            rect,
            color: Color::WHITE,
        })
    }

    #[test]
    fn records_arrivals_and_processes() {
        let mut h = HeadlessClient::new(64, 64, PixelFormat::Rgb888);
        h.receive(SimTime(100), &display(Rect::new(0, 0, 8, 8)));
        h.receive(SimTime(200), &display(Rect::new(8, 8, 8, 8)));
        assert_eq!(h.arrivals().len(), 2);
        assert_eq!(h.stats().sfill, 2);
        assert_eq!(h.client().framebuffer().get_pixel(4, 4), Some(Color::WHITE));
        assert_eq!(h.last_arrival_since(SimTime(150)), Some(SimTime(200)));
        assert_eq!(h.last_arrival_since(SimTime(300)), None);
    }

    #[test]
    fn separates_av_bytes() {
        let mut h = HeadlessClient::new(64, 64, PixelFormat::Rgb888);
        h.receive(SimTime(1), &display(Rect::new(0, 0, 4, 4)));
        h.receive(
            SimTime(2),
            &Message::Audio {
                seq: 0,
                timestamp_us: 0,
                data: vec![0; 500],
            },
        );
        assert!(h.av_bytes() >= 500);
        assert!(h.total_bytes() > h.av_bytes());
    }

    #[test]
    fn metrics_count_decodes_and_frame_latency() {
        use thinc_telemetry::CommandKind;
        let mut h = HeadlessClient::new(64, 64, PixelFormat::Rgb888);
        h.mark_frame_request(SimTime(1_000));
        h.receive(SimTime(1_850), &display(Rect::new(0, 0, 4, 4)));
        h.receive(SimTime(1_900), &display(Rect::new(4, 4, 4, 4)));
        assert_eq!(h.metrics().decoded(CommandKind::Sfill), 2);
        // One latency sample, closed by the first display arrival.
        assert_eq!(h.metrics().frame_latency_us().count(), 1);
        assert_eq!(h.metrics().frame_latency_us().max(), 850);
    }

    #[test]
    fn clear_resets_log_not_state() {
        let mut h = HeadlessClient::new(64, 64, PixelFormat::Rgb888);
        h.receive(SimTime(1), &display(Rect::new(0, 0, 4, 4)));
        h.clear_arrivals();
        assert!(h.arrivals().is_empty());
        assert_eq!(h.stats().sfill, 1); // Processing state persists.
    }
}
