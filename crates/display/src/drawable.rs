//! Drawables: the screen and offscreen pixmaps.
//!
//! Modern toolkits prepare interfaces in offscreen video memory and
//! copy them onscreen when ready (§4.1 of the paper) — the behaviour
//! THINC's offscreen-awareness optimization exists for. The drawable
//! store owns the screen framebuffer and every live pixmap.

use std::collections::HashMap;

use thinc_raster::{Framebuffer, PixelFormat};

/// Identifier of a drawable. [`SCREEN`] is the onscreen framebuffer;
/// all other ids are offscreen pixmaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DrawableId(pub u32);

/// The onscreen framebuffer's id.
pub const SCREEN: DrawableId = DrawableId(0);

impl DrawableId {
    /// Whether this id refers to the visible screen.
    pub fn is_screen(self) -> bool {
        self == SCREEN
    }
}

/// Owner of the screen and all offscreen pixmaps.
#[derive(Debug)]
pub struct DrawableStore {
    screen: Framebuffer,
    pixmaps: HashMap<DrawableId, Framebuffer>,
    next_id: u32,
}

impl DrawableStore {
    /// Creates a store with a `width`×`height` screen in `format`.
    pub fn new(width: u32, height: u32, format: PixelFormat) -> Self {
        Self {
            screen: Framebuffer::new(width, height, format),
            pixmaps: HashMap::new(),
            next_id: 1,
        }
    }

    /// The screen's pixel format.
    pub fn format(&self) -> PixelFormat {
        self.screen.format()
    }

    /// The visible screen.
    pub fn screen(&self) -> &Framebuffer {
        &self.screen
    }

    /// The visible screen, mutably.
    pub fn screen_mut(&mut self) -> &mut Framebuffer {
        &mut self.screen
    }

    /// Allocates a new offscreen pixmap and returns its id.
    pub fn create_pixmap(&mut self, width: u32, height: u32) -> DrawableId {
        let id = DrawableId(self.next_id);
        self.next_id += 1;
        self.pixmaps
            .insert(id, Framebuffer::new(width, height, self.screen.format()));
        id
    }

    /// Frees an offscreen pixmap. Freeing an unknown id is a no-op;
    /// the screen cannot be freed.
    pub fn free_pixmap(&mut self, id: DrawableId) {
        if !id.is_screen() {
            self.pixmaps.remove(&id);
        }
    }

    /// Looks up a drawable.
    pub fn get(&self, id: DrawableId) -> Option<&Framebuffer> {
        if id.is_screen() {
            Some(&self.screen)
        } else {
            self.pixmaps.get(&id)
        }
    }

    /// Looks up a drawable mutably.
    pub fn get_mut(&mut self, id: DrawableId) -> Option<&mut Framebuffer> {
        if id.is_screen() {
            Some(&mut self.screen)
        } else {
            self.pixmaps.get_mut(&id)
        }
    }

    /// Looks up two *distinct* drawables, one mutably (for copies).
    ///
    /// Returns `None` if either id is unknown or the ids are equal.
    pub fn get_pair_mut(
        &mut self,
        src: DrawableId,
        dst: DrawableId,
    ) -> Option<(&Framebuffer, &mut Framebuffer)> {
        if src == dst {
            return None;
        }
        // Split borrows between the screen and the pixmap map, or
        // between two map entries.
        if src.is_screen() {
            let dst_fb = self.pixmaps.get_mut(&dst)?;
            Some((&self.screen, dst_fb))
        } else if dst.is_screen() {
            let src_fb = self.pixmaps.get(&src)?;
            Some((src_fb, &mut self.screen))
        } else {
            // SAFETY-free approach: remove src temporarily is costly;
            // use raw pointers with a disjointness check instead.
            let src_ptr = self.pixmaps.get(&src)? as *const Framebuffer;
            let dst_fb = self.pixmaps.get_mut(&dst)?;
            // SAFETY: `src != dst` (checked above) and HashMap values
            // are distinct allocations, so the shared reference to the
            // source does not alias the mutable reference to the
            // destination. `get_mut` does not move other entries.
            let src_fb = unsafe { &*src_ptr };
            Some((src_fb, dst_fb))
        }
    }

    /// Number of live offscreen pixmaps.
    pub fn pixmap_count(&self) -> usize {
        self.pixmaps.len()
    }

    /// Ids of all live pixmaps (unordered).
    pub fn pixmap_ids(&self) -> impl Iterator<Item = DrawableId> + '_ {
        self.pixmaps.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_raster::{Color, Rect};

    fn store() -> DrawableStore {
        DrawableStore::new(64, 48, PixelFormat::Rgb888)
    }

    #[test]
    fn screen_is_drawable_zero() {
        let s = store();
        assert!(SCREEN.is_screen());
        assert_eq!(s.get(SCREEN).unwrap().width(), 64);
    }

    #[test]
    fn create_and_free_pixmaps() {
        let mut s = store();
        let a = s.create_pixmap(10, 10);
        let b = s.create_pixmap(20, 20);
        assert_ne!(a, b);
        assert!(!a.is_screen());
        assert_eq!(s.pixmap_count(), 2);
        assert_eq!(s.get(b).unwrap().width(), 20);
        s.free_pixmap(a);
        assert_eq!(s.pixmap_count(), 1);
        assert!(s.get(a).is_none());
    }

    #[test]
    fn free_screen_is_noop() {
        let mut s = store();
        s.free_pixmap(SCREEN);
        assert!(s.get(SCREEN).is_some());
    }

    #[test]
    fn pixmaps_inherit_screen_format() {
        let mut s = DrawableStore::new(8, 8, PixelFormat::Rgba8888);
        let p = s.create_pixmap(4, 4);
        assert_eq!(s.get(p).unwrap().format(), PixelFormat::Rgba8888);
    }

    #[test]
    fn pair_pixmap_to_screen() {
        let mut s = store();
        let p = s.create_pixmap(8, 8);
        s.get_mut(p)
            .unwrap()
            .fill_rect(&Rect::new(0, 0, 8, 8), Color::WHITE);
        let (src, dst) = s.get_pair_mut(p, SCREEN).unwrap();
        let (_, data) = src.get_raw(&Rect::new(0, 0, 8, 8));
        dst.put_raw(&Rect::new(0, 0, 8, 8), &data);
        assert_eq!(s.screen().get_pixel(0, 0), Some(Color::WHITE));
    }

    #[test]
    fn pair_pixmap_to_pixmap() {
        let mut s = store();
        let a = s.create_pixmap(4, 4);
        let b = s.create_pixmap(4, 4);
        s.get_mut(a)
            .unwrap()
            .fill_rect(&Rect::new(0, 0, 4, 4), Color::rgb(3, 3, 3));
        let (src, dst) = s.get_pair_mut(a, b).unwrap();
        let (_, data) = src.get_raw(&Rect::new(0, 0, 4, 4));
        dst.put_raw(&Rect::new(0, 0, 4, 4), &data);
        assert_eq!(s.get(b).unwrap().get_pixel(2, 2), Some(Color::rgb(3, 3, 3)));
    }

    #[test]
    fn pair_same_id_rejected() {
        let mut s = store();
        let a = s.create_pixmap(4, 4);
        assert!(s.get_pair_mut(a, a).is_none());
        assert!(s.get_pair_mut(SCREEN, SCREEN).is_none());
    }

    #[test]
    fn pair_unknown_id_rejected() {
        let mut s = store();
        let a = s.create_pixmap(4, 4);
        assert!(s.get_pair_mut(a, DrawableId(999)).is_none());
        assert!(s.get_pair_mut(DrawableId(999), a).is_none());
    }
}
