//! The window server.
//!
//! Processes application [`DrawRequest`]s: every operation is
//! rasterized into the real drawable contents (so the screen is always
//! ground truth, byte-comparable with a remote client's framebuffer),
//! and mirrored to the attached [`VideoDriver`] with full semantic
//! information — the interception point THINC is built on.
//!
//! The server deliberately performs rasterization *itself* (like the
//! X fb layer) rather than delegating to the driver: THINC's virtual
//! driver never touches local hardware, and software fallbacks (§3)
//! come for free.

use thinc_raster::{Framebuffer, Rect, Region};

use crate::drawable::{DrawableId, DrawableStore, SCREEN};
use crate::driver::VideoDriver;
use crate::input::{InputEvent, InputTracker};
use crate::request::{DrawRequest, RequestResult};
use crate::text;

/// Cumulative counters of processed work (drives CPU-cost models in
/// the benchmark harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests processed.
    pub requests: u64,
    /// Pixels rasterized (across all drawables).
    pub pixels_drawn: u64,
    /// Requests that targeted offscreen pixmaps.
    pub offscreen_requests: u64,
    /// Video frames displayed.
    pub video_frames: u64,
}

/// The window server: drawables + driver + input tracking.
pub struct WindowServer<D: VideoDriver> {
    drawables: DrawableStore,
    driver: D,
    input: InputTracker,
    stats: ServerStats,
    /// Onscreen area touched since the last [`Self::take_screen_damage`].
    screen_damage: Region,
}

impl<D: VideoDriver> WindowServer<D> {
    /// Creates a server with a `width`×`height` screen and `driver`
    /// attached at the device layer.
    pub fn new(width: u32, height: u32, format: thinc_raster::PixelFormat, driver: D) -> Self {
        Self {
            drawables: DrawableStore::new(width, height, format),
            driver,
            input: InputTracker::new(),
            stats: ServerStats::default(),
            screen_damage: Region::new(),
        }
    }

    /// The drawable store (screen + pixmaps).
    pub fn drawables(&self) -> &DrawableStore {
        &self.drawables
    }

    /// The visible screen framebuffer.
    pub fn screen(&self) -> &Framebuffer {
        self.drawables.screen()
    }

    /// The attached driver.
    pub fn driver(&self) -> &D {
        &self.driver
    }

    /// The attached driver, mutably (protocol servers live here).
    pub fn driver_mut(&mut self) -> &mut D {
        &mut self.driver
    }

    /// Work counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// The input tracker (real-time region source).
    pub fn input(&self) -> &InputTracker {
        &self.input
    }

    /// Delivers a user input event.
    pub fn handle_input(&mut self, ev: InputEvent) {
        self.input.observe(ev);
    }

    /// Takes and clears the accumulated onscreen damage region.
    pub fn take_screen_damage(&mut self) -> Region {
        std::mem::take(&mut self.screen_damage)
    }

    fn note_damage(&mut self, target: DrawableId, r: &Rect) {
        if target.is_screen() {
            let clip = r.intersection(&self.drawables.screen().bounds());
            self.screen_damage.union_rect(&clip);
        } else {
            self.stats.offscreen_requests += 1;
        }
        self.stats.pixels_drawn += r.area();
    }

    /// Processes one request, returning what happened.
    pub fn process(&mut self, req: DrawRequest) -> RequestResult {
        self.stats.requests += 1;
        match req {
            DrawRequest::CreatePixmap { width, height } => {
                let id = self.drawables.create_pixmap(width, height);
                self.driver.create_pixmap(&self.drawables, id, width, height);
                RequestResult::Created(id)
            }
            DrawRequest::FreePixmap { id } => {
                // Notify before the contents disappear.
                self.driver.free_pixmap(&self.drawables, id);
                self.drawables.free_pixmap(id);
                RequestResult::Done
            }
            DrawRequest::FillRect { target, rect, color } => {
                let Some(fb) = self.drawables.get_mut(target) else {
                    return RequestResult::BadDrawable;
                };
                fb.fill_rect(&rect, color);
                self.note_damage(target, &rect);
                self.driver.solid_fill(&self.drawables, target, rect, color);
                RequestResult::Done
            }
            DrawRequest::TileRect { target, rect, tile } => {
                let Some(tile_fb) = self.drawables.get(tile).cloned() else {
                    return RequestResult::BadDrawable;
                };
                if tile_fb.width() == 0 || tile_fb.height() == 0 {
                    return RequestResult::BadDrawable;
                }
                let Some(fb) = self.drawables.get_mut(target) else {
                    return RequestResult::BadDrawable;
                };
                fb.tile_rect(&rect, &tile_fb);
                self.note_damage(target, &rect);
                self.driver.pattern_fill(&self.drawables, target, rect, &tile_fb);
                RequestResult::Done
            }
            DrawRequest::StippleRect {
                target,
                rect,
                bits,
                fg,
                bg,
            } => {
                let Some(fb) = self.drawables.get_mut(target) else {
                    return RequestResult::BadDrawable;
                };
                fb.bitmap_rect(&rect, &bits, fg, bg);
                self.note_damage(target, &rect);
                self.driver
                    .stipple_fill(&self.drawables, target, rect, &bits, fg, bg);
                RequestResult::Done
            }
            DrawRequest::CopyArea {
                src,
                dst,
                src_rect,
                dst_x,
                dst_y,
            } => {
                if src == dst {
                    let Some(fb) = self.drawables.get_mut(src) else {
                        return RequestResult::BadDrawable;
                    };
                    fb.copy_rect(&src_rect, dst_x, dst_y);
                } else {
                    let Some((s, d)) = self.drawables.get_pair_mut(src, dst) else {
                        return RequestResult::BadDrawable;
                    };
                    let (clip, data) = s.get_raw(&src_rect);
                    if !clip.is_empty() {
                        // Preserve the offset if the source clipped.
                        let dst_rect = Rect::new(
                            dst_x + (clip.x - src_rect.x),
                            dst_y + (clip.y - src_rect.y),
                            clip.w,
                            clip.h,
                        );
                        d.put_raw(&dst_rect, &data);
                    }
                }
                let dst_rect = Rect::new(dst_x, dst_y, src_rect.w, src_rect.h);
                self.note_damage(dst, &dst_rect);
                self.driver
                    .copy_area(&self.drawables, src, dst, src_rect, dst_x, dst_y);
                RequestResult::Done
            }
            DrawRequest::PutImage { target, rect, data } => {
                let Some(fb) = self.drawables.get_mut(target) else {
                    return RequestResult::BadDrawable;
                };
                let needed = rect.w as usize * rect.h as usize * fb.format().bytes_per_pixel();
                if data.len() < needed {
                    return RequestResult::BadDrawable;
                }
                fb.put_raw(&rect, &data);
                self.note_damage(target, &rect);
                self.driver.put_image(&self.drawables, target, rect, &data);
                RequestResult::Done
            }
            DrawRequest::Text {
                target,
                x,
                y,
                text: string,
                fg,
            } => {
                // Expand to stipple runs (one per line), as core text
                // does at the device layer.
                for run in text::layout(&string, x, y) {
                    let Some(fb) = self.drawables.get_mut(target) else {
                        return RequestResult::BadDrawable;
                    };
                    fb.bitmap_rect(&run.rect, &run.bits, fg, None);
                    self.note_damage(target, &run.rect);
                    self.driver
                        .stipple_fill(&self.drawables, target, run.rect, &run.bits, fg, None);
                }
                RequestResult::Done
            }
            DrawRequest::Composite {
                target,
                rect,
                data,
                op,
            } => {
                let Some(fb) = self.drawables.get(target) else {
                    return RequestResult::BadDrawable;
                };
                let needed = rect.area() as usize * 4;
                if data.len() < needed {
                    return RequestResult::BadDrawable;
                }
                // Build the RGBA source and composite in software
                // (THINC's fallback path: the server CPU renders for
                // clients without compositing hardware, §3).
                let mut src = Framebuffer::new(rect.w, rect.h, thinc_raster::PixelFormat::Rgba8888);
                src.put_raw(&Rect::new(0, 0, rect.w, rect.h), &data);
                let _ = fb;
                let fb = self.drawables.get_mut(target).expect("checked above");
                thinc_raster::composite_rect(
                    fb,
                    &src,
                    &Rect::new(0, 0, rect.w, rect.h),
                    rect.x,
                    rect.y,
                    op,
                );
                self.note_damage(target, &rect);
                self.driver
                    .composite(&self.drawables, target, rect, &data, op);
                RequestResult::Done
            }
            DrawRequest::VideoPut { frame, dst } => {
                // Rasterize through the software path (server ground
                // truth), then hand the *encoded frame* to the driver,
                // exactly as XVideo hands YUV data to the device.
                // Scaling uses the smooth (Fant) resampler: a player's
                // software path interpolates, so scaled video pixels
                // are not byte-replicated (which would make scraped
                // video unrealistically compressible).
                let rgb = if dst.w == frame.width && dst.h == frame.height {
                    frame.to_rgb_scaled(dst.w, dst.h, self.drawables.format())
                } else {
                    let native =
                        frame.to_rgb_scaled(frame.width, frame.height, self.drawables.format());
                    thinc_raster::scale_image(&native, dst.w, dst.h, thinc_raster::ScaleFilter::Fant)
                };
                let screen = self.drawables.screen_mut();
                let (clip, data) = rgb.get_raw(&Rect::new(0, 0, dst.w, dst.h));
                if !clip.is_empty() {
                    screen.put_raw(&Rect::new(dst.x, dst.y, clip.w, clip.h), &data);
                }
                self.note_damage(SCREEN, &dst);
                self.stats.video_frames += 1;
                self.driver.video_display(&self.drawables, &frame, dst);
                RequestResult::Done
            }
        }
    }

    /// Processes a batch of requests, returning each result.
    pub fn process_all(&mut self, reqs: Vec<DrawRequest>) -> Vec<RequestResult> {
        reqs.into_iter().map(|r| self.process(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{NullDriver, RecordedOp, RecordingDriver};
    use thinc_raster::{Color, PixelFormat, YuvFormat, YuvFrame};

    fn server() -> WindowServer<RecordingDriver> {
        WindowServer::new(64, 48, PixelFormat::Rgb888, RecordingDriver::default())
    }

    #[test]
    fn fill_rasterizes_and_notifies() {
        let mut s = server();
        s.process(DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(1, 1, 4, 4),
            color: Color::WHITE,
        });
        assert_eq!(s.screen().get_pixel(2, 2), Some(Color::WHITE));
        assert_eq!(
            s.driver().ops,
            vec![RecordedOp::SolidFill(SCREEN, Rect::new(1, 1, 4, 4), Color::WHITE)]
        );
    }

    #[test]
    fn offscreen_flow_create_draw_copy_onscreen() {
        let mut s = server();
        let RequestResult::Created(pm) = s.process(DrawRequest::CreatePixmap {
            width: 8,
            height: 8,
        }) else {
            panic!("expected Created");
        };
        s.process(DrawRequest::FillRect {
            target: pm,
            rect: Rect::new(0, 0, 8, 8),
            color: Color::rgb(9, 9, 9),
        });
        // Offscreen draw produces no screen damage.
        assert!(s.take_screen_damage().is_empty());
        s.process(DrawRequest::CopyArea {
            src: pm,
            dst: SCREEN,
            src_rect: Rect::new(0, 0, 8, 8),
            dst_x: 10,
            dst_y: 10,
        });
        assert_eq!(s.screen().get_pixel(12, 12), Some(Color::rgb(9, 9, 9)));
        assert_eq!(s.take_screen_damage().bounds(), Rect::new(10, 10, 8, 8));
        // Driver saw create, offscreen fill (with semantics), copy.
        assert!(matches!(s.driver().ops[0], RecordedOp::CreatePixmap(..)));
        assert!(matches!(s.driver().ops[1], RecordedOp::SolidFill(id, ..) if id == pm));
        assert!(matches!(s.driver().ops[2], RecordedOp::CopyArea(..)));
    }

    #[test]
    fn copy_within_screen_scrolls() {
        let mut s = server();
        s.process(DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(0, 0, 64, 8),
            color: Color::WHITE,
        });
        s.process(DrawRequest::CopyArea {
            src: SCREEN,
            dst: SCREEN,
            src_rect: Rect::new(0, 0, 64, 8),
            dst_x: 0,
            dst_y: 8,
        });
        assert_eq!(s.screen().get_pixel(0, 12), Some(Color::WHITE));
    }

    #[test]
    fn text_becomes_stipples() {
        let mut s = server();
        s.process(DrawRequest::Text {
            target: SCREEN,
            x: 4,
            y: 4,
            text: "hi".into(),
            fg: Color::BLACK,
        });
        assert_eq!(s.driver().ops.len(), 1);
        assert!(matches!(
            s.driver().ops[0],
            RecordedOp::StippleFill(SCREEN, r, _, None) if r.w == 16 && r.h == 8
        ));
    }

    #[test]
    fn video_put_rasterizes_scaled() {
        let mut s = server();
        let mut src = Framebuffer::new(4, 4, PixelFormat::Rgb888);
        src.fill_rect(&Rect::new(0, 0, 4, 4), Color::rgb(200, 50, 50));
        let frame = YuvFrame::from_rgb(&src, &Rect::new(0, 0, 4, 4), YuvFormat::Yv12);
        s.process(DrawRequest::VideoPut {
            frame,
            dst: Rect::new(0, 0, 32, 32),
        });
        let c = s.screen().get_pixel(16, 16).unwrap();
        assert!(c.r > 150, "{c:?}");
        assert_eq!(s.stats().video_frames, 1);
        assert!(matches!(s.driver().ops[0], RecordedOp::VideoDisplay(4, 4, _)));
    }

    #[test]
    fn composite_blends_in_software() {
        let mut s = WindowServer::new(16, 16, PixelFormat::Rgba8888, RecordingDriver::default());
        s.process(DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(0, 0, 16, 16),
            color: Color::rgba(0, 0, 0, 255),
        });
        // A half-transparent white square over black → mid grey.
        let data = vec![255u8, 255, 255, 128]
            .into_iter()
            .cycle()
            .take(8 * 8 * 4)
            .collect();
        s.process(DrawRequest::Composite {
            target: SCREEN,
            rect: Rect::new(4, 4, 8, 8),
            data,
            op: thinc_raster::CompositeOp::Over,
        });
        let c = s.screen().get_pixel(8, 8).unwrap();
        assert!((c.r as i32 - 128).abs() <= 2, "{c:?}");
        assert!(matches!(
            s.driver().ops.last(),
            Some(RecordedOp::Composite(SCREEN, _, thinc_raster::CompositeOp::Over, _))
        ));
    }

    #[test]
    fn composite_short_data_rejected() {
        let mut s = server();
        let r = s.process(DrawRequest::Composite {
            target: SCREEN,
            rect: Rect::new(0, 0, 8, 8),
            data: vec![0; 10],
            op: thinc_raster::CompositeOp::Over,
        });
        assert_eq!(r, RequestResult::BadDrawable);
    }

    #[test]
    fn bad_drawable_reported() {
        let mut s = server();
        let r = s.process(DrawRequest::FillRect {
            target: DrawableId(77),
            rect: Rect::new(0, 0, 1, 1),
            color: Color::WHITE,
        });
        assert_eq!(r, RequestResult::BadDrawable);
    }

    #[test]
    fn put_image_validates_length() {
        let mut s = server();
        let r = s.process(DrawRequest::PutImage {
            target: SCREEN,
            rect: Rect::new(0, 0, 4, 4),
            data: vec![0; 5],
        });
        assert_eq!(r, RequestResult::BadDrawable);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = WindowServer::new(32, 32, PixelFormat::Rgb888, NullDriver);
        s.process(DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(0, 0, 10, 10),
            color: Color::WHITE,
        });
        assert_eq!(s.stats().requests, 1);
        assert_eq!(s.stats().pixels_drawn, 100);
    }

    #[test]
    fn input_reaches_tracker() {
        let mut s = server();
        s.handle_input(InputEvent::ButtonPress(thinc_raster::Point::new(5, 5)));
        assert!(s.input().is_realtime(&Rect::new(0, 0, 10, 10)));
    }

    #[test]
    fn damage_accumulates_only_onscreen() {
        let mut s = server();
        let RequestResult::Created(pm) = s.process(DrawRequest::CreatePixmap {
            width: 4,
            height: 4,
        }) else {
            panic!()
        };
        s.process(DrawRequest::FillRect {
            target: pm,
            rect: Rect::new(0, 0, 4, 4),
            color: Color::WHITE,
        });
        s.process(DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(0, 0, 2, 2),
            color: Color::WHITE,
        });
        let dmg = s.take_screen_damage();
        assert_eq!(dmg.area(), 4);
        assert_eq!(s.stats().offscreen_requests, 1);
    }
}
