//! A deterministic built-in bitmap font.
//!
//! Text drawing in the evaluation matters for its *operation shape* —
//! runs of small 1-bit stipple fills at the device layer — not for
//! typographic fidelity. The built-in font is therefore an 8×8-cell
//! font with a handful of hand-drawn glyphs for common characters and
//! deterministic procedurally-derived glyphs for the rest, so every
//! printable character produces a stable, nonempty bitmap.

/// Width of every glyph cell in pixels.
pub const GLYPH_W: u32 = 8;
/// Height of every glyph cell in pixels.
pub const GLYPH_H: u32 = 8;

/// Returns the 8×8 bitmap of `c`, one byte per row, MSB leftmost.
///
/// Whitespace renders as an empty cell. Glyphs are deterministic: the
/// same character always yields the same bitmap.
pub fn glyph_bitmap(c: char) -> [u8; 8] {
    match c {
        ' ' | '\t' | '\n' | '\r' => [0; 8],
        'o' | 'O' | '0' => [0x00, 0x3C, 0x42, 0x42, 0x42, 0x42, 0x3C, 0x00],
        'i' | 'I' | '1' | 'l' | '|' => [0x00, 0x18, 0x18, 0x18, 0x18, 0x18, 0x18, 0x00],
        '-' | '_' => [0x00, 0x00, 0x00, 0x7E, 0x00, 0x00, 0x00, 0x00],
        '.' | ',' => [0x00, 0x00, 0x00, 0x00, 0x00, 0x18, 0x18, 0x00],
        'e' | 'E' => [0x00, 0x7E, 0x40, 0x7C, 0x40, 0x40, 0x7E, 0x00],
        't' | 'T' => [0x00, 0x7E, 0x18, 0x18, 0x18, 0x18, 0x18, 0x00],
        'a' | 'A' => [0x00, 0x3C, 0x42, 0x7E, 0x42, 0x42, 0x42, 0x00],
        'n' | 'N' => [0x00, 0x42, 0x62, 0x52, 0x4A, 0x46, 0x42, 0x00],
        's' | 'S' => [0x00, 0x3C, 0x40, 0x3C, 0x02, 0x02, 0x3C, 0x00],
        other => procedural_glyph(other),
    }
}

/// Derives a stable pseudo-glyph from the character's code point.
///
/// The bitmap is mirrored left-right (like most letterforms), always
/// has ink, and leaves the outer column and bottom row empty so
/// adjacent glyphs do not merge.
fn procedural_glyph(c: char) -> [u8; 8] {
    let mut state = c as u32 ^ 0x9E3779B9;
    let mut out = [0u8; 8];
    for (i, row) in out.iter_mut().enumerate().take(7).skip(1) {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        let nibble = ((state >> 24) & 0xF) as u8;
        // Mirror the nibble into bits 6..=3 and 3..=0 of the row,
        // keeping bit 7 and bit 0 clear.
        let left = nibble << 3;
        let right = nibble.reverse_bits() >> 4;
        *row = (left | right) & 0x7E;
        if *row == 0 && i == 3 {
            *row = 0x3C; // Guarantee some ink near the middle.
        }
    }
    out
}

/// Packs the glyphs of `text` into one stipple bitmap spanning the
/// whole string: `(bits, width, height)` with rows padded to bytes.
///
/// This mirrors how a window server batches a text run into a single
/// driver-level stipple operation per string.
pub fn render_string(text: &str) -> (Vec<u8>, u32, u32) {
    let n = text.chars().count() as u32;
    if n == 0 {
        return (Vec::new(), 0, 0);
    }
    let width = n * GLYPH_W;
    let row_bytes = (width as usize).div_ceil(8);
    let mut bits = vec![0u8; row_bytes * GLYPH_H as usize];
    for (gi, ch) in text.chars().enumerate() {
        let glyph = glyph_bitmap(ch);
        for (row, &gbits) in glyph.iter().enumerate() {
            // Glyph cells are byte-aligned because GLYPH_W == 8.
            bits[row * row_bytes + gi] = gbits;
        }
    }
    (bits, width, GLYPH_H)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_are_deterministic() {
        assert_eq!(glyph_bitmap('q'), glyph_bitmap('q'));
        assert_eq!(glyph_bitmap('Z'), glyph_bitmap('Z'));
    }

    #[test]
    fn space_is_empty() {
        assert_eq!(glyph_bitmap(' '), [0; 8]);
    }

    #[test]
    fn printable_glyphs_have_ink() {
        for c in '!'..='~' {
            let g = glyph_bitmap(c);
            assert!(g.iter().any(|&b| b != 0), "{c:?} is blank");
        }
    }

    #[test]
    fn glyphs_leave_margins() {
        for c in '!'..='~' {
            let g = glyph_bitmap(c);
            for row in g {
                assert_eq!(row & 0x81, 0, "{c:?} touches cell edge: {row:08b}");
            }
            assert_eq!(g[7], 0, "{c:?} touches bottom row");
        }
    }

    #[test]
    fn render_string_geometry() {
        let (bits, w, h) = render_string("hello");
        assert_eq!(w, 40);
        assert_eq!(h, 8);
        assert_eq!(bits.len(), 5 * 8);
        assert!(bits.iter().any(|&b| b != 0));
    }

    #[test]
    fn render_empty_string() {
        let (bits, w, h) = render_string("");
        assert!(bits.is_empty());
        assert_eq!((w, h), (0, 0));
    }

    #[test]
    fn render_string_places_glyphs_in_order() {
        let (bits, _, _) = render_string("i ");
        // 'i' column has ink, space column does not.
        let i_ink: u8 = (0..8).map(|r| bits[r * 2]).fold(0, |a, b| a | b);
        let sp_ink: u8 = (0..8).map(|r| bits[r * 2 + 1]).fold(0, |a, b| a | b);
        assert_ne!(i_ink, 0);
        assert_eq!(sp_ink, 0);
    }
}
