//! Application-level drawing requests.
//!
//! These play the role X protocol requests play for the THINC
//! prototype: what applications (and the workload generators) send to
//! the window server. The server rasterizes them and mirrors the
//! resulting device-level operations to the attached video driver.

use thinc_raster::{Color, Rect, YuvFrame};

use crate::drawable::DrawableId;

/// One request from an application to the window server.
#[derive(Debug, Clone)]
pub enum DrawRequest {
    /// Allocate an offscreen pixmap; the server assigns the id (see
    /// [`crate::server::WindowServer::process`]'s return value).
    CreatePixmap {
        /// Width in pixels.
        width: u32,
        /// Height in pixels.
        height: u32,
    },
    /// Free an offscreen pixmap.
    FreePixmap {
        /// Pixmap to free.
        id: DrawableId,
    },
    /// Solid fill of a rectangle.
    FillRect {
        /// Target drawable.
        target: DrawableId,
        /// Area to fill.
        rect: Rect,
        /// Fill color.
        color: Color,
    },
    /// Tile a rectangle with the contents of a pixmap.
    TileRect {
        /// Target drawable.
        target: DrawableId,
        /// Area to tile.
        rect: Rect,
        /// Pixmap to replicate.
        tile: DrawableId,
    },
    /// Fill a rectangle through a 1-bit stipple.
    StippleRect {
        /// Target drawable.
        target: DrawableId,
        /// Area to fill.
        rect: Rect,
        /// Row-major bitmap, rows padded to whole bytes, MSB first.
        bits: Vec<u8>,
        /// Color painted where bits are 1.
        fg: Color,
        /// Color painted where bits are 0; `None` leaves them as-is.
        bg: Option<Color>,
    },
    /// Copy an area between (or within) drawables.
    CopyArea {
        /// Source drawable.
        src: DrawableId,
        /// Destination drawable.
        dst: DrawableId,
        /// Source rectangle.
        src_rect: Rect,
        /// Destination origin x.
        dst_x: i32,
        /// Destination origin y.
        dst_y: i32,
    },
    /// Upload client-provided pixel data (in the screen's format,
    /// tightly packed rows of `rect.w` pixels).
    PutImage {
        /// Target drawable.
        target: DrawableId,
        /// Destination rectangle.
        rect: Rect,
        /// Pixel bytes.
        data: Vec<u8>,
    },
    /// Draw a text string; the server renders it through the built-in
    /// font as per-string stipple fills, as X core text does.
    Text {
        /// Target drawable.
        target: DrawableId,
        /// Baseline-left x position.
        x: i32,
        /// Top y position.
        y: i32,
        /// The characters to draw.
        text: String,
        /// Foreground color.
        fg: Color,
    },
    /// Display one video frame through the XVideo-style port: the
    /// driver receives the YUV data and the destination rectangle
    /// (which may be larger — the hardware scales).
    VideoPut {
        /// The decoded frame as handed to the device layer.
        frame: YuvFrame,
        /// On-screen destination (scaling target).
        dst: Rect,
    },
    /// Porter–Duff composite of client-provided RGBA data onto the
    /// drawable (anti-aliased text, translucent decorations — the
    /// modern 2D operations §3 of the paper calls out). The server
    /// renders in software when the client lacks compositing hardware.
    Composite {
        /// Target drawable.
        target: DrawableId,
        /// Destination rectangle.
        rect: Rect,
        /// RGBA pixel bytes, tightly packed rows of `rect.w` pixels.
        data: Vec<u8>,
        /// The compositing operator.
        op: thinc_raster::CompositeOp,
    },
}

/// Result of processing one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestResult {
    /// Nothing to report.
    Done,
    /// A pixmap was created with this id.
    Created(DrawableId),
    /// The request referenced an unknown drawable and was dropped.
    BadDrawable,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_cloneable_and_debuggable() {
        let r = DrawRequest::FillRect {
            target: crate::drawable::SCREEN,
            rect: Rect::new(0, 0, 4, 4),
            color: Color::WHITE,
        };
        let r2 = r.clone();
        assert!(format!("{r2:?}").contains("FillRect"));
    }
}
