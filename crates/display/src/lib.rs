#![warn(missing_docs)]
//! Window-system substrate for the THINC reproduction.
//!
//! THINC virtualizes the display "at the video device abstraction
//! layer, which sits below the window server and above the
//! framebuffer" (§3 of the paper). In the prototype that layer is the
//! XFree86/X.org driver interface (XAA); here it is the
//! [`driver::VideoDriver`] trait. This crate implements the window
//! server above that layer from scratch:
//!
//! - [`drawable`]: the screen and offscreen pixmaps (the drawables the
//!   driver-level commands target),
//! - [`request`]: the application-level drawing requests a window
//!   server accepts (the role X requests play for the prototype),
//! - [`server`]: the window server itself — it rasterizes every
//!   request into the real drawable contents (ground truth for
//!   verifying remote display) *and* mirrors each operation to the
//!   attached driver with its full semantic information,
//! - [`driver`]: the device-driver interface and a recording driver,
//! - [`text`]: glyph rendering (text becomes stipple fills at the
//!   driver level, as in X core text),
//! - [`font`]: a deterministic built-in bitmap font,
//! - [`input`]: pointer/keyboard events and last-event tracking (the
//!   anchor for THINC's real-time update region),
//! - [`damage`]: a damage tracker used by screen-scraping drivers.
//!
//! The essential property is faithful *semantics flow*: a driver
//! attached to the server sees exactly the low-level operations, with
//! exactly the information, that a real display driver sees — which is
//! the interface the THINC paper's entire design is built on.

pub mod damage;
pub mod drawable;
pub mod driver;
pub mod font;
pub mod input;
pub mod request;
pub mod server;
pub mod text;

pub use drawable::{DrawableId, DrawableStore, SCREEN};
pub use driver::{NullDriver, VideoDriver};
pub use input::{InputEvent, InputTracker};
pub use request::DrawRequest;
pub use server::WindowServer;
