//! Input events and last-event tracking.
//!
//! THINC marks display updates that overlap a small region around the
//! most recent input event as *real-time* and delivers them with
//! priority (§5). The window server tracks that region here.

use thinc_raster::{Point, Rect};

/// A user input event arriving at the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputEvent {
    /// Pointer moved to a position.
    PointerMove(Point),
    /// Mouse button pressed at a position.
    ButtonPress(Point),
    /// Mouse button released at a position.
    ButtonRelease(Point),
    /// Key pressed (the pointer position anchors feedback).
    KeyPress(u32),
}

/// Tracks the most recent input event's screen location.
#[derive(Debug, Clone, Default)]
pub struct InputTracker {
    last_position: Option<Point>,
    /// Half-size of the real-time region around the last event.
    halo: u32,
}

impl InputTracker {
    /// Default halo: a 64-pixel square around the event (the paper
    /// says "a small-sized region around the location of the last
    /// received input event").
    pub const DEFAULT_HALO: u32 = 32;

    /// A tracker with the default halo.
    pub fn new() -> Self {
        Self {
            last_position: None,
            halo: Self::DEFAULT_HALO,
        }
    }

    /// A tracker with a custom halo half-size.
    pub fn with_halo(halo: u32) -> Self {
        Self {
            last_position: None,
            halo,
        }
    }

    /// Feeds an event into the tracker.
    pub fn observe(&mut self, ev: InputEvent) {
        match ev {
            InputEvent::PointerMove(p) | InputEvent::ButtonPress(p) | InputEvent::ButtonRelease(p) => {
                self.last_position = Some(p);
            }
            InputEvent::KeyPress(_) => {
                // Key feedback appears near the caret; without caret
                // tracking the last pointer position is the anchor, so
                // the region is left unchanged.
            }
        }
    }

    /// The current real-time region, if any input has been seen.
    pub fn realtime_region(&self) -> Option<Rect> {
        self.last_position.map(|p| {
            Rect::new(
                p.x - self.halo as i32,
                p.y - self.halo as i32,
                self.halo * 2,
                self.halo * 2,
            )
        })
    }

    /// Whether `r` intersects the real-time region.
    pub fn is_realtime(&self, r: &Rect) -> bool {
        self.realtime_region()
            .map(|rt| rt.intersects(r))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_input_no_region() {
        let t = InputTracker::new();
        assert!(t.realtime_region().is_none());
        assert!(!t.is_realtime(&Rect::new(0, 0, 100, 100)));
    }

    #[test]
    fn click_creates_halo() {
        let mut t = InputTracker::new();
        t.observe(InputEvent::ButtonPress(Point::new(100, 100)));
        let r = t.realtime_region().unwrap();
        assert!(r.contains_point(Point::new(100, 100)));
        assert!(t.is_realtime(&Rect::new(90, 90, 10, 10)));
        assert!(!t.is_realtime(&Rect::new(500, 500, 10, 10)));
    }

    #[test]
    fn latest_event_wins() {
        let mut t = InputTracker::new();
        t.observe(InputEvent::ButtonPress(Point::new(0, 0)));
        t.observe(InputEvent::PointerMove(Point::new(500, 500)));
        assert!(!t.is_realtime(&Rect::new(0, 0, 10, 10)));
        assert!(t.is_realtime(&Rect::new(495, 495, 10, 10)));
    }

    #[test]
    fn key_press_keeps_prior_anchor() {
        let mut t = InputTracker::new();
        t.observe(InputEvent::ButtonPress(Point::new(10, 10)));
        t.observe(InputEvent::KeyPress(42));
        assert!(t.is_realtime(&Rect::new(5, 5, 4, 4)));
    }

    #[test]
    fn custom_halo() {
        let mut t = InputTracker::with_halo(2);
        t.observe(InputEvent::ButtonPress(Point::new(50, 50)));
        assert_eq!(t.realtime_region().unwrap(), Rect::new(48, 48, 4, 4));
    }
}
