//! Onscreen damage tracking.
//!
//! Screen-scraping systems (the VNC and GoToMyPC classes) do not use
//! operation semantics; they only need to know *which* screen pixels
//! changed, reading the current contents at update time. This tracker
//! accumulates damaged regions for them.

use thinc_raster::{Rect, Region};

/// Accumulates damaged screen area between update flushes.
#[derive(Debug, Clone, Default)]
pub struct DamageTracker {
    region: Region,
}

impl DamageTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `r` as damaged.
    pub fn add(&mut self, r: &Rect) {
        self.region.union_rect(r);
    }

    /// Whether any damage is pending.
    pub fn is_empty(&self) -> bool {
        self.region.is_empty()
    }

    /// Pending damaged area in pixels.
    pub fn area(&self) -> u64 {
        self.region.area()
    }

    /// The pending damage region (borrowed).
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Takes and clears the pending damage.
    pub fn take(&mut self) -> Region {
        std::mem::take(&mut self.region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_takes() {
        let mut d = DamageTracker::new();
        assert!(d.is_empty());
        d.add(&Rect::new(0, 0, 10, 10));
        d.add(&Rect::new(5, 5, 10, 10));
        assert_eq!(d.area(), 175);
        let taken = d.take();
        assert_eq!(taken.area(), 175);
        assert!(d.is_empty());
    }

    #[test]
    fn overlapping_damage_not_double_counted() {
        let mut d = DamageTracker::new();
        d.add(&Rect::new(0, 0, 10, 10));
        d.add(&Rect::new(0, 0, 10, 10));
        assert_eq!(d.area(), 100);
    }

    #[test]
    fn empty_rect_ignored() {
        let mut d = DamageTracker::new();
        d.add(&Rect::default());
        assert!(d.is_empty());
    }
}
