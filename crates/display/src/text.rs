//! Text layout: turning strings into device-level stipple operations.
//!
//! X core text reaches the driver as stipple fills (a 1-bit glyph
//! bitmap applied with a foreground color). THINC's `BITMAP` protocol
//! command exists precisely to carry these efficiently (§3). The
//! window server uses this module to expand [`DrawRequest::Text`]
//! requests into per-string stipple fills.
//!
//! [`DrawRequest::Text`]: crate::request::DrawRequest::Text

use thinc_raster::Rect;

use crate::font;

/// The stipple operation a text run expands to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextRun {
    /// Destination rectangle of the whole run.
    pub rect: Rect,
    /// 1-bit glyph bitmap covering the run, rows padded to bytes.
    pub bits: Vec<u8>,
}

/// Lays out `text` at `(x, y)` (top-left), producing one stipple run
/// per line (newlines split runs).
pub fn layout(text: &str, x: i32, y: i32) -> Vec<TextRun> {
    let mut runs = Vec::new();
    for (li, line) in text.split('\n').enumerate() {
        if line.is_empty() {
            continue;
        }
        let (bits, w, h) = font::render_string(line);
        if w == 0 {
            continue;
        }
        runs.push(TextRun {
            rect: Rect::new(x, y + li as i32 * font::GLYPH_H as i32, w, h),
            bits,
        });
    }
    runs
}

/// The pixel width of `text`'s longest line under the built-in font.
pub fn text_width(text: &str) -> u32 {
    text.split('\n')
        .map(|l| l.chars().count() as u32 * font::GLYPH_W)
        .max()
        .unwrap_or(0)
}

/// The pixel height of `text` (number of lines × glyph height).
pub fn text_height(text: &str) -> u32 {
    text.split('\n').count() as u32 * font::GLYPH_H
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_single_run() {
        let runs = layout("abc", 10, 20);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].rect, Rect::new(10, 20, 24, 8));
    }

    #[test]
    fn multi_line_splits_runs() {
        let runs = layout("ab\ncdef", 0, 0);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].rect, Rect::new(0, 0, 16, 8));
        assert_eq!(runs[1].rect, Rect::new(0, 8, 32, 8));
    }

    #[test]
    fn empty_lines_skipped() {
        let runs = layout("a\n\nb", 0, 0);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].rect.y, 16); // Blank line still advances y.
    }

    #[test]
    fn measurements() {
        assert_eq!(text_width("hello"), 40);
        assert_eq!(text_width("hi\nlonger"), 48);
        assert_eq!(text_height("a\nb\nc"), 24);
        assert_eq!(text_width(""), 0);
    }

    #[test]
    fn run_bits_sized_for_rect() {
        let runs = layout("xyz", 0, 0);
        let r = &runs[0];
        let row_bytes = ((r.rect.w as usize) + 7) / 8;
        assert_eq!(r.bits.len(), row_bytes * r.rect.h as usize);
    }
}
