//! The video device driver interface.
//!
//! This trait is the reproduction's equivalent of the XAA/KAA driver
//! hooks: the window server calls it once per device-level operation,
//! *with the operation's full semantic information* (what is being
//! drawn, where, from what source). THINC's entire design rests on
//! intercepting at exactly this layer (§3), so the trait's operation
//! set mirrors the acceleratable X core operations:
//!
//! - solid fill, pattern (tile) fill, stipple fill,
//! - copy area (between any pair of drawables — including offscreen
//!   pixmaps, which is what makes offscreen awareness possible),
//! - image upload (the "last resort" raw-pixel path),
//! - XVideo-style video frame display,
//! - pixmap lifecycle notifications.
//!
//! Hooks are invoked *after* the server has rasterized the operation
//! into the drawable, so a driver may read the post-operation contents
//! through the store reference it receives.

use thinc_raster::{Color, Framebuffer, Rect, YuvFrame};

use crate::drawable::{DrawableId, DrawableStore};

/// A display driver attached below the window server.
///
/// All methods have empty default implementations so drivers only
/// implement the hooks they care about (a screen scraper ignores
/// everything but onscreen damage, for example).
pub trait VideoDriver {
    /// A pixmap was created.
    fn create_pixmap(&mut self, _store: &DrawableStore, _id: DrawableId, _w: u32, _h: u32) {}

    /// A pixmap was freed.
    fn free_pixmap(&mut self, _store: &DrawableStore, _id: DrawableId) {}

    /// A rectangle was solid-filled.
    fn solid_fill(&mut self, _store: &DrawableStore, _target: DrawableId, _rect: Rect, _color: Color) {
    }

    /// A rectangle was tiled with `tile` (the tile's full contents are
    /// provided, as the hardware would receive the pattern).
    fn pattern_fill(
        &mut self,
        _store: &DrawableStore,
        _target: DrawableId,
        _rect: Rect,
        _tile: &Framebuffer,
    ) {
    }

    /// A rectangle was filled through a 1-bit stipple.
    fn stipple_fill(
        &mut self,
        _store: &DrawableStore,
        _target: DrawableId,
        _rect: Rect,
        _bits: &[u8],
        _fg: Color,
        _bg: Option<Color>,
    ) {
    }

    /// An area was copied from `src` to `dst` (possibly the same
    /// drawable).
    fn copy_area(
        &mut self,
        _store: &DrawableStore,
        _src: DrawableId,
        _dst: DrawableId,
        _src_rect: Rect,
        _dst_x: i32,
        _dst_y: i32,
    ) {
    }

    /// Raw pixel data was written to `rect` of `target`.
    fn put_image(&mut self, _store: &DrawableStore, _target: DrawableId, _rect: Rect, _data: &[u8]) {
    }

    /// A video frame was displayed at `dst` (hardware-scaled from the
    /// frame's own geometry).
    fn video_display(&mut self, _store: &DrawableStore, _frame: &YuvFrame, _dst: Rect) {}

    /// RGBA data was composited onto `rect` of `target` with `op`
    /// (the server already performed the software rendering; the
    /// post-operation contents are in the drawable).
    fn composite(
        &mut self,
        _store: &DrawableStore,
        _target: DrawableId,
        _rect: Rect,
        _data: &[u8],
        _op: thinc_raster::CompositeOp,
    ) {
    }
}

/// A driver that ignores everything — the "local PC" case, and a
/// convenient default for tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullDriver;

impl VideoDriver for NullDriver {}

/// A driver that records every hook invocation, for tests and for
/// inspecting the op stream a workload generates.
#[derive(Debug, Default)]
pub struct RecordingDriver {
    /// Human-readable log of operations, in order.
    pub ops: Vec<RecordedOp>,
}

/// One recorded driver operation.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordedOp {
    /// Pixmap created.
    CreatePixmap(DrawableId, u32, u32),
    /// Pixmap freed.
    FreePixmap(DrawableId),
    /// Solid fill.
    SolidFill(DrawableId, Rect, Color),
    /// Pattern fill (tile geometry recorded).
    PatternFill(DrawableId, Rect, u32, u32),
    /// Stipple fill.
    StippleFill(DrawableId, Rect, Color, Option<Color>),
    /// Copy area.
    CopyArea(DrawableId, DrawableId, Rect, i32, i32),
    /// Image upload (byte count recorded).
    PutImage(DrawableId, Rect, usize),
    /// Video frame display.
    VideoDisplay(u32, u32, Rect),
    /// Composite (operator and byte count recorded).
    Composite(DrawableId, Rect, thinc_raster::CompositeOp, usize),
}

impl VideoDriver for RecordingDriver {
    fn create_pixmap(&mut self, _s: &DrawableStore, id: DrawableId, w: u32, h: u32) {
        self.ops.push(RecordedOp::CreatePixmap(id, w, h));
    }
    fn free_pixmap(&mut self, _s: &DrawableStore, id: DrawableId) {
        self.ops.push(RecordedOp::FreePixmap(id));
    }
    fn solid_fill(&mut self, _s: &DrawableStore, t: DrawableId, r: Rect, c: Color) {
        self.ops.push(RecordedOp::SolidFill(t, r, c));
    }
    fn pattern_fill(&mut self, _s: &DrawableStore, t: DrawableId, r: Rect, tile: &Framebuffer) {
        self.ops
            .push(RecordedOp::PatternFill(t, r, tile.width(), tile.height()));
    }
    fn stipple_fill(
        &mut self,
        _s: &DrawableStore,
        t: DrawableId,
        r: Rect,
        _bits: &[u8],
        fg: Color,
        bg: Option<Color>,
    ) {
        self.ops.push(RecordedOp::StippleFill(t, r, fg, bg));
    }
    fn copy_area(
        &mut self,
        _s: &DrawableStore,
        src: DrawableId,
        dst: DrawableId,
        src_rect: Rect,
        dst_x: i32,
        dst_y: i32,
    ) {
        self.ops
            .push(RecordedOp::CopyArea(src, dst, src_rect, dst_x, dst_y));
    }
    fn put_image(&mut self, _s: &DrawableStore, t: DrawableId, r: Rect, data: &[u8]) {
        self.ops.push(RecordedOp::PutImage(t, r, data.len()));
    }
    fn video_display(&mut self, _s: &DrawableStore, frame: &YuvFrame, dst: Rect) {
        self.ops
            .push(RecordedOp::VideoDisplay(frame.width, frame.height, dst));
    }
    fn composite(
        &mut self,
        _s: &DrawableStore,
        t: DrawableId,
        r: Rect,
        data: &[u8],
        op: thinc_raster::CompositeOp,
    ) {
        self.ops.push(RecordedOp::Composite(t, r, op, data.len()));
    }
}
