//! The session timeline: timestamped metric samples and their JSONL
//! export.
//!
//! Timestamps are microseconds of *virtual* time — values of the
//! simulation's `SimTime` clock — never wall-clock time, so exports
//! are bit-identical across runs and machines.

use std::collections::HashMap;

/// One timestamped sample of one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Virtual time of the sample, in microseconds (`SimTime` value).
    pub t_us: u64,
    /// Dotted metric name, e.g. `"net.cwnd_bytes"`.
    pub metric: String,
    /// Sample value.
    pub value: f64,
}

/// An append-only sequence of [`TimelineEvent`]s with optional
/// per-metric sampling throttles.
///
/// ```
/// use thinc_telemetry::Timeline;
///
/// let mut tl = Timeline::new();
/// tl.record(1_000, "net.cwnd_bytes", 4096.0);
/// tl.record(2_000, "net.cwnd_bytes", 8192.0);
/// assert_eq!(tl.len(), 2);
/// assert_eq!(tl.to_jsonl().lines().count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
    last_sample_us: HashMap<String, u64>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample unconditionally.
    pub fn record(&mut self, t_us: u64, metric: &str, value: f64) {
        self.last_sample_us.insert(metric.to_string(), t_us);
        self.events.push(TimelineEvent {
            t_us,
            metric: metric.to_string(),
            value,
        });
    }

    /// Appends a sample unless the same metric was sampled less than
    /// `min_gap_us` ago; returns whether the sample was kept. Use
    /// this inside per-flush loops to bound export size.
    ///
    /// ```
    /// use thinc_telemetry::Timeline;
    ///
    /// let mut tl = Timeline::new();
    /// assert!(tl.record_sampled(0, "q.depth", 1.0, 10_000));
    /// assert!(!tl.record_sampled(5_000, "q.depth", 2.0, 10_000));
    /// assert!(tl.record_sampled(10_000, "q.depth", 3.0, 10_000));
    /// ```
    pub fn record_sampled(&mut self, t_us: u64, metric: &str, value: f64, min_gap_us: u64) -> bool {
        if let Some(&last) = self.last_sample_us.get(metric) {
            if t_us < last.saturating_add(min_gap_us) {
                return false;
            }
        }
        self.record(t_us, metric, value);
        true
    }

    /// All events, in recording order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the timeline as JSON Lines: one
    /// `{"t_us":…,"metric":"…","value":…}` object per line, in
    /// recording order. See `docs/TELEMETRY.md` for the schema.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{{\"t_us\":{},\"metric\":\"{}\",\"value\":{}}}\n",
                e.t_us,
                escape_json(&e.metric),
                format_number(e.value),
            ));
        }
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (integral values without a
/// fractional part; non-finite values as null, which JSON requires).
fn format_number(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_are_valid_objects() {
        let mut tl = Timeline::new();
        tl.record(1, "a.b", 2.0);
        tl.record(2, "c\"d", 0.5);
        tl.record(3, "e", f64::NAN);
        let out = tl.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], r#"{"t_us":1,"metric":"a.b","value":2}"#);
        assert_eq!(lines[1], r#"{"t_us":2,"metric":"c\"d","value":0.5}"#);
        assert_eq!(lines[2], r#"{"t_us":3,"metric":"e","value":null}"#);
    }

    #[test]
    fn throttling_is_per_metric() {
        let mut tl = Timeline::new();
        assert!(tl.record_sampled(0, "x", 1.0, 100));
        assert!(tl.record_sampled(0, "y", 1.0, 100));
        assert!(!tl.record_sampled(99, "x", 2.0, 100));
        assert!(tl.record_sampled(100, "x", 3.0, 100));
        assert_eq!(tl.len(), 3);
    }
}
