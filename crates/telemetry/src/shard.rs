//! Per-shard telemetry for the broadcast fan-out.
//!
//! The sharded session manager partitions clients into deterministic
//! shards and flushes each shard per epoch against a shared
//! encode-once payload plane. Each shard owns one of these metric
//! sets; the figures/perfgate layer merges them for aggregate views
//! (fairness spread, shared-payload hit ratio, per-shard flush wall
//! time).

use crate::metrics::{Counter, Gauge, Histogram};

/// Metrics for one shard of a fan-out session.
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Clients currently assigned to this shard.
    clients: Gauge,
    /// Flush epochs this shard has run.
    epochs: Counter,
    /// Wall-clock microseconds per shard flush (report-only — wall
    /// time is not deterministic; the gated latency metrics come from
    /// the virtual-time scheduler histograms).
    flush_wall_us: Histogram,
    /// Messages this shard sent whose wire form came from the shared
    /// plane.
    shared_sends: Counter,
    /// Full-form bytes of those messages (what the shard would have
    /// encoded without sharing).
    shared_bytes: Counter,
    /// Wire forms this shard actually produced (first to reach the
    /// class).
    payload_encodes: Counter,
    /// Bytes of wire forms this shard actually produced.
    encoded_bytes: Counter,
}

impl ShardMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self {
            clients: Gauge::new(),
            epochs: Counter::new(),
            flush_wall_us: Histogram::exponential(8, 2, 24),
            shared_sends: Counter::new(),
            shared_bytes: Counter::new(),
            payload_encodes: Counter::new(),
            encoded_bytes: Counter::new(),
        }
    }

    /// Records one flush epoch taking `wall_us` microseconds of wall
    /// time, with the plane traffic attributed to this shard.
    pub fn record_epoch(
        &mut self,
        wall_us: u64,
        shared_sends: u64,
        shared_bytes: u64,
        payload_encodes: u64,
        encoded_bytes: u64,
    ) {
        self.epochs.inc();
        self.flush_wall_us.record(wall_us);
        self.shared_sends.add(shared_sends);
        self.shared_bytes.add(shared_bytes);
        self.payload_encodes.add(payload_encodes);
        self.encoded_bytes.add(encoded_bytes);
    }

    /// Updates the client-count gauge.
    pub fn set_clients(&mut self, n: usize) {
        self.clients.set(n as f64);
    }

    /// Clients currently assigned to this shard.
    pub fn clients(&self) -> u64 {
        self.clients.get() as u64
    }

    /// Flush epochs run.
    pub fn epochs(&self) -> u64 {
        self.epochs.get()
    }

    /// Wall-time histogram of shard flushes (µs).
    pub fn flush_wall_us(&self) -> &Histogram {
        &self.flush_wall_us
    }

    /// Plane-served sends attributed to this shard.
    pub fn shared_sends(&self) -> u64 {
        self.shared_sends.get()
    }

    /// Wire forms this shard produced for the plane.
    pub fn payload_encodes(&self) -> u64 {
        self.payload_encodes.get()
    }

    /// Fraction of this shard's plane-served sends that reused a wire
    /// form some client (any shard) had already produced.
    pub fn hit_ratio(&self) -> f64 {
        let sends = self.shared_sends.get();
        if sends == 0 {
            return 0.0;
        }
        (sends - self.payload_encodes.get().min(sends)) as f64 / sends as f64
    }

    /// Encode output bytes this shard was spared (full-form bytes of
    /// reused sends minus bytes it actually produced).
    pub fn bytes_amortized(&self) -> u64 {
        self.shared_bytes.get().saturating_sub(self.encoded_bytes.get())
    }
}

impl Default for ShardMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_accumulate() {
        let mut m = ShardMetrics::new();
        m.set_clients(128);
        m.record_epoch(250, 10, 1000, 2, 200);
        m.record_epoch(150, 10, 1000, 0, 0);
        assert_eq!(m.epochs(), 2);
        assert_eq!(m.clients(), 128);
        assert_eq!(m.shared_sends(), 20);
        assert_eq!(m.payload_encodes(), 2);
        assert!((m.hit_ratio() - 0.9).abs() < 1e-12);
        assert_eq!(m.bytes_amortized(), 1800);
        assert_eq!(m.flush_wall_us().count(), 2);
    }

    #[test]
    fn zero_sends_is_zero_ratio() {
        let m = ShardMetrics::new();
        assert_eq!(m.hit_ratio(), 0.0);
        assert_eq!(m.bytes_amortized(), 0);
    }
}
