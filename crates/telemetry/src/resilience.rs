//! Fault and resilience instrumentation.
//!
//! Everything the degraded-network story produces — injected faults
//! observed at the transport, graceful-degradation evictions in the
//! per-client buffers, liveness timeouts, and reconnect/resync
//! events — is counted here, in one group, so a single snapshot
//! answers "what did the network do to this session and how did the
//! system cope".
//!
//! Ownership follows the same rule as every other group: the
//! component that observes the event records it (the transport's
//! fault state feeds the fault counters, the command buffer its
//! overflow evictions, the server its timeouts and resyncs) and a
//! harness merges the pieces into the session aggregate.

use crate::metrics::Counter;

/// Fault-injection and resilience counters for one session.
///
/// ```
/// use thinc_telemetry::ResilienceMetrics;
///
/// let mut m = ResilienceMetrics::new();
/// m.record_segment_lost();
/// m.record_retransmit();
/// m.record_corruption(3);
/// m.record_reconnect();
/// assert_eq!(m.segments_lost(), 1);
/// assert_eq!(m.corrupted_bytes(), 3);
/// assert_eq!(m.reconnects(), 1);
/// assert!(m.total_faults() >= 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceMetrics {
    // Transport faults.
    segments_lost: Counter,
    retransmits: Counter,
    corrupt_events: Counter,
    corrupted_bytes: Counter,
    outage_defers: Counter,
    // Graceful degradation.
    overflow_evictions: Counter,
    stale_video_dropped: Counter,
    // Session lifecycle.
    liveness_timeouts: Counter,
    pings_sent: Counter,
    reconnects: Counter,
    resyncs: Counter,
    // Byte-stream disturbances beyond corruption.
    segments_reordered: Counter,
    segments_duplicated: Counter,
    // Client-side recovery.
    decode_errors: Counter,
    stream_resyncs: Counter,
    skipped_bytes: Counter,
    // Wire integrity verification (protocol revision 2).
    crc_failures: Counter,
    seq_gaps: Counter,
    seq_dups: Counter,
    resyncs_triggered: Counter,
    // Content-addressed cache (protocol revision 3).
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    cache_bytes_saved: Counter,
    // Crash isolation (panic containment in the parallel flush).
    panics_quarantined: Counter,
    // Checkpoint/failover (crash-consistent session restore).
    resumes: Counter,
    cold_fallbacks: Counter,
    // Adaptive degradation (the feedback loop acting on the above).
    degrade_steps: Counter,
    promote_steps: Counter,
    /// Current ladder level (0 = full fidelity). Plain value, not a
    /// counter: it moves both ways.
    degradation_level: u64,
    /// Deepest ladder level reached.
    max_degradation_level: u64,
}

impl ResilienceMetrics {
    /// Empty accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a transport segment lost to injected loss.
    pub fn record_segment_lost(&mut self) {
        self.segments_lost.inc();
    }

    /// Records a retransmission round triggered by a loss.
    pub fn record_retransmit(&mut self) {
        self.retransmits.inc();
    }

    /// Records one corruption event damaging `bytes` payload bytes.
    pub fn record_corruption(&mut self, bytes: u64) {
        self.corrupt_events.inc();
        self.corrupted_bytes.add(bytes);
    }

    /// Records a send deferred (or stalled mid-transfer) by a link
    /// outage window.
    pub fn record_outage_defer(&mut self) {
        self.outage_defers.inc();
    }

    /// Records a buffered command evicted to keep the per-client
    /// buffer under its byte bound.
    pub fn record_overflow_eviction(&mut self) {
        self.overflow_evictions.inc();
    }

    /// Folds in `n` overflow evictions counted elsewhere (the buffer
    /// keeps its own tally; the owning server merges it at read time).
    pub fn add_overflow_evictions(&mut self, n: u64) {
        self.overflow_evictions.add(n);
    }

    /// Folds in transport fault counts tallied by the fault-injected
    /// link itself (the transport crate carries no telemetry
    /// dependency; a harness moves its plain counters here).
    #[allow(clippy::too_many_arguments)]
    pub fn add_transport_faults(
        &mut self,
        segments_lost: u64,
        retransmits: u64,
        corrupt_events: u64,
        corrupted_bytes: u64,
        outage_defers: u64,
        segments_reordered: u64,
        segments_duplicated: u64,
    ) {
        self.segments_lost.add(segments_lost);
        self.retransmits.add(retransmits);
        self.corrupt_events.add(corrupt_events);
        self.corrupted_bytes.add(corrupted_bytes);
        self.outage_defers.add(outage_defers);
        self.segments_reordered.add(segments_reordered);
        self.segments_duplicated.add(segments_duplicated);
    }

    /// Records a stale video frame dropped under backpressure.
    pub fn record_stale_video_drop(&mut self) {
        self.stale_video_dropped.inc();
    }

    /// Records a client declared dead by the liveness tracker.
    pub fn record_liveness_timeout(&mut self) {
        self.liveness_timeouts.inc();
    }

    /// Records a heartbeat ping sent to probe an idle peer.
    pub fn record_ping_sent(&mut self) {
        self.pings_sent.inc();
    }

    /// Records a client reconnecting to the session.
    pub fn record_reconnect(&mut self) {
        self.reconnects.inc();
    }

    /// Records a full resynchronization (screen refresh + cursor +
    /// video stream re-establishment).
    pub fn record_resync(&mut self) {
        self.resyncs.inc();
    }

    /// Records a degradation-ladder step and the level it landed on
    /// (`level` is the ladder index, 0 = full fidelity). Demotions
    /// and promotions count separately; the current and deepest
    /// levels are kept as plain values.
    pub fn record_degradation_step(&mut self, level: u64, demotion: bool) {
        if demotion {
            self.degrade_steps.inc();
        } else {
            self.promote_steps.inc();
        }
        self.degradation_level = level;
        self.max_degradation_level = self.max_degradation_level.max(level);
    }

    /// Records a wire decode error the receiver survived.
    pub fn record_decode_error(&mut self) {
        self.decode_errors.inc();
    }

    /// Records the receiver scanning past damage to a new frame
    /// boundary, skipping `bytes`.
    pub fn record_stream_resync(&mut self, bytes: u64) {
        self.stream_resyncs.inc();
        self.skipped_bytes.add(bytes);
    }

    /// Records a frame rejected because its CRC32 failed verification
    /// (integrity framing, protocol revision 2).
    pub fn record_crc_failure(&mut self) {
        self.crc_failures.inc();
    }

    /// Records a forward sequence-number gap (frames lost in transit
    /// while framing stayed parseable).
    pub fn record_seq_gap(&mut self) {
        self.seq_gaps.inc();
    }

    /// Records a frame dropped as a duplicate or sequence rollback.
    pub fn record_seq_dup(&mut self) {
        self.seq_dups.inc();
    }

    /// Records an integrity failure escalating into a recovery action
    /// (refresh request / full resync), as opposed to being absorbed
    /// silently.
    pub fn record_resync_triggered(&mut self) {
        self.resyncs_triggered.inc();
    }

    /// Folds in integrity-verification counts tallied by the wire
    /// reader itself (`thinc-protocol` carries no telemetry
    /// dependency; the client diffs the reader's plain counters and
    /// moves them here).
    pub fn add_integrity_counts(&mut self, crc_failures: u64, seq_gaps: u64, seq_dups: u64) {
        self.crc_failures.add(crc_failures);
        self.seq_gaps.add(seq_gaps);
        self.seq_dups.add(seq_dups);
    }

    /// Segments lost to injected loss.
    pub fn segments_lost(&self) -> u64 {
        self.segments_lost.get()
    }

    /// Retransmission rounds.
    pub fn retransmits(&self) -> u64 {
        self.retransmits.get()
    }

    /// Corruption events observed.
    pub fn corrupt_events(&self) -> u64 {
        self.corrupt_events.get()
    }

    /// Total payload bytes damaged by corruption.
    pub fn corrupted_bytes(&self) -> u64 {
        self.corrupted_bytes.get()
    }

    /// Sends deferred or stalled by outage windows.
    pub fn outage_defers(&self) -> u64 {
        self.outage_defers.get()
    }

    /// Commands evicted by the buffer byte bound.
    pub fn overflow_evictions(&self) -> u64 {
        self.overflow_evictions.get()
    }

    /// Stale video frames dropped under backpressure.
    pub fn stale_video_dropped(&self) -> u64 {
        self.stale_video_dropped.get()
    }

    /// Clients declared dead by liveness tracking.
    pub fn liveness_timeouts(&self) -> u64 {
        self.liveness_timeouts.get()
    }

    /// Heartbeat pings sent.
    pub fn pings_sent(&self) -> u64 {
        self.pings_sent.get()
    }

    /// Reconnects handled.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.get()
    }

    /// Full resynchronizations performed.
    pub fn resyncs(&self) -> u64 {
        self.resyncs.get()
    }

    /// Segments delivered out of order by the transport.
    pub fn segments_reordered(&self) -> u64 {
        self.segments_reordered.get()
    }

    /// Segments delivered more than once by the transport.
    pub fn segments_duplicated(&self) -> u64 {
        self.segments_duplicated.get()
    }

    /// Frames rejected by CRC verification.
    pub fn crc_failures(&self) -> u64 {
        self.crc_failures.get()
    }

    /// Forward sequence gaps observed.
    pub fn seq_gaps(&self) -> u64 {
        self.seq_gaps.get()
    }

    /// Duplicate/rollback frames dropped.
    pub fn seq_dups(&self) -> u64 {
        self.seq_dups.get()
    }

    /// Integrity failures escalated into recovery actions.
    pub fn resyncs_triggered(&self) -> u64 {
        self.resyncs_triggered.get()
    }

    /// Records a cache-reference hit: a full payload replaced by a
    /// compact reference, saving `bytes_saved` wire bytes.
    pub fn record_cache_hit(&mut self, bytes_saved: u64) {
        self.cache_hits.inc();
        self.cache_bytes_saved.add(bytes_saved);
    }

    /// Records a cache reference that failed to resolve (and the
    /// resulting full-payload fallback round trip).
    pub fn record_cache_miss(&mut self) {
        self.cache_misses.inc();
    }

    /// Records `n` entries evicted from a cache ledger or store to
    /// stay within its byte budget.
    pub fn record_cache_evictions(&mut self, n: u64) {
        self.cache_evictions.add(n);
    }

    /// Folds in cache counts tallied by a component that keeps its own
    /// ledger (the server's per-client command buffer, the client's
    /// store — neither carries a telemetry dependency).
    pub fn add_cache_counts(&mut self, hits: u64, misses: u64, evictions: u64, bytes_saved: u64) {
        self.cache_hits.add(hits);
        self.cache_misses.add(misses);
        self.cache_evictions.add(evictions);
        self.cache_bytes_saved.add(bytes_saved);
    }

    /// Cache-reference hits (payloads served from the peer's store).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }

    /// Cache references that failed to resolve.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.get()
    }

    /// Records a per-client panic caught by the parallel flush and
    /// converted into a quarantine instead of a session teardown.
    pub fn record_panic_quarantined(&mut self) {
        self.panics_quarantined.inc();
    }

    /// Per-client panics contained by flush quarantine.
    pub fn panics_quarantined(&self) -> u64 {
        self.panics_quarantined.get()
    }

    /// Records a warm resume: a redialing client's resume token was
    /// honored against a restored checkpoint, so only the
    /// checkpoint-to-live delta travels instead of a full-screen
    /// retransmit.
    pub fn record_resume(&mut self) {
        self.resumes.inc();
    }

    /// Records a resume attempt that could not be honored (stale or
    /// corrupt token/checkpoint, unknown client, digest mismatch) and
    /// fell back to the cold reconnect path.
    pub fn record_cold_fallback(&mut self) {
        self.cold_fallbacks.inc();
    }

    /// Warm resumes honored after a failover.
    pub fn resumes(&self) -> u64 {
        self.resumes.get()
    }

    /// Resume attempts demoted to cold reconnects.
    pub fn cold_fallbacks(&self) -> u64 {
        self.cold_fallbacks.get()
    }

    /// Entries evicted from cache ledgers/stores.
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions.get()
    }

    /// Wire bytes saved by reference substitution.
    pub fn cache_bytes_saved(&self) -> u64 {
        self.cache_bytes_saved.get()
    }

    /// Wire decode errors survived.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.get()
    }

    /// Times the receiver scanned past damage.
    pub fn stream_resyncs(&self) -> u64 {
        self.stream_resyncs.get()
    }

    /// Bytes skipped while scanning past damage.
    pub fn skipped_bytes(&self) -> u64 {
        self.skipped_bytes.get()
    }

    /// Fidelity reductions performed by the degradation controller.
    pub fn degrade_steps(&self) -> u64 {
        self.degrade_steps.get()
    }

    /// Fidelity restorations performed by the degradation controller.
    pub fn promote_steps(&self) -> u64 {
        self.promote_steps.get()
    }

    /// Current degradation-ladder level (0 = full fidelity).
    pub fn degradation_level(&self) -> u64 {
        self.degradation_level
    }

    /// Deepest degradation-ladder level reached.
    pub fn max_degradation_level(&self) -> u64 {
        self.max_degradation_level
    }

    /// All injected-fault events combined (loss + corruption +
    /// outage stalls).
    pub fn total_faults(&self) -> u64 {
        self.segments_lost.get() + self.corrupt_events.get() + self.outage_defers.get()
    }

    /// Adds another accounting into this one (components each own a
    /// piece; the harness merges them into the session view).
    pub fn merge(&mut self, other: &ResilienceMetrics) {
        self.segments_lost.add(other.segments_lost.get());
        self.retransmits.add(other.retransmits.get());
        self.corrupt_events.add(other.corrupt_events.get());
        self.corrupted_bytes.add(other.corrupted_bytes.get());
        self.outage_defers.add(other.outage_defers.get());
        self.overflow_evictions.add(other.overflow_evictions.get());
        self.stale_video_dropped.add(other.stale_video_dropped.get());
        self.liveness_timeouts.add(other.liveness_timeouts.get());
        self.pings_sent.add(other.pings_sent.get());
        self.reconnects.add(other.reconnects.get());
        self.resyncs.add(other.resyncs.get());
        self.segments_reordered.add(other.segments_reordered.get());
        self.segments_duplicated.add(other.segments_duplicated.get());
        self.decode_errors.add(other.decode_errors.get());
        self.stream_resyncs.add(other.stream_resyncs.get());
        self.skipped_bytes.add(other.skipped_bytes.get());
        self.crc_failures.add(other.crc_failures.get());
        self.seq_gaps.add(other.seq_gaps.get());
        self.seq_dups.add(other.seq_dups.get());
        self.resyncs_triggered.add(other.resyncs_triggered.get());
        self.cache_hits.add(other.cache_hits.get());
        self.cache_misses.add(other.cache_misses.get());
        self.cache_evictions.add(other.cache_evictions.get());
        self.cache_bytes_saved.add(other.cache_bytes_saved.get());
        self.panics_quarantined.add(other.panics_quarantined.get());
        self.resumes.add(other.resumes.get());
        self.cold_fallbacks.add(other.cold_fallbacks.get());
        self.degrade_steps.add(other.degrade_steps.get());
        self.promote_steps.add(other.promote_steps.get());
        // Levels are states, not counts: merging session views keeps
        // the deepest observed on each side.
        self.degradation_level = self.degradation_level.max(other.degradation_level);
        self.max_degradation_level =
            self.max_degradation_level.max(other.max_degradation_level);
    }

    /// Plain-data summary for reports.
    pub fn snapshot(&self) -> ResilienceSnapshot {
        ResilienceSnapshot {
            segments_lost: self.segments_lost(),
            retransmits: self.retransmits(),
            corrupt_events: self.corrupt_events(),
            corrupted_bytes: self.corrupted_bytes(),
            outage_defers: self.outage_defers(),
            overflow_evictions: self.overflow_evictions(),
            stale_video_dropped: self.stale_video_dropped(),
            liveness_timeouts: self.liveness_timeouts(),
            pings_sent: self.pings_sent(),
            reconnects: self.reconnects(),
            resyncs: self.resyncs(),
            segments_reordered: self.segments_reordered(),
            segments_duplicated: self.segments_duplicated(),
            decode_errors: self.decode_errors(),
            stream_resyncs: self.stream_resyncs(),
            skipped_bytes: self.skipped_bytes(),
            crc_failures: self.crc_failures(),
            seq_gaps: self.seq_gaps(),
            seq_dups: self.seq_dups(),
            resyncs_triggered: self.resyncs_triggered(),
            cache_hits: self.cache_hits(),
            cache_misses: self.cache_misses(),
            cache_evictions: self.cache_evictions(),
            cache_bytes_saved: self.cache_bytes_saved(),
            panics_quarantined: self.panics_quarantined(),
            resumes: self.resumes(),
            cold_fallbacks: self.cold_fallbacks(),
            degrade_steps: self.degrade_steps(),
            promote_steps: self.promote_steps(),
            degradation_level: self.degradation_level(),
            max_degradation_level: self.max_degradation_level(),
        }
    }
}

/// Plain-data resilience summary inside a
/// [`TelemetrySnapshot`](crate::TelemetrySnapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceSnapshot {
    /// Segments lost to injected loss.
    pub segments_lost: u64,
    /// Retransmission rounds.
    pub retransmits: u64,
    /// Corruption events observed.
    pub corrupt_events: u64,
    /// Payload bytes damaged by corruption.
    pub corrupted_bytes: u64,
    /// Sends deferred or stalled by outages.
    pub outage_defers: u64,
    /// Commands evicted by the buffer byte bound.
    pub overflow_evictions: u64,
    /// Stale video frames dropped under backpressure.
    pub stale_video_dropped: u64,
    /// Clients declared dead by liveness tracking.
    pub liveness_timeouts: u64,
    /// Heartbeat pings sent.
    pub pings_sent: u64,
    /// Reconnects handled.
    pub reconnects: u64,
    /// Full resynchronizations performed.
    pub resyncs: u64,
    /// Segments delivered out of order by the transport.
    pub segments_reordered: u64,
    /// Segments delivered more than once by the transport.
    pub segments_duplicated: u64,
    /// Wire decode errors survived.
    pub decode_errors: u64,
    /// Times the receiver scanned past damage.
    pub stream_resyncs: u64,
    /// Bytes skipped while scanning past damage.
    pub skipped_bytes: u64,
    /// Frames rejected by CRC verification.
    pub crc_failures: u64,
    /// Forward sequence gaps observed.
    pub seq_gaps: u64,
    /// Duplicate/rollback frames dropped.
    pub seq_dups: u64,
    /// Integrity failures escalated into recovery actions.
    pub resyncs_triggered: u64,
    /// Cache-reference hits (payloads served from the peer's store).
    pub cache_hits: u64,
    /// Cache references that failed to resolve.
    pub cache_misses: u64,
    /// Entries evicted from cache ledgers/stores.
    pub cache_evictions: u64,
    /// Wire bytes saved by reference substitution.
    pub cache_bytes_saved: u64,
    /// Per-client panics contained by flush quarantine.
    pub panics_quarantined: u64,
    /// Warm resumes honored after a failover.
    pub resumes: u64,
    /// Resume attempts demoted to cold reconnects.
    pub cold_fallbacks: u64,
    /// Fidelity reductions by the degradation controller.
    pub degrade_steps: u64,
    /// Fidelity restorations by the degradation controller.
    pub promote_steps: u64,
    /// Current degradation-ladder level (0 = full fidelity).
    pub degradation_level: u64,
    /// Deepest degradation-ladder level reached.
    pub max_degradation_level: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let mut m = ResilienceMetrics::new();
        m.record_segment_lost();
        m.record_segment_lost();
        m.record_retransmit();
        m.record_corruption(16);
        m.record_outage_defer();
        m.record_overflow_eviction();
        m.record_stale_video_drop();
        m.record_liveness_timeout();
        m.record_ping_sent();
        m.record_reconnect();
        m.record_resync();
        m.record_decode_error();
        m.record_stream_resync(40);
        let s = m.snapshot();
        assert_eq!(s.segments_lost, 2);
        assert_eq!(s.retransmits, 1);
        assert_eq!(s.corrupt_events, 1);
        assert_eq!(s.corrupted_bytes, 16);
        assert_eq!(s.outage_defers, 1);
        assert_eq!(s.overflow_evictions, 1);
        assert_eq!(s.stale_video_dropped, 1);
        assert_eq!(s.liveness_timeouts, 1);
        assert_eq!(s.pings_sent, 1);
        assert_eq!(s.reconnects, 1);
        assert_eq!(s.resyncs, 1);
        assert_eq!(s.decode_errors, 1);
        assert_eq!(s.stream_resyncs, 1);
        assert_eq!(s.skipped_bytes, 40);
        assert_eq!(m.total_faults(), 4);
    }

    #[test]
    fn degradation_steps_track_levels() {
        let mut m = ResilienceMetrics::new();
        m.record_degradation_step(1, true);
        m.record_degradation_step(2, true);
        m.record_degradation_step(1, false);
        assert_eq!(m.degrade_steps(), 2);
        assert_eq!(m.promote_steps(), 1);
        assert_eq!(m.degradation_level(), 1);
        assert_eq!(m.max_degradation_level(), 2);
        let s = m.snapshot();
        assert_eq!(s.degrade_steps, 2);
        assert_eq!(s.promote_steps, 1);
        assert_eq!(s.degradation_level, 1);
        assert_eq!(s.max_degradation_level, 2);
    }

    #[test]
    fn integrity_counters_accumulate_merge_and_snapshot() {
        let mut m = ResilienceMetrics::new();
        m.record_crc_failure();
        m.record_seq_gap();
        m.record_seq_dup();
        m.record_resync_triggered();
        m.add_integrity_counts(2, 3, 4);
        m.add_transport_faults(0, 0, 0, 0, 0, 5, 6);
        let mut other = ResilienceMetrics::new();
        other.record_crc_failure();
        other.add_transport_faults(0, 0, 0, 0, 0, 1, 1);
        m.merge(&other);
        let s = m.snapshot();
        assert_eq!(s.crc_failures, 4);
        assert_eq!(s.seq_gaps, 4);
        assert_eq!(s.seq_dups, 5);
        assert_eq!(s.resyncs_triggered, 1);
        assert_eq!(s.segments_reordered, 6);
        assert_eq!(s.segments_duplicated, 7);
    }

    #[test]
    fn cache_counters_accumulate_merge_and_snapshot() {
        let mut m = ResilienceMetrics::new();
        m.record_cache_hit(4000);
        m.record_cache_hit(2000);
        m.record_cache_miss();
        m.record_cache_evictions(3);
        m.add_cache_counts(5, 1, 2, 10_000);
        let mut other = ResilienceMetrics::new();
        other.record_cache_hit(500);
        m.merge(&other);
        let s = m.snapshot();
        assert_eq!(s.cache_hits, 8);
        assert_eq!(s.cache_misses, 2);
        assert_eq!(s.cache_evictions, 5);
        assert_eq!(s.cache_bytes_saved, 16_500);
    }

    #[test]
    fn quarantine_counter_accumulates_merges_and_snapshots() {
        let mut m = ResilienceMetrics::new();
        m.record_panic_quarantined();
        let mut other = ResilienceMetrics::new();
        other.record_panic_quarantined();
        other.record_panic_quarantined();
        m.merge(&other);
        assert_eq!(m.panics_quarantined(), 3);
        assert_eq!(m.snapshot().panics_quarantined, 3);
    }

    #[test]
    fn resume_counters_accumulate_merge_and_snapshot() {
        let mut m = ResilienceMetrics::new();
        m.record_resume();
        m.record_cold_fallback();
        let mut other = ResilienceMetrics::new();
        other.record_resume();
        other.record_resume();
        other.record_cold_fallback();
        m.merge(&other);
        assert_eq!(m.resumes(), 3);
        assert_eq!(m.cold_fallbacks(), 2);
        let s = m.snapshot();
        assert_eq!(s.resumes, 3);
        assert_eq!(s.cold_fallbacks, 2);
    }

    #[test]
    fn merge_adds_both_sides() {
        let mut a = ResilienceMetrics::new();
        a.record_segment_lost();
        a.record_resync();
        let mut b = ResilienceMetrics::new();
        b.record_segment_lost();
        b.record_corruption(8);
        b.record_reconnect();
        a.merge(&b);
        assert_eq!(a.segments_lost(), 2);
        assert_eq!(a.corrupted_bytes(), 8);
        assert_eq!(a.reconnects(), 1);
        assert_eq!(a.resyncs(), 1);
    }
}
