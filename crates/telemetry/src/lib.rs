//! `thinc-telemetry`: dependency-free instrumentation for the THINC
//! stack.
//!
//! Every layer of the simulated THINC system — protocol encoding,
//! the SRSF scheduler in the server's command buffer, the translation
//! layer, the network model, and the client — records into the metric
//! primitives defined here:
//!
//! * [`Counter`] — monotonically increasing event counts,
//! * [`Gauge`] — point-in-time values with a high-water mark,
//! * [`Histogram`] — fixed-bucket distributions (latency, sizes).
//!
//! Grouped per subsystem ([`ProtocolMetrics`], [`SchedulerMetrics`],
//! [`TranslatorMetrics`], [`NetMetrics`], [`ClientMetrics`]) and
//! aggregated per session ([`SessionTelemetry`]), they feed the
//! per-command figures in `thinc-bench` and the JSONL session-trace
//! export ([`Timeline::to_jsonl`]).
//!
//! # Design constraints
//!
//! * **Zero dependencies.** This crate sits below every other crate
//!   in the workspace, so it depends on nothing — not even other
//!   THINC crates.
//! * **No clocks.** All timestamps are `u64` microseconds of
//!   *virtual* time, supplied by the caller from the simulation's
//!   `SimTime`. Telemetry never reads wall-clock time, keeping every
//!   export deterministic.
//! * **No atomics or locks.** The simulation is single-threaded;
//!   metrics are plain values owned by the component they instrument.
//!
//! # Example
//!
//! ```
//! use thinc_telemetry::{CommandKind, SessionTelemetry};
//!
//! let mut session = SessionTelemetry::new(10);
//! // A server would record each encoded message as it hits the wire:
//! session.protocol.record(CommandKind::Copy, 30);
//! session.protocol.record(CommandKind::Raw, 2048);
//! session.scheduler.record_flush_latency_us(410);
//!
//! let snap = session.snapshot();
//! assert_eq!(snap.total_messages, 2);
//! assert_eq!(snap.commands.len(), 2);
//! assert!(snap.commands.iter().any(|r| r.kind == CommandKind::Raw));
//! ```

#![warn(missing_docs)]

mod command;
mod metrics;
mod resilience;
mod session;
mod shard;
mod timeline;

pub use command::CommandKind;
pub use metrics::{Counter, Gauge, Histogram};
pub use resilience::{ResilienceMetrics, ResilienceSnapshot};
pub use shard::ShardMetrics;
pub use session::{
    ClientMetrics, ClientSnapshot, CommandRow, NetMetrics, NetSnapshot, ProtocolMetrics,
    SchedulerMetrics, SchedulerSnapshot, SessionTelemetry, TelemetrySnapshot, TranslatorMetrics,
    TranslatorSnapshot,
};
pub use timeline::{Timeline, TimelineEvent};
