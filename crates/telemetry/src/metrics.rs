//! The three metric primitives: [`Counter`], [`Gauge`] and
//! [`Histogram`].
//!
//! All three are plain in-memory values — no atomics, no clocks, no
//! global registry. Instrumented components own their metrics and
//! expose them by reference; aggregation happens by cloning into a
//! [`crate::SessionTelemetry`].

/// A monotonically increasing event count.
///
/// ```
/// use thinc_telemetry::Counter;
///
/// let mut sent = Counter::new();
/// sent.inc();
/// sent.add(4);
/// assert_eq!(sent.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A point-in-time measurement that also remembers its high-water
/// mark.
///
/// ```
/// use thinc_telemetry::Gauge;
///
/// let mut depth = Gauge::new();
/// depth.set(3.0);
/// depth.set(9.0);
/// depth.set(2.0);
/// assert_eq!(depth.get(), 2.0);
/// assert_eq!(depth.max(), 9.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge {
    value: f64,
    max: f64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the current value.
    pub fn set(&mut self, value: f64) {
        self.value = value;
        if value > self.max {
            self.max = value;
        }
    }

    /// The most recently recorded value.
    pub fn get(&self) -> f64 {
        self.value
    }

    /// The largest value ever recorded.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A fixed-bucket histogram over `u64` samples (typically
/// microseconds of latency or bytes).
///
/// Buckets are defined by ascending *inclusive upper bounds*; one
/// implicit overflow bucket catches everything beyond the last bound.
/// Exact `count`, `sum` (saturating at `u64::MAX`) and `max` are
/// tracked alongside, so the mean is exact and only quantiles are
/// bucket-resolution approximations.
///
/// ```
/// use thinc_telemetry::Histogram;
///
/// let mut lat = Histogram::with_bounds(&[10, 100, 1000]);
/// lat.record(0);     // first bucket (<= 10)
/// lat.record(100);   // second bucket (inclusive upper bound)
/// lat.record(5000);  // overflow bucket
/// assert_eq!(lat.count(), 3);
/// assert_eq!(lat.bucket_counts(), &[1, 1, 0, 1]);
/// assert_eq!(lat.max(), 5000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given ascending inclusive upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// A histogram with `len` exponentially growing buckets:
    /// `first, first*factor, first*factor², …`.
    ///
    /// ```
    /// use thinc_telemetry::Histogram;
    ///
    /// let h = Histogram::exponential(100, 2, 4);
    /// assert_eq!(h.bounds(), &[100, 200, 400, 800]);
    /// ```
    ///
    /// # Panics
    /// Panics if `first` is zero, `factor < 2`, or `len` is zero.
    pub fn exponential(first: u64, factor: u64, len: usize) -> Self {
        assert!(first > 0 && factor >= 2 && len > 0, "degenerate layout");
        let mut bounds = Vec::with_capacity(len);
        let mut b = first;
        for _ in 0..len {
            bounds.push(b);
            b = b.saturating_mul(factor);
        }
        Self::with_bounds(&bounds)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (zero when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of recorded samples (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The configured inclusive upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket sample counts; the final entry is the overflow
    /// bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples that exceeded the last bound.
    pub fn overflow(&self) -> u64 {
        *self.counts.last().expect("counts never empty")
    }

    /// Adds every sample of `other` into this histogram.
    ///
    /// Used to combine per-path accountings (e.g. display and A/V
    /// wire-size histograms) into one.
    ///
    /// # Panics
    /// Panics if the two histograms have different bucket layouts.
    pub fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "mismatched histogram layouts");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Bucket-resolution quantile: the upper bound of the first
    /// bucket at which the cumulative count reaches `q * count`.
    /// Samples in the overflow bucket report the exact observed
    /// maximum. Returns zero when empty.
    ///
    /// ```
    /// use thinc_telemetry::Histogram;
    ///
    /// let mut h = Histogram::with_bounds(&[10, 100]);
    /// for _ in 0..99 { h.record(5); }
    /// h.record(50);
    /// assert_eq!(h.quantile(0.5), 10);
    /// assert_eq!(h.quantile(1.0), 100);
    /// ```
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
    }

    #[test]
    fn gauge_tracks_high_water_mark() {
        let mut g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(5.5);
        g.set(1.0);
        assert_eq!(g.get(), 1.0);
        assert_eq!(g.max(), 5.5);
    }

    #[test]
    fn histogram_zero_lands_in_first_bucket() {
        let mut h = Histogram::with_bounds(&[10, 100]);
        h.record(0);
        assert_eq!(h.bucket_counts(), &[1, 0, 0]);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 10);
    }

    #[test]
    fn histogram_upper_bounds_are_inclusive() {
        let mut h = Histogram::with_bounds(&[10, 100]);
        h.record(10);
        h.record(11);
        h.record(100);
        assert_eq!(h.bucket_counts(), &[1, 2, 0]);
    }

    #[test]
    fn histogram_max_value_and_overflow_bucket() {
        let mut h = Histogram::with_bounds(&[10, 100]);
        h.record(101);
        h.record(u64::MAX);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.max(), u64::MAX);
        // Overflow quantiles report the observed maximum, not a bound.
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = Histogram::with_bounds(&[1000]);
        h.record(1);
        h.record(2);
        h.record(6);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn exponential_layout_saturates_instead_of_overflowing() {
        let h = Histogram::exponential(1 << 62, 2, 3);
        assert_eq!(h.bounds(), &[1 << 62, 1 << 63, u64::MAX]);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let mut h = Histogram::with_bounds(&[10, 20, 30]);
        for v in [5, 15, 15, 25] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.25), 10);
        assert_eq!(h.quantile(0.5), 20);
        assert_eq!(h.quantile(0.75), 20);
        assert_eq!(h.quantile(1.0), 30);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_rejected() {
        Histogram::with_bounds(&[10, 10]);
    }

    #[test]
    fn merge_from_combines_everything() {
        let mut a = Histogram::with_bounds(&[10, 100]);
        a.record(5);
        a.record(50);
        let mut b = Histogram::with_bounds(&[10, 100]);
        b.record(500);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 555);
        assert_eq!(a.max(), 500);
        assert_eq!(a.bucket_counts(), &[1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn merge_from_rejects_different_layouts() {
        let mut a = Histogram::with_bounds(&[10]);
        a.merge_from(&Histogram::with_bounds(&[20]));
    }
}
