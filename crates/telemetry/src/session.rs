//! Per-subsystem metric groups and the whole-session aggregator.
//!
//! Each instrumented component *owns* its group (the server's command
//! buffer owns a [`SchedulerMetrics`], the translator a
//! [`TranslatorMetrics`], …) and updates it inline on the hot path.
//! A harness assembles clones of all groups into a
//! [`SessionTelemetry`], whose [`SessionTelemetry::snapshot`] yields
//! the plain-data [`TelemetrySnapshot`] that reports are built from.

use crate::command::CommandKind;
use crate::metrics::{Counter, Gauge, Histogram};
use crate::resilience::{ResilienceMetrics, ResilienceSnapshot};
use crate::timeline::Timeline;

/// Default bucket layout for latency histograms: 100 µs to ~1.6 s in
/// doubling buckets (plus the implicit overflow bucket).
fn latency_histogram() -> Histogram {
    Histogram::exponential(100, 2, 15)
}

/// Default bucket layout for wire-size histograms: 16 B to 512 KiB in
/// doubling buckets (plus the implicit overflow bucket).
fn size_histogram() -> Histogram {
    Histogram::exponential(16, 2, 16)
}

/// Per-command-type wire accounting: message counts and encoded
/// bytes, recorded where messages are committed to the wire.
///
/// ```
/// use thinc_telemetry::{CommandKind, ProtocolMetrics};
///
/// let mut m = ProtocolMetrics::new();
/// m.record(CommandKind::Sfill, 26);
/// m.record(CommandKind::Raw, 4096);
/// assert_eq!(m.count(CommandKind::Sfill), 1);
/// assert_eq!(m.total_bytes(), 4122);
/// let raw = m.rows().into_iter().find(|r| r.kind == CommandKind::Raw).unwrap();
/// assert!(raw.share > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolMetrics {
    counts: [Counter; CommandKind::COUNT],
    bytes: [Counter; CommandKind::COUNT],
    sizes: [Histogram; CommandKind::COUNT],
}

impl Default for ProtocolMetrics {
    fn default() -> Self {
        Self {
            counts: Default::default(),
            bytes: Default::default(),
            sizes: std::array::from_fn(|_| size_histogram()),
        }
    }
}

impl ProtocolMetrics {
    /// Empty accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `kind` occupying `wire_bytes` encoded
    /// bytes.
    pub fn record(&mut self, kind: CommandKind, wire_bytes: u64) {
        self.counts[kind.index()].inc();
        self.bytes[kind.index()].add(wire_bytes);
        self.sizes[kind.index()].record(wire_bytes);
    }

    /// The per-message wire-size histogram of `kind` (use
    /// [`Histogram::quantile`] for p50/p99 message sizes).
    pub fn size_histogram(&self, kind: CommandKind) -> &Histogram {
        &self.sizes[kind.index()]
    }

    /// Messages recorded for `kind`.
    pub fn count(&self, kind: CommandKind) -> u64 {
        self.counts[kind.index()].get()
    }

    /// Encoded bytes recorded for `kind`.
    pub fn bytes(&self, kind: CommandKind) -> u64 {
        self.bytes[kind.index()].get()
    }

    /// Total messages across all kinds.
    pub fn total_messages(&self) -> u64 {
        self.counts.iter().map(Counter::get).sum()
    }

    /// Total encoded bytes across all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().map(Counter::get).sum()
    }

    /// Adds another accounting into this one (used to combine the
    /// display path's records with the audio/video path's).
    pub fn merge(&mut self, other: &ProtocolMetrics) {
        for k in CommandKind::ALL {
            self.counts[k.index()].add(other.count(k));
            self.bytes[k.index()].add(other.bytes(k));
            self.sizes[k.index()].merge_from(&other.sizes[k.index()]);
        }
    }

    /// Per-kind breakdown rows (only kinds with traffic), with each
    /// row's share of total bytes.
    pub fn rows(&self) -> Vec<CommandRow> {
        let total = self.total_bytes().max(1) as f64;
        CommandKind::ALL
            .iter()
            .filter(|k| self.count(**k) > 0)
            .map(|&kind| CommandRow {
                kind,
                count: self.count(kind),
                bytes: self.bytes(kind),
                share: self.bytes(kind) as f64 / total,
            })
            .collect()
    }
}

/// One row of the per-command protocol breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommandRow {
    /// Command/message type.
    pub kind: CommandKind,
    /// Messages sent.
    pub count: u64,
    /// Encoded wire bytes sent.
    pub bytes: u64,
    /// Fraction of total wire bytes (0–1).
    pub share: f64,
}

/// SRSF scheduler and command-buffer instrumentation: per-band queue
/// depth, merge/eviction counts, and enqueue-to-wire flush latency.
///
/// ```
/// use thinc_telemetry::SchedulerMetrics;
///
/// let mut m = SchedulerMetrics::new(10);
/// m.record_merge();
/// m.record_eviction();
/// m.sample_depth(3, 7, 2); // band 3 holds 7 commands, realtime holds 2
/// m.record_flush_latency_us(250);
/// assert_eq!(m.merges(), 1);
/// assert_eq!(m.band_depth(3).max(), 7.0);
/// assert_eq!(m.flush_latency_us().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerMetrics {
    band_depth: Vec<Gauge>,
    realtime_depth: Gauge,
    merges: Counter,
    evictions: Counter,
    splits: Counter,
    flush_latency_us: Histogram,
}

impl SchedulerMetrics {
    /// Metrics for a scheduler with `num_bands` size-ordered queues.
    pub fn new(num_bands: usize) -> Self {
        Self {
            band_depth: vec![Gauge::new(); num_bands],
            realtime_depth: Gauge::new(),
            merges: Counter::new(),
            evictions: Counter::new(),
            splits: Counter::new(),
            flush_latency_us: latency_histogram(),
        }
    }

    /// Records that two buffered commands were merged into one.
    pub fn record_merge(&mut self) {
        self.merges.inc();
    }

    /// Records that an overwritten command was evicted unsent.
    pub fn record_eviction(&mut self) {
        self.evictions.inc();
    }

    /// Records that a large command was split to fit socket space.
    pub fn record_split(&mut self) {
        self.splits.inc();
    }

    /// Samples the depth of one size band and of the realtime queue.
    pub fn sample_depth(&mut self, band: usize, depth: usize, realtime_depth: usize) {
        if let Some(g) = self.band_depth.get_mut(band) {
            g.set(depth as f64);
        }
        self.realtime_depth.set(realtime_depth as f64);
    }

    /// Samples the realtime queue's depth alone (no size band
    /// involved).
    pub fn sample_realtime_depth(&mut self, depth: usize) {
        self.realtime_depth.set(depth as f64);
    }

    /// Records one command's enqueue-to-wire latency in microseconds
    /// of virtual time.
    pub fn record_flush_latency_us(&mut self, us: u64) {
        self.flush_latency_us.record(us);
    }

    /// Commands merged into predecessors.
    pub fn merges(&self) -> u64 {
        self.merges.get()
    }

    /// Commands evicted before sending.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Commands split for non-blocking delivery.
    pub fn splits(&self) -> u64 {
        self.splits.get()
    }

    /// Depth gauge of one size band.
    ///
    /// # Panics
    /// Panics if `band` is out of range.
    pub fn band_depth(&self, band: usize) -> &Gauge {
        &self.band_depth[band]
    }

    /// Number of size bands.
    pub fn num_bands(&self) -> usize {
        self.band_depth.len()
    }

    /// Depth gauge of the realtime (input-feedback) queue.
    pub fn realtime_depth(&self) -> &Gauge {
        &self.realtime_depth
    }

    /// Enqueue-to-wire latency histogram (µs of virtual time).
    pub fn flush_latency_us(&self) -> &Histogram {
        &self.flush_latency_us
    }
}

impl Default for SchedulerMetrics {
    fn default() -> Self {
        Self::new(10)
    }
}

/// Translation-layer instrumentation: device operations translated
/// into each protocol command versus falling back to `RAW` pixels.
///
/// ```
/// use thinc_telemetry::{CommandKind, TranslatorMetrics};
///
/// let mut m = TranslatorMetrics::new();
/// m.record_translated(CommandKind::Copy);
/// m.record_raw_fallback(1200);
/// assert_eq!(m.translated(CommandKind::Copy), 1);
/// assert_eq!(m.raw_fallback_bytes(), 1200);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TranslatorMetrics {
    translated: [Counter; CommandKind::COUNT],
    raw_fallbacks: Counter,
    raw_fallback_bytes: Counter,
    offscreen_queued: Counter,
    queue_executions: Counter,
}

impl TranslatorMetrics {
    /// Empty accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a device operation translated one-to-one into `kind`.
    pub fn record_translated(&mut self, kind: CommandKind) {
        self.translated[kind.index()].inc();
    }

    /// Records a fallback to raw pixels covering `bytes` of data.
    pub fn record_raw_fallback(&mut self, bytes: u64) {
        self.raw_fallbacks.inc();
        self.raw_fallback_bytes.add(bytes);
    }

    /// Records a command routed to an offscreen (pixmap) queue.
    pub fn record_offscreen_queued(&mut self) {
        self.offscreen_queued.inc();
    }

    /// Records an offscreen queue executed because its pixmap was
    /// copied onscreen.
    pub fn record_queue_execution(&mut self) {
        self.queue_executions.inc();
    }

    /// Operations translated into `kind`.
    pub fn translated(&self, kind: CommandKind) -> u64 {
        self.translated[kind.index()].get()
    }

    /// Total operations translated into protocol commands.
    pub fn total_translated(&self) -> u64 {
        self.translated.iter().map(Counter::get).sum()
    }

    /// Times the translator fell back to raw pixel data.
    pub fn raw_fallbacks(&self) -> u64 {
        self.raw_fallbacks.get()
    }

    /// Raw pixel bytes produced by fallbacks.
    pub fn raw_fallback_bytes(&self) -> u64 {
        self.raw_fallback_bytes.get()
    }

    /// Commands queued against offscreen pixmaps.
    pub fn offscreen_queued(&self) -> u64 {
        self.offscreen_queued.get()
    }

    /// Offscreen queues executed onscreen.
    pub fn queue_executions(&self) -> u64 {
        self.queue_executions.get()
    }
}

/// Network-path instrumentation sampled alongside the packet trace:
/// congestion-window size and link utilization.
///
/// ```
/// use thinc_telemetry::NetMetrics;
///
/// let mut m = NetMetrics::new();
/// m.sample(14_600.0, 0.35);
/// m.add_bytes(1500);
/// assert_eq!(m.cwnd_bytes().get(), 14_600.0);
/// assert_eq!(m.bytes_sent(), 1500);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetMetrics {
    cwnd_bytes: Gauge,
    utilization: Gauge,
    bytes_sent: Counter,
}

impl NetMetrics {
    /// Empty accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Samples the TCP congestion window (bytes) and downlink
    /// utilization (0–1).
    pub fn sample(&mut self, cwnd_bytes: f64, utilization: f64) {
        self.cwnd_bytes.set(cwnd_bytes);
        self.utilization.set(utilization);
    }

    /// Adds sent payload bytes.
    pub fn add_bytes(&mut self, n: u64) {
        self.bytes_sent.add(n);
    }

    /// Congestion-window gauge (bytes).
    pub fn cwnd_bytes(&self) -> &Gauge {
        &self.cwnd_bytes
    }

    /// Link-utilization gauge (fraction of serialization capacity
    /// used since session start).
    pub fn utilization(&self) -> &Gauge {
        &self.utilization
    }

    /// Total payload bytes sent downlink.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.get()
    }
}

/// Client-side instrumentation: per-kind decode counts and
/// request-to-screen frame-update latency.
///
/// ```
/// use thinc_telemetry::{ClientMetrics, CommandKind};
///
/// let mut m = ClientMetrics::new();
/// m.record_decoded(CommandKind::Bitmap);
/// m.record_frame_latency_us(850);
/// assert_eq!(m.decoded(CommandKind::Bitmap), 1);
/// assert_eq!(m.frame_latency_us().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClientMetrics {
    decoded: [Counter; CommandKind::COUNT],
    decode_errors: Counter,
    frame_latency_us: Histogram,
}

impl ClientMetrics {
    /// Empty accounting.
    pub fn new() -> Self {
        Self {
            decoded: Default::default(),
            decode_errors: Counter::new(),
            frame_latency_us: latency_histogram(),
        }
    }

    /// Records one decoded-and-executed message of `kind`.
    pub fn record_decoded(&mut self, kind: CommandKind) {
        self.decoded[kind.index()].inc();
    }

    /// Records a message the client failed to execute.
    pub fn record_decode_error(&mut self) {
        self.decode_errors.inc();
    }

    /// Records one update's request-to-screen latency in microseconds
    /// of virtual time.
    pub fn record_frame_latency_us(&mut self, us: u64) {
        self.frame_latency_us.record(us);
    }

    /// Messages of `kind` decoded and executed.
    pub fn decoded(&self, kind: CommandKind) -> u64 {
        self.decoded[kind.index()].get()
    }

    /// Total messages decoded across kinds.
    pub fn total_decoded(&self) -> u64 {
        self.decoded.iter().map(Counter::get).sum()
    }

    /// Messages that failed to execute.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.get()
    }

    /// Request-to-screen latency histogram (µs of virtual time).
    pub fn frame_latency_us(&self) -> &Histogram {
        &self.frame_latency_us
    }
}

impl Default for ClientMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// A whole session's telemetry: one group per instrumented subsystem
/// plus the sampled [`Timeline`].
///
/// Components own and update their groups live; a harness clones them
/// into this aggregator (see `ThincSystem::session_telemetry` in
/// `thinc-bench`) and renders reports from [`SessionTelemetry::snapshot`]
/// or exports the timeline with [`SessionTelemetry::export_jsonl`].
///
/// ```
/// use thinc_telemetry::{CommandKind, SessionTelemetry};
///
/// let mut s = SessionTelemetry::new(10);
/// s.protocol.record(CommandKind::Sfill, 26);
/// s.timeline.record(2_000, "net.cwnd_bytes", 4096.0);
/// let snap = s.snapshot();
/// assert_eq!(snap.commands.len(), 1);
/// assert_eq!(snap.total_bytes, 26);
/// assert!(s.export_jsonl().contains("cwnd"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionTelemetry {
    /// Per-command wire accounting.
    pub protocol: ProtocolMetrics,
    /// Scheduler / command-buffer metrics.
    pub scheduler: SchedulerMetrics,
    /// Translation-layer metrics.
    pub translator: TranslatorMetrics,
    /// Network-path gauges.
    pub net: NetMetrics,
    /// Client-side metrics.
    pub client: ClientMetrics,
    /// Fault and resilience counters.
    pub resilience: ResilienceMetrics,
    /// Sampled metric timeline.
    pub timeline: Timeline,
}

impl SessionTelemetry {
    /// An empty session for a scheduler with `num_bands` size queues.
    pub fn new(num_bands: usize) -> Self {
        Self {
            scheduler: SchedulerMetrics::new(num_bands),
            ..Self::default()
        }
    }

    /// A plain-data snapshot of every group, ready for reporting.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            commands: self.protocol.rows(),
            total_messages: self.protocol.total_messages(),
            total_bytes: self.protocol.total_bytes(),
            scheduler: SchedulerSnapshot {
                band_depth_max: (0..self.scheduler.num_bands())
                    .map(|b| self.scheduler.band_depth(b).max() as u64)
                    .collect(),
                realtime_depth_max: self.scheduler.realtime_depth().max() as u64,
                merges: self.scheduler.merges(),
                evictions: self.scheduler.evictions(),
                splits: self.scheduler.splits(),
                flush_latency_mean_us: self.scheduler.flush_latency_us().mean(),
                flush_latency_p50_us: self.scheduler.flush_latency_us().quantile(0.5),
                flush_latency_p99_us: self.scheduler.flush_latency_us().quantile(0.99),
                flushed: self.scheduler.flush_latency_us().count(),
            },
            translator: TranslatorSnapshot {
                translated: CommandKind::ALL
                    .iter()
                    .filter(|k| self.translator.translated(**k) > 0)
                    .map(|&k| (k, self.translator.translated(k)))
                    .collect(),
                raw_fallbacks: self.translator.raw_fallbacks(),
                raw_fallback_bytes: self.translator.raw_fallback_bytes(),
                offscreen_queued: self.translator.offscreen_queued(),
                queue_executions: self.translator.queue_executions(),
            },
            net: NetSnapshot {
                cwnd_bytes: self.net.cwnd_bytes().get() as u64,
                cwnd_bytes_max: self.net.cwnd_bytes().max() as u64,
                utilization: self.net.utilization().get(),
                utilization_max: self.net.utilization().max(),
                bytes_sent: self.net.bytes_sent(),
            },
            client: ClientSnapshot {
                decoded: CommandKind::ALL
                    .iter()
                    .filter(|k| self.client.decoded(**k) > 0)
                    .map(|&k| (k, self.client.decoded(k)))
                    .collect(),
                decode_errors: self.client.decode_errors(),
                frame_latency_mean_us: self.client.frame_latency_us().mean(),
                frame_latency_p99_us: self.client.frame_latency_us().quantile(0.99),
                frames: self.client.frame_latency_us().count(),
            },
            resilience: self.resilience.snapshot(),
        }
    }

    /// Exports the timeline as JSON Lines (see `docs/TELEMETRY.md`
    /// for the schema).
    pub fn export_jsonl(&self) -> String {
        self.timeline.to_jsonl()
    }
}

/// Plain-data snapshot of a session (everything a report needs,
/// no live metric types).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Per-command breakdown (kinds with traffic only).
    pub commands: Vec<CommandRow>,
    /// Total messages across all kinds.
    pub total_messages: u64,
    /// Total encoded wire bytes across all kinds.
    pub total_bytes: u64,
    /// Scheduler summary.
    pub scheduler: SchedulerSnapshot,
    /// Translator summary.
    pub translator: TranslatorSnapshot,
    /// Network summary.
    pub net: NetSnapshot,
    /// Client summary.
    pub client: ClientSnapshot,
    /// Fault and resilience summary.
    pub resilience: ResilienceSnapshot,
}

/// Scheduler/buffer summary inside a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerSnapshot {
    /// High-water queue depth per size band.
    pub band_depth_max: Vec<u64>,
    /// High-water depth of the realtime queue.
    pub realtime_depth_max: u64,
    /// Commands merged into predecessors.
    pub merges: u64,
    /// Commands evicted before sending.
    pub evictions: u64,
    /// Commands split for non-blocking delivery.
    pub splits: u64,
    /// Mean enqueue-to-wire latency (µs).
    pub flush_latency_mean_us: f64,
    /// Median enqueue-to-wire latency (µs, bucket resolution).
    pub flush_latency_p50_us: u64,
    /// 99th-percentile enqueue-to-wire latency (µs, bucket
    /// resolution).
    pub flush_latency_p99_us: u64,
    /// Commands whose flush latency was recorded.
    pub flushed: u64,
}

/// Translator summary inside a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslatorSnapshot {
    /// Operations translated per command kind (nonzero kinds only).
    pub translated: Vec<(CommandKind, u64)>,
    /// Times the translator fell back to raw pixels.
    pub raw_fallbacks: u64,
    /// Raw pixel bytes produced by fallbacks.
    pub raw_fallback_bytes: u64,
    /// Commands queued against offscreen pixmaps.
    pub offscreen_queued: u64,
    /// Offscreen queues executed onscreen.
    pub queue_executions: u64,
}

/// Network summary inside a [`TelemetrySnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetSnapshot {
    /// Last sampled congestion window (bytes).
    pub cwnd_bytes: u64,
    /// Largest sampled congestion window (bytes).
    pub cwnd_bytes_max: u64,
    /// Last sampled link utilization (0–1).
    pub utilization: f64,
    /// Largest sampled link utilization (0–1).
    pub utilization_max: f64,
    /// Total payload bytes sent downlink.
    pub bytes_sent: u64,
}

/// Client summary inside a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSnapshot {
    /// Messages decoded per command kind (nonzero kinds only).
    pub decoded: Vec<(CommandKind, u64)>,
    /// Messages that failed to execute.
    pub decode_errors: u64,
    /// Mean request-to-screen latency (µs).
    pub frame_latency_mean_us: f64,
    /// 99th-percentile request-to-screen latency (µs, bucket
    /// resolution).
    pub frame_latency_p99_us: u64,
    /// Updates whose latency was recorded.
    pub frames: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_rows_share_sums_to_one() {
        let mut m = ProtocolMetrics::new();
        m.record(CommandKind::Raw, 750);
        m.record(CommandKind::Copy, 150);
        m.record(CommandKind::Sfill, 100);
        let rows = m.rows();
        assert_eq!(rows.len(), 3);
        let total_share: f64 = rows.iter().map(|r| r.share).sum();
        assert!((total_share - 1.0).abs() < 1e-9);
        assert_eq!(m.total_messages(), 3);
    }

    #[test]
    fn protocol_merge_adds_both_sides() {
        let mut display = ProtocolMetrics::new();
        display.record(CommandKind::Raw, 100);
        let mut av = ProtocolMetrics::new();
        av.record(CommandKind::Video, 900);
        display.merge(&av);
        assert_eq!(display.total_bytes(), 1000);
        assert_eq!(display.count(CommandKind::Video), 1);
        assert_eq!(display.size_histogram(CommandKind::Video).count(), 1);
    }

    #[test]
    fn protocol_size_histogram_tracks_quantiles() {
        let mut m = ProtocolMetrics::new();
        for _ in 0..99 {
            m.record(CommandKind::Sfill, 26);
        }
        m.record(CommandKind::Sfill, 4000);
        let h = m.size_histogram(CommandKind::Sfill);
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), 32); // Bucket bound covering 26 B.
        assert_eq!(h.quantile(1.0), 4096);
        assert_eq!(m.size_histogram(CommandKind::Raw).count(), 0);
    }

    #[test]
    fn scheduler_depth_sampling_ignores_out_of_range_band() {
        let mut m = SchedulerMetrics::new(2);
        m.sample_depth(5, 100, 1); // Out-of-range band: realtime still sampled.
        assert_eq!(m.realtime_depth().max(), 1.0);
        assert_eq!(m.band_depth(0).max(), 0.0);
    }

    #[test]
    fn snapshot_mirrors_live_groups() {
        let mut s = SessionTelemetry::new(4);
        s.protocol.record(CommandKind::Bitmap, 64);
        s.scheduler.record_merge();
        s.scheduler.sample_depth(1, 6, 0);
        s.scheduler.record_flush_latency_us(300);
        s.translator.record_translated(CommandKind::Bitmap);
        s.translator.record_raw_fallback(512);
        s.net.sample(4096.0, 0.5);
        s.net.add_bytes(64);
        s.client.record_decoded(CommandKind::Bitmap);
        s.client.record_frame_latency_us(900);
        let snap = s.snapshot();
        assert_eq!(snap.commands[0].kind, CommandKind::Bitmap);
        assert_eq!(snap.scheduler.merges, 1);
        assert_eq!(snap.scheduler.band_depth_max[1], 6);
        assert_eq!(snap.scheduler.flushed, 1);
        assert_eq!(snap.translator.raw_fallback_bytes, 512);
        assert_eq!(snap.net.cwnd_bytes, 4096);
        assert_eq!(snap.client.decoded, vec![(CommandKind::Bitmap, 1)]);
        assert_eq!(snap.client.frames, 1);
    }
}
