//! The per-command-type classification shared by every layer's
//! metrics.

/// Classification of protocol traffic by command/message type.
///
/// The first five variants are the THINC display commands (Table 1 of
/// the paper); the rest cover the remaining message families that
/// share the wire.
///
/// ```
/// use thinc_telemetry::CommandKind;
///
/// assert_eq!(CommandKind::Raw.name(), "RAW");
/// assert_eq!(CommandKind::ALL.len(), CommandKind::COUNT);
/// assert!(CommandKind::Sfill.is_display());
/// assert!(!CommandKind::Audio.is_display());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CommandKind {
    /// Raw pixel data (`RAW`), possibly compressed.
    Raw,
    /// Frame-buffer to frame-buffer copy (`COPY`).
    Copy,
    /// Solid color fill (`SFILL`).
    Sfill,
    /// Pattern (tile) fill (`PFILL`).
    Pfill,
    /// Bitmap (stipple) fill (`BITMAP`).
    Bitmap,
    /// Video stream messages (init/data/move/end).
    Video,
    /// Audio stream messages.
    Audio,
    /// Cursor shape and position messages.
    Cursor,
    /// Session control: handshake, resize, view, input echoes.
    Control,
}

impl CommandKind {
    /// Number of kinds (array-sizing constant).
    pub const COUNT: usize = 9;

    /// Every kind, in canonical (reporting) order.
    pub const ALL: [CommandKind; CommandKind::COUNT] = [
        CommandKind::Raw,
        CommandKind::Copy,
        CommandKind::Sfill,
        CommandKind::Pfill,
        CommandKind::Bitmap,
        CommandKind::Video,
        CommandKind::Audio,
        CommandKind::Cursor,
        CommandKind::Control,
    ];

    /// Stable dense index of this kind (for array-backed metrics).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Display name matching the paper's command tables.
    pub fn name(self) -> &'static str {
        match self {
            CommandKind::Raw => "RAW",
            CommandKind::Copy => "COPY",
            CommandKind::Sfill => "SFILL",
            CommandKind::Pfill => "PFILL",
            CommandKind::Bitmap => "BITMAP",
            CommandKind::Video => "VIDEO",
            CommandKind::Audio => "AUDIO",
            CommandKind::Cursor => "CURSOR",
            CommandKind::Control => "CONTROL",
        }
    }

    /// Whether this is one of the five display commands.
    pub fn is_display(self) -> bool {
        matches!(
            self,
            CommandKind::Raw
                | CommandKind::Copy
                | CommandKind::Sfill
                | CommandKind::Pfill
                | CommandKind::Bitmap
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, k) in CommandKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn exactly_five_display_kinds() {
        let display = CommandKind::ALL.iter().filter(|k| k.is_display()).count();
        assert_eq!(display, 5);
    }
}
