//! Minimal offline stand-in for the `criterion` crate.
//!
//! Supplies the benchmark-definition surface the repo's `benches/`
//! files use — [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`Throughput`], [`criterion_group!`]
//! and [`criterion_main!`] — backed by a simple wall-clock timer
//! instead of criterion's statistical machinery. Each benchmark runs
//! a short calibration pass, then `sample_size` timed samples, and
//! prints the median time per iteration (plus derived throughput when
//! declared).
//!
//! Wall-clock time is appropriate here: this harness measures *host*
//! CPU cost of hot paths; the deterministic `SimTime` virtual clock
//! measures protocol behavior and is not involved in benchmarking.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` inputs are grouped (accepted for API
/// compatibility; this harness always times one routine call at a
/// time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream; single-call here.
    SmallInput,
    /// Large inputs: few per batch upstream; single-call here.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times closures and records per-sample durations.
pub struct Bencher {
    samples: Vec<Duration>,
    target_sample: Duration,
}

impl Bencher {
    fn new(target_sample: Duration) -> Self {
        Self {
            samples: Vec::new(),
            target_sample,
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: how many iterations fill the target sample time?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / iters as u32);
    }

    /// Times `routine` over fresh inputs built by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target_sample.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.samples.push(start.elapsed() / iters as u32);
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort();
        s.get(s.len() / 2).copied().unwrap_or_default()
    }
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, per_iter: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{name:<50} {:>12}/iter", human_time(per_iter));
    if let Some(t) = throughput {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match t {
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:>10.1} MiB/s", n as f64 / secs / (1 << 20) as f64));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:>10.0} elem/s", n as f64 / secs));
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks sharing settings.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    target_sample: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares per-iteration throughput for derived reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.target_sample);
        for _ in 0..self.samples {
            f(&mut b);
        }
        let label = format!("{}/{}", self.name, id.into());
        report(&label, b.median(), self.throughput);
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    target_sample: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            // Keep total bench time modest: ~2 ms of work per sample.
            target_sample: Duration::from_millis(2),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            target_sample: self.target_sample,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.target_sample);
        for _ in 0..10 {
            f(&mut b);
        }
        report(&id.into(), b.median(), None);
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            runs += 1;
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
        assert_eq!(runs, 2);
    }

    #[test]
    fn human_time_units() {
        assert_eq!(human_time(Duration::from_nanos(500)), "500 ns");
        assert_eq!(human_time(Duration::from_micros(1500)), "1.50 ms");
    }
}
