//! Minimal offline stand-in for the `rand` crate.
//!
//! The workspace builds without network access; tests and workload
//! generators only need a deterministic seedable generator with the
//! `gen` / `gen_range` / `gen_bool` surface, so this vendored crate
//! provides exactly that. [`rngs::StdRng`] is a SplitMix64 generator:
//! fast, well distributed for test purposes, and — unlike the real
//! `StdRng` — guaranteed stable across releases, which is a feature
//! here (checksummed end-to-end tests stay reproducible forever).
//!
//! Not a cryptographic generator; nothing in this repository uses it
//! as one.

#![warn(missing_docs)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Equal seeds give equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's raw bits
/// (the stand-in for sampling from `rand`'s `Standard` distribution).
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) / (1u64 << 53) as f64
    }
}

/// Types with a uniform sampler over an interval. The single blanket
/// [`SampleRange`] impl for each range type is generic over this, so
/// type inference flows through `gen_range(40..120)` with
/// unconstrained integer literals exactly as it does with the real
/// `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `start..end`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;

    /// Uniform draw from `start..=end`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample empty range");
                let frac = ((rng.next_u64() >> 11) as f64) / (1u64 << 53) as f64;
                start + (frac as $t) * (end - start)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let frac = ((rng.next_u64() >> 11) as f64) / (1u64 << 53) as f64;
                start + (frac as $t) * (end - start)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic SplitMix64 generator. Stands in for `rand`'s
    /// `StdRng`; equal seeds produce equal streams on every platform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u8> = (0..32).map(|_| a.gen()).collect();
        let vb: Vec<u8> = (0..32).map(|_| b.gen()).collect();
        let vc: Vec<u8> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-8..100i32);
            assert!((-8..100).contains(&v));
            let u = rng.gen_range(1..=16u32);
            assert!((1..=16).contains(&u));
            let f = rng.gen_range(0.25f32..0.5);
            assert!((0.25..0.5).contains(&f));
            let s = rng.gen_range(0..25usize);
            assert!(s < 25);
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bins hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn negative_ranges_work() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let v: i64 = rng.gen_range(-1000..-10);
            assert!((-1000..-10).contains(&v));
        }
    }
}
