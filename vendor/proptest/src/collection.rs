//! Collection strategies: `prop::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Sizes accepted by [`vec`]: an exact length, `a..b`, or `a..=b`.
pub trait IntoSizeRange {
    /// The inclusive `(min, max)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.min == self.max {
            self.min
        } else {
            self.min + rng.index(self.max - self.min + 1)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for vectors whose elements come from `element` and
/// whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn respects_size_bounds() {
        let mut rng = TestRng::from_name("vec");
        let ranged = vec(any::<u8>(), 2..6);
        let exact = vec(any::<u8>(), 24usize);
        for _ in 0..200 {
            let v = ranged.generate(&mut rng);
            assert!((2..6).contains(&v.len()), "{}", v.len());
            assert_eq!(exact.generate(&mut rng).len(), 24);
        }
    }
}
