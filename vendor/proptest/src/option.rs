//! Option strategies: `prop::option::of`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.unit_f64() < 0.25 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// A strategy producing `None` about a quarter of the time and
/// `Some(inner)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::from_name("option");
        let strat = of(any::<u8>());
        let values: Vec<Option<u8>> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(values.iter().any(|v| v.is_none()));
        assert!(values.iter().any(|v| v.is_some()));
    }
}
