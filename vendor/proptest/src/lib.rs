//! Minimal offline stand-in for the `proptest` crate.
//!
//! The workspace builds without network access, so this vendored
//! crate supplies the subset of proptest the repository's property
//! tests use: the [`proptest!`] macro, `prop_assert*` macros,
//! [`prop_oneof!`], [`strategy::Strategy`] with `prop_map`, range and
//! tuple strategies, [`arbitrary::any`], [`collection::vec`] and
//! [`option::of`].
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports the case index; rerun
//!   with the same build to reproduce (generation is deterministic,
//!   seeded from the test name).
//! - **Fixed case count** (default 64, configurable via
//!   `ProptestConfig::with_cases`), independent of the
//!   `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The `prop::` namespace exposed by the prelude (mirrors upstream's
/// `proptest::prelude::prop`).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Everything a property-test module needs, in one import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_oneof, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..)`
/// item becomes a plain `#[test]` that runs the body over generated
/// cases. An optional leading `#![proptest_config(..)]` sets the case
/// count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a
/// precondition (upstream rejects the case; here it is simply not
/// counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Picks uniformly between several strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}
