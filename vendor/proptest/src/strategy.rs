//! The [`Strategy`] trait and its combinators: maps, unions, ranges
//! and tuples.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over the given options.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_maps_and_tuples_compose() {
        let mut rng = TestRng::from_name("compose");
        let strat = (0..10u32, (-5..5i32).prop_map(|v| v * 2)).prop_map(|(a, b)| (a, b));
        for _ in 0..200 {
            let (a, b) = strat.generate(&mut rng);
            assert!(a < 10);
            assert!((-10..10).contains(&b));
            assert_eq!(b % 2, 0);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::from_name("union");
        let strat = Union::new(vec![
            Box::new(Just(1u8)) as Box<dyn Strategy<Value = u8>>,
            Box::new(Just(2u8)),
            Box::new(Just(3u8)),
        ]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
