//! Deterministic case generation: the RNG behind every strategy and
//! the per-test configuration.

/// SplitMix64 generator used to produce test cases. Seeded from the
/// test's name, so every test has an independent, reproducible
/// stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty set");
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) / (1u64 << 53) as f64
    }
}

/// Per-test configuration accepted by
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_is_stable_and_distinct() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("alpha");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = TestRng::from_name("alpha");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("beta");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }
}
