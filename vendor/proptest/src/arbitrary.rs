//! `any::<T>()`: strategies for primitives drawn from their full
//! value range.

use core::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_small_domains() {
        let mut rng = TestRng::from_name("any");
        let strat = any::<(u8, bool)>();
        let mut low = false;
        let mut high = false;
        for _ in 0..500 {
            let (v, _b) = strat.generate(&mut rng);
            low |= v < 32;
            high |= v > 224;
        }
        assert!(low && high, "u8 range poorly covered");
    }
}
