//! Minimal offline stand-in for the `bytes` crate.
//!
//! The workspace builds without network access, so instead of the
//! real `bytes` dependency this vendored crate provides the small
//! slice-cursor subset the THINC wire codec actually uses: [`Buf`]
//! implemented for `&[u8]` and [`BufMut`] implemented for `Vec<u8>`,
//! with the little-endian fixed-width accessors.
//!
//! Semantics match the upstream crate for this subset: reads panic
//! when fewer bytes remain than the accessor needs (callers are
//! expected to check [`Buf::remaining`] first, as the codec does).

#![warn(missing_docs)]

/// Read access to a cursor of bytes.
pub trait Buf {
    /// Bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The unread bytes, starting at the cursor.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16` and advances.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `i32` and advances.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        i32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Appends a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_width() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_i32_le(-7);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_slice(b"xyz");
        let mut cur: &[u8] = &buf;
        assert_eq!(cur.remaining(), 1 + 2 + 4 + 4 + 8 + 3);
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u16_le(), 0x1234);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_i32_le(), -7);
        assert_eq!(cur.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(cur.chunk(), b"xyz");
        cur.advance(3);
        assert_eq!(cur.remaining(), 0);
    }
}
