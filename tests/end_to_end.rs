//! End-to-end integration: random application workloads through the
//! complete THINC pipeline — window server, translation layer,
//! scheduler, wire encoding, RC4, frame reassembly, client execution —
//! verified by byte-comparing the client framebuffer against the
//! server screen.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thinc::client::ThincClient;
use thinc::compress::Rc4;
use thinc::core::server::{ServerConfig, ThincServer};
use thinc::display::drawable::DrawableId;
use thinc::display::request::{DrawRequest, RequestResult};
use thinc::display::server::WindowServer;
use thinc::display::SCREEN;
use thinc::net::link::NetworkConfig;
use thinc::net::time::SimTime;
use thinc::net::trace::PacketTrace;
use thinc::protocol::wire::{encode_message, FrameReader};
use thinc::raster::{Color, PixelFormat, Rect};

const KEY: &[u8] = b"integration-test-key";

struct Pipeline {
    ws: WindowServer<ThincServer>,
    client: ThincClient,
    link: thinc::net::link::DuplexLink,
    trace: PacketTrace,
    server_rc4: Rc4,
    client_rc4: Rc4,
    reader: FrameReader,
    now: SimTime,
}

impl Pipeline {
    fn new(w: u32, h: u32, net: &NetworkConfig) -> Self {
        let config = ServerConfig {
            width: w,
            height: h,
            rc4_key: Some(KEY.to_vec()),
            ..ServerConfig::default()
        };
        Self {
            ws: WindowServer::new(w, h, PixelFormat::Rgb888, ThincServer::new(config)),
            client: ThincClient::new(w, h, PixelFormat::Rgb888),
            link: net.connect(),
            trace: PacketTrace::new(),
            server_rc4: Rc4::new(KEY),
            client_rc4: Rc4::new(KEY),
            reader: FrameReader::new(),
            now: SimTime::ZERO,
        }
    }

    fn pump_to_client(&mut self) {
        for _ in 0..100_000 {
            let batch = self
                .ws
                .driver_mut()
                .flush(self.now, &mut self.link.down, &mut self.trace);
            for (_arrival, msg) in &batch {
                let mut bytes = encode_message(msg);
                self.server_rc4.apply(&mut bytes);
                self.client_rc4.apply(&mut bytes);
                self.reader.feed(&bytes);
                while let Some(m) = self.reader.next_message().expect("valid wire stream") {
                    self.client.apply(&m);
                }
            }
            if self.ws.driver().display_backlog() == 0 && self.ws.driver().av_backlog() == 0 {
                break;
            }
            self.now = self
                .link
                .down
                .tx_free_at()
                .max(self.now + thinc::net::time::SimDuration::from_millis(1));
        }
        assert_eq!(self.ws.driver().display_backlog(), 0, "backlog did not drain");
    }

    fn assert_synced(&self, context: &str) {
        assert_eq!(
            self.client.framebuffer().checksum(),
            self.ws.screen().checksum(),
            "client != server after {context}"
        );
    }
}

fn random_color(rng: &mut StdRng) -> Color {
    Color::rgb(rng.gen(), rng.gen(), rng.gen())
}

fn random_rect(rng: &mut StdRng, w: u32, h: u32) -> Rect {
    let x = rng.gen_range(-8..w as i32);
    let y = rng.gen_range(-8..h as i32);
    Rect::new(x, y, rng.gen_range(1..=w / 2), rng.gen_range(1..=h / 2))
}

/// Random drawing requests, onscreen and offscreen, with copies
/// between every kind of drawable.
fn random_requests(
    rng: &mut StdRng,
    w: u32,
    h: u32,
    pixmaps: &mut Vec<DrawableId>,
    out: &mut Vec<DrawRequest>,
    n: usize,
) {
    for _ in 0..n {
        let target = if !pixmaps.is_empty() && rng.gen_bool(0.4) {
            pixmaps[rng.gen_range(0..pixmaps.len())]
        } else {
            SCREEN
        };
        match rng.gen_range(0..7) {
            0 => out.push(DrawRequest::FillRect {
                target,
                rect: random_rect(rng, w, h),
                color: random_color(rng),
            }),
            1 => {
                let r = random_rect(rng, w, h);
                let bytes = (r.w * r.h * 3) as usize;
                out.push(DrawRequest::PutImage {
                    target,
                    rect: r,
                    data: (0..bytes).map(|_| rng.gen()).collect(),
                });
            }
            2 => {
                let r = random_rect(rng, w, h);
                let row_bytes = ((r.w as usize) + 7) / 8;
                out.push(DrawRequest::StippleRect {
                    target,
                    rect: r,
                    bits: (0..row_bytes * r.h as usize).map(|_| rng.gen()).collect(),
                    fg: random_color(rng),
                    bg: if rng.gen_bool(0.5) {
                        Some(random_color(rng))
                    } else {
                        None
                    },
                });
            }
            3 => out.push(DrawRequest::Text {
                target,
                x: rng.gen_range(0..w as i32),
                y: rng.gen_range(0..h as i32),
                text: "integration test".chars().take(rng.gen_range(1..16)).collect(),
                fg: random_color(rng),
            }),
            4 => {
                // Copy within / between drawables.
                let src = if !pixmaps.is_empty() && rng.gen_bool(0.5) {
                    pixmaps[rng.gen_range(0..pixmaps.len())]
                } else {
                    SCREEN
                };
                out.push(DrawRequest::CopyArea {
                    src,
                    dst: target,
                    src_rect: random_rect(rng, w, h),
                    dst_x: rng.gen_range(-4..w as i32),
                    dst_y: rng.gen_range(-4..h as i32),
                });
            }
            5 => {
                if !pixmaps.is_empty() && rng.gen_bool(0.6) {
                    // Copy a pixmap onscreen (the offscreen execution
                    // path).
                    let src = pixmaps[rng.gen_range(0..pixmaps.len())];
                    out.push(DrawRequest::CopyArea {
                        src,
                        dst: SCREEN,
                        src_rect: random_rect(rng, w, h),
                        dst_x: rng.gen_range(0..w as i32),
                        dst_y: rng.gen_range(0..h as i32),
                    });
                }
            }
            _ => out.push(DrawRequest::FillRect {
                target: SCREEN,
                rect: random_rect(rng, w, h),
                color: random_color(rng),
            }),
        }
    }
}

#[test]
fn random_workload_client_matches_server_lan() {
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = Pipeline::new(96, 72, &NetworkConfig::lan_desktop());
        let mut pixmaps = Vec::new();
        for round in 0..6 {
            // Occasionally create/free pixmaps.
            if rng.gen_bool(0.7) {
                if let RequestResult::Created(id) = p.ws.process(DrawRequest::CreatePixmap {
                    width: rng.gen_range(8..64),
                    height: rng.gen_range(8..64),
                }) {
                    pixmaps.push(id);
                }
            }
            let mut reqs = Vec::new();
            random_requests(&mut rng, 96, 72, &mut pixmaps, &mut reqs, 25);
            p.ws.process_all(reqs);
            p.pump_to_client();
            p.assert_synced(&format!("seed {seed} round {round}"));
        }
    }
}

#[test]
fn random_workload_client_matches_server_wan_with_splits() {
    // High-latency, small-window path: flushes split large commands
    // and spread over many rounds; the result must still converge.
    let net = NetworkConfig::custom(
        "tight",
        2_000_000,
        thinc::net::time::SimDuration::from_millis(40),
        32 * 1024,
    );
    for seed in 100..103u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = Pipeline::new(96, 72, &net);
        let mut pixmaps = Vec::new();
        let mut reqs = Vec::new();
        random_requests(&mut rng, 96, 72, &mut pixmaps, &mut reqs, 40);
        p.ws.process_all(reqs);
        p.pump_to_client();
        p.assert_synced(&format!("seed {seed}"));
        assert!(
            p.ws.driver().stats().buffer.splits > 0 || p.trace.total_bytes() < 32 * 1024,
            "expected command splitting on the tight link"
        );
    }
}

#[test]
fn input_driven_realtime_updates_stay_correct() {
    let mut p = Pipeline::new(96, 72, &NetworkConfig::wan_desktop());
    // Click, then interleave feedback near the pointer with bulk
    // updates far away; the scheduler reorders, the final state must
    // still match.
    p.ws.driver_mut()
        .handle_message(&thinc::protocol::message::Message::Input(
            thinc::protocol::message::ProtocolInput::ButtonPress { x: 10, y: 10, button: 1 },
        ));
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..10 {
        let bulk: Vec<u8> = (0..40 * 30 * 3).map(|_| rng.gen()).collect();
        p.ws.process(DrawRequest::PutImage {
            target: SCREEN,
            rect: Rect::new(50, 40, 40, 30),
            data: bulk,
        });
        p.ws.process(DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(8, 8, 6, 6),
            color: random_color(&mut rng),
        });
    }
    p.pump_to_client();
    p.assert_synced("realtime interleaving");
}

#[test]
fn pixmap_free_and_recreate_cycle() {
    let mut p = Pipeline::new(64, 64, &NetworkConfig::lan_desktop());
    for i in 0..10 {
        let id = match p.ws.process(DrawRequest::CreatePixmap { width: 16, height: 16 }) {
            RequestResult::Created(id) => id,
            other => panic!("{other:?}"),
        };
        p.ws.process_all(vec![
            DrawRequest::FillRect {
                target: id,
                rect: Rect::new(0, 0, 16, 16),
                color: Color::rgb(i as u8 * 20, 0, 0),
            },
            DrawRequest::CopyArea {
                src: id,
                dst: SCREEN,
                src_rect: Rect::new(0, 0, 16, 16),
                dst_x: (i % 4) * 16,
                dst_y: (i / 4) * 16,
            },
            DrawRequest::FreePixmap { id },
        ]);
    }
    p.pump_to_client();
    p.assert_synced("pixmap churn");
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let mut rng = StdRng::seed_from_u64(42);
        let mut p = Pipeline::new(96, 72, &NetworkConfig::wan_desktop());
        let mut pixmaps = Vec::new();
        let mut reqs = Vec::new();
        random_requests(&mut rng, 96, 72, &mut pixmaps, &mut reqs, 30);
        p.ws.process_all(reqs);
        p.pump_to_client();
        (
            p.client.framebuffer().checksum(),
            p.trace.total_bytes(),
            p.now,
        )
    };
    assert_eq!(run(), run());
}
