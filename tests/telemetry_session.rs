//! Session-level telemetry integration: a scripted web-browsing
//! session through the full THINC pipeline must light up a counter
//! for every display command type the protocol can emit, and the
//! client's decode counts must agree with what the server sent.
//!
//! The browsing workload alone exercises RAW (images), SFILL
//! (solid backgrounds) and BITMAP (glyphs); the script adds a
//! pattern fill (PFILL) and an onscreen scroll (COPY) so all five
//! display commands of §4.1 appear in one session.

use thinc::baselines::traits::RemoteDisplay;
use thinc::bench::thinc_system::ThincSystem;
use thinc::bench::webbench::run_web;
use thinc::display::drawable::DrawableId;
use thinc::display::request::DrawRequest;
use thinc::display::SCREEN;
use thinc::net::link::NetworkConfig;
use thinc::net::time::SimTime;
use thinc::raster::{Color, Rect};
use thinc::telemetry::CommandKind;
use thinc::workloads::web::WebWorkload;

#[test]
fn scripted_web_session_counts_every_display_command() {
    let mut sys = ThincSystem::new(&NetworkConfig::lan_desktop(), 1024, 768);

    // Scripted prologue (before the workload so the pixmap id is
    // predictable): an 8x8 checker tiled across a region, then an
    // onscreen scroll.
    let tile = DrawableId(1);
    let reqs = vec![
        DrawRequest::CreatePixmap {
            width: 8,
            height: 8,
        },
        DrawRequest::FillRect {
            target: tile,
            rect: Rect::new(0, 0, 8, 8),
            color: Color::rgb(200, 200, 200),
        },
        DrawRequest::FillRect {
            target: tile,
            rect: Rect::new(0, 0, 4, 4),
            color: Color::rgb(40, 40, 40),
        },
        DrawRequest::TileRect {
            target: SCREEN,
            rect: Rect::new(0, 0, 256, 256),
            tile,
        },
        DrawRequest::CopyArea {
            src: SCREEN,
            dst: SCREEN,
            src_rect: Rect::new(0, 0, 128, 128),
            dst_x: 300,
            dst_y: 300,
        },
    ];
    sys.process(SimTime::ZERO, reqs);
    sys.drain(SimTime::ZERO);

    // A few pages of the standard browsing workload.
    run_web(&mut sys, &WebWorkload::standard(), 6);

    let t = sys.session_telemetry();
    let snap = t.snapshot();

    // Every §4.1 display command type was sent at least once.
    for kind in [
        CommandKind::Raw,
        CommandKind::Copy,
        CommandKind::Sfill,
        CommandKind::Pfill,
        CommandKind::Bitmap,
    ] {
        assert!(
            t.protocol.count(kind) > 0,
            "server never sent {}",
            kind.name()
        );
        assert!(
            t.client.decoded(kind) > 0,
            "client never decoded {}",
            kind.name()
        );
        // Nothing was lost in flight: the client decoded exactly as
        // many messages of each kind as the server put on the wire.
        assert_eq!(
            t.client.decoded(kind),
            t.protocol.count(kind),
            "sent/decoded mismatch for {}",
            kind.name()
        );
    }

    // Wire accounting is self-consistent.
    assert_eq!(
        snap.total_messages,
        snap.commands.iter().map(|r| r.count).sum::<u64>()
    );
    assert_eq!(
        snap.total_bytes,
        snap.commands.iter().map(|r| r.bytes).sum::<u64>()
    );
    let share: f64 = snap.commands.iter().map(|r| r.share).sum();
    assert!((share - 1.0).abs() < 1e-9, "shares sum to {share}");

    // The translator observed the same command mix it emitted.
    assert!(snap
        .translator
        .translated
        .iter()
        .any(|&(k, n)| k == CommandKind::Pfill && n > 0));

    // Flush latency was measured for the display path, and the
    // timeline captured link samples for the JSONL export.
    assert!(snap.scheduler.flushed > 0);
    assert!(!t.timeline.is_empty());
    let jsonl = t.export_jsonl();
    assert!(jsonl.lines().count() == t.timeline.len());
    assert!(jsonl.lines().all(|l| l.starts_with("{\"t_us\":")));

    // Clicks during the workload closed request-to-screen samples.
    assert!(snap.client.frames > 0);
    assert_eq!(snap.client.decode_errors, 0);

    // And the session still verifies: client framebuffer == screen.
    assert!(sys.verified());
}
