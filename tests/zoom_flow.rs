//! End-to-end zoom flow (§6): a PDA client views the desktop zoomed
//! out, zooms into a region (showing a temporary magnified preview
//! built from local pixels), the server remaps its view and refreshes
//! with full-detail content.

use thinc::client::{ThincClient, ZoomController};
use thinc::core::server::{ServerConfig, ThincServer};
use thinc::display::request::DrawRequest;
use thinc::display::server::WindowServer;
use thinc::display::SCREEN;
use thinc::net::link::NetworkConfig;
use thinc::net::time::{SimDuration, SimTime};
use thinc::net::trace::PacketTrace;
use thinc::protocol::message::Message;
use thinc::raster::{Color, PixelFormat, Point, Rect};

const W: u32 = 512;
const H: u32 = 384;
const VW: u32 = 128;
const VH: u32 = 96;

fn drain(
    ws: &mut WindowServer<ThincServer>,
    link: &mut thinc::net::link::DuplexLink,
    trace: &mut PacketTrace,
    client: &mut ThincClient,
) {
    let mut now = SimTime::ZERO;
    for _ in 0..10_000 {
        let batch = ws.driver_mut().flush(now, &mut link.down, trace);
        for (_, m) in batch {
            client.apply(&m);
        }
        if ws.driver().display_backlog() == 0 && ws.driver().av_backlog() == 0 {
            break;
        }
        now = link.down.tx_free_at().max(now + SimDuration::from_millis(1));
    }
}

#[test]
fn zoom_in_refresh_brings_full_detail() {
    let config = ServerConfig {
        width: W,
        height: H,
        compress_raw: false,
        ..ServerConfig::default()
    };
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, ThincServer::new(config));
    ws.driver_mut().handle_message(&Message::ClientHello {
        version: 1,
        viewport_width: VW,
        viewport_height: VH,
    });
    let mut client = ThincClient::new(VW, VH, PixelFormat::Rgb888);
    let mut link = NetworkConfig::pda_802_11g().connect();
    let mut trace = PacketTrace::new();
    let mut zoom = ZoomController::new(W, H, VW, VH);

    // Desktop content: distinct quadrant colors plus a fine feature
    // in the top-left quadrant that vanishes at zoomed-out scale.
    ws.process_all(vec![
        DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(0, 0, W / 2, H / 2),
            color: Color::rgb(200, 0, 0),
        },
        DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(W as i32 / 2, 0, W / 2, H / 2),
            color: Color::rgb(0, 200, 0),
        },
        DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(0, H as i32 / 2, W, H / 2),
            color: Color::rgb(0, 0, 200),
        },
        // A 1-px-tall line: invisible at 4x downscale, visible zoomed.
        DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(20, 21, 200, 1),
            color: Color::WHITE,
        },
    ]);
    drain(&mut ws, &mut link, &mut trace, &mut client);

    // Zoomed out: quadrant colors visible; the fine line is blended
    // into the red quadrant.
    let zoomed_out_red = client.framebuffer().get_pixel(10, 10).unwrap();
    assert!(zoomed_out_red.r > 100, "{zoomed_out_red:?}");

    // Zoom into the top-left quadrant.
    let old_view = zoom.view();
    let set_view = zoom.zoom_in(Point::new(VW as i32 / 4, VH as i32 / 4), 2);
    // Temporary preview uses only local pixels.
    let preview = zoom.magnify_preview(client.framebuffer(), old_view);
    assert_eq!((preview.width(), preview.height()), (VW, VH));
    // Server receives the view change and refreshes.
    ws.driver_mut().handle_message(&set_view);
    assert_eq!(ws.driver().view(), zoom.view());
    let screen = ws.screen().clone();
    ws.driver_mut().refresh_view(&screen);
    drain(&mut ws, &mut link, &mut trace, &mut client);

    // After the refresh, the client sees the zoomed region at higher
    // detail: the fine white line now resolves.
    let view = zoom.view();
    let line_in_view_x = (20 - view.x) as i64 * VW as i64 / view.w as i64;
    let line_in_view_y = (21 - view.y) as i64 * VH as i64 / view.h as i64;
    let mut found_bright = false;
    for dy in -2..=2i64 {
        for dx in 0..40i64 {
            if let Some(c) = client
                .framebuffer()
                .get_pixel((line_in_view_x + dx) as i32, (line_in_view_y + dy) as i32)
            {
                // Anti-aliased remnant of the white line over red.
                if c.g > 60 && c.b > 60 {
                    found_bright = true;
                }
            }
        }
    }
    assert!(found_bright, "zoomed refresh should resolve the fine line");

    // Drawing outside the view sends nothing.
    let bytes_before = trace.total_bytes();
    ws.process(DrawRequest::FillRect {
        target: SCREEN,
        rect: Rect::new(W as i32 - 50, H as i32 - 50, 40, 40),
        color: Color::rgb(9, 9, 9),
    });
    drain(&mut ws, &mut link, &mut trace, &mut client);
    assert_eq!(
        trace.total_bytes(),
        bytes_before,
        "updates outside the zoomed view must not be transmitted"
    );

    // Zoom back out and refresh: full desktop again.
    let msg = zoom.zoom_out();
    ws.driver_mut().handle_message(&msg);
    let screen = ws.screen().clone();
    ws.driver_mut().refresh_view(&screen);
    drain(&mut ws, &mut link, &mut trace, &mut client);
    let bottom = client.framebuffer().get_pixel(VW as i32 / 2, VH as i32 - 5).unwrap();
    assert!(bottom.b > 100, "bottom half should be blue again: {bottom:?}");
}
