//! Mobility and cursor integration: the session's true state lives on
//! the server, so a user can drop the connection, walk to another
//! device and resynchronize — getting the identical desktop plus the
//! session cursor — exactly the §1/§2 thin-client promise.

use thinc::client::ThincClient;
use thinc::core::server::{ServerConfig, ThincServer};
use thinc::display::request::DrawRequest;
use thinc::display::server::WindowServer;
use thinc::display::SCREEN;
use thinc::net::link::NetworkConfig;
use thinc::net::time::{SimDuration, SimTime};
use thinc::net::trace::PacketTrace;
use thinc::protocol::message::{Message, ProtocolInput};
use thinc::raster::{Color, PixelFormat, Rect};

const W: u32 = 160;
const H: u32 = 120;

fn drain_to(
    ws: &mut WindowServer<ThincServer>,
    link: &mut thinc::net::link::DuplexLink,
    trace: &mut PacketTrace,
    client: &mut ThincClient,
) {
    let mut now = SimTime::ZERO;
    for _ in 0..10_000 {
        let batch = ws.driver_mut().flush(now, &mut link.down, trace);
        for (_, m) in batch {
            client.apply(&m);
        }
        if ws.driver().display_backlog() == 0 && ws.driver().av_backlog() == 0 {
            break;
        }
        now = link.down.tx_free_at().max(now + SimDuration::from_millis(1));
    }
}

fn cursor_pixels() -> Vec<u8> {
    let mut px = Vec::new();
    for y in 0..8 {
        for x in 0..8 {
            if x + y < 8 {
                px.extend_from_slice(&[0, 0, 0, 255]); // Arrow-ish.
            } else {
                px.extend_from_slice(&[0, 0, 0, 0]);
            }
        }
    }
    px
}

#[test]
fn reconnect_from_a_new_device_restores_the_session() {
    let config = ServerConfig {
        width: W,
        height: H,
        ..ServerConfig::default()
    };
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, ThincServer::new(config));
    ws.driver_mut().set_cursor(8, 8, 0, 0, cursor_pixels());

    // First device: receive a desktop, interact, then vanish.
    let net = NetworkConfig::lan_desktop();
    let mut link1 = net.connect();
    let mut trace1 = PacketTrace::new();
    let mut device1 = ThincClient::new(W, H, PixelFormat::Rgb888);
    ws.process_all(vec![
        DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(0, 0, W, H),
            color: Color::rgb(30, 60, 90),
        },
        DrawRequest::Text {
            target: SCREEN,
            x: 10,
            y: 10,
            text: "persistent session".into(),
            fg: Color::WHITE,
        },
    ]);
    ws.driver_mut()
        .handle_message(&Message::Input(ProtocolInput::PointerMove { x: 50, y: 40 }));
    drain_to(&mut ws, &mut link1, &mut trace1, &mut device1);
    assert!(device1.cursor().visible());
    drop((device1, link1));

    // The session keeps evolving while nobody is connected.
    ws.process(DrawRequest::FillRect {
        target: SCREEN,
        rect: Rect::new(20, 60, 60, 30),
        color: Color::rgb(200, 180, 20),
    });
    // Updates queued for the vanished device are flushed to nowhere
    // once a new device attaches; resync carries the truth instead.
    let mut link2 = NetworkConfig::wan_desktop().connect();
    let mut trace2 = PacketTrace::new();
    let mut device2 = ThincClient::new(W, H, PixelFormat::Rgb888);
    let screen = ws.screen().clone();
    ws.driver_mut().resync(&screen);
    drain_to(&mut ws, &mut link2, &mut trace2, &mut device2);

    // The new device has the exact current desktop...
    assert_eq!(
        device2.framebuffer().checksum(),
        ws.screen().checksum(),
        "reconnected device must see the identical session"
    );
    // ...including the cursor shape, live immediately after a move.
    ws.driver_mut()
        .handle_message(&Message::Input(ProtocolInput::PointerMove { x: 80, y: 80 }));
    drain_to(&mut ws, &mut link2, &mut trace2, &mut device2);
    assert!(device2.cursor().visible());
    assert_eq!(
        device2.cursor().position(),
        Some(thinc::raster::Point::new(80, 80))
    );
    // The presented image differs from the framebuffer only where the
    // cursor is.
    let shown = device2.presented();
    assert_ne!(shown.data(), device2.framebuffer().data());
    assert_eq!(shown.get_pixel(81, 80), Some(Color::BLACK));
}

#[test]
fn cursor_motion_costs_bytes_not_display_updates() {
    let config = ServerConfig {
        width: W,
        height: H,
        ..ServerConfig::default()
    };
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, ThincServer::new(config));
    ws.driver_mut().set_cursor(8, 8, 0, 0, cursor_pixels());
    let net = NetworkConfig::lan_desktop();
    let mut link = net.connect();
    let mut trace = PacketTrace::new();
    let mut client = ThincClient::new(W, H, PixelFormat::Rgb888);
    drain_to(&mut ws, &mut link, &mut trace, &mut client);
    let before = trace.total_bytes();
    // 50 pointer moves.
    for i in 0..50 {
        ws.driver_mut()
            .handle_message(&Message::Input(ProtocolInput::PointerMove { x: i, y: i }));
    }
    drain_to(&mut ws, &mut link, &mut trace, &mut client);
    let per_move = (trace.total_bytes() - before) / 50;
    assert!(per_move < 32, "cursor move cost {per_move} bytes");
    // No display commands were generated by pointer motion.
    assert_eq!(client.stats().raw + client.stats().sfill, 0);
}
