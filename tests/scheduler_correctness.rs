//! Property-based verification of the §5 correctness argument: the
//! SRSF scheduler may reorder commands, evict stale ones, clip
//! partially-overwritten ones and split large ones — but the client's
//! final framebuffer must always equal the result of executing the
//! original command stream in order.

use proptest::prelude::*;
use thinc::client::ThincClient;
use thinc::core::buffer::ClientBuffer;
use thinc::net::tcp::{TcpParams, TcpPipe};
use thinc::net::time::{SimDuration, SimTime};
use thinc::net::trace::PacketTrace;
use thinc::protocol::commands::{DisplayCommand, RawEncoding, Tile};
use thinc::protocol::message::Message;
use thinc::raster::{Color, Framebuffer, PixelFormat, Rect};

const W: u32 = 48;
const H: u32 = 48;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0..W as i32, 0..H as i32, 1..=W / 2, 1..=H / 2).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

fn arb_color() -> impl Strategy<Value = Color> {
    (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(r, g, b)| Color::rgb(r, g, b))
}

fn arb_command() -> impl Strategy<Value = DisplayCommand> {
    prop_oneof![
        (arb_rect(), arb_color()).prop_map(|(rect, color)| DisplayCommand::Sfill { rect, color }),
        (arb_rect(), any::<u64>()).prop_map(|(rect, seed)| {
            let len = (rect.w * rect.h * 3) as usize;
            let mut x = seed | 1;
            let data = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (x >> 33) as u8
                })
                .collect();
            DisplayCommand::Raw {
                rect,
                encoding: RawEncoding::None,
                data,
            }
        }),
        (arb_rect(), arb_color(), any::<u64>(), any::<bool>()).prop_map(
            |(rect, fg, seed, opaque)| {
                let row_bytes = ((rect.w as usize) + 7) / 8;
                let mut x = seed | 1;
                let bits = (0..row_bytes * rect.h as usize)
                    .map(|_| {
                        x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                        (x >> 33) as u8
                    })
                    .collect();
                DisplayCommand::Bitmap {
                    rect,
                    bits,
                    fg,
                    bg: opaque.then_some(Color::WHITE),
                }
            }
        ),
        (arb_rect(), arb_color()).prop_map(|(rect, c)| {
            let tile_px: Vec<u8> = vec![c.r, c.g, c.b, c.b, c.r, c.g, c.g, c.b, c.r, c.r, c.r, c.b];
            DisplayCommand::Pfill {
                rect,
                tile: Tile {
                    width: 2,
                    height: 2,
                    pixels: tile_px,
                },
            }
        }),
        (arb_rect(), 0..W as i32, 0..H as i32).prop_map(|(src_rect, dst_x, dst_y)| {
            DisplayCommand::Copy {
                src_rect,
                dst_x,
                dst_y,
            }
        }),
    ]
}

/// Executes commands directly, in order (the reference semantics).
fn replay_in_order(cmds: &[DisplayCommand]) -> Framebuffer {
    let mut fb = Framebuffer::new(W, H, PixelFormat::Rgb888);
    let mut client = ThincClient::new(W, H, PixelFormat::Rgb888);
    for c in cmds {
        client.apply(&Message::Display(c.clone()));
    }
    fb.put_raw(
        &Rect::new(0, 0, W, H),
        client.framebuffer().data(),
    );
    fb
}

/// Pushes commands through the scheduler/buffer and replays the
/// (reordered, clipped, split, possibly compressed) output.
fn replay_through_buffer(
    cmds: &[DisplayCommand],
    realtime_mask: &[bool],
    compress: bool,
    tight_pipe: bool,
) -> Framebuffer {
    let mut buf = if compress {
        ClientBuffer::new().with_raw_compression(3)
    } else {
        ClientBuffer::new()
    };
    for (i, c) in cmds.iter().enumerate() {
        buf.push(c.clone(), realtime_mask.get(i).copied().unwrap_or(false));
    }
    let params = if tight_pipe {
        TcpParams {
            bandwidth_bps: 1_000_000,
            rtt: SimDuration::from_millis(20),
            rwnd_bytes: 16 * 1024,
            sndbuf_bytes: 2 * 1024,
            ..TcpParams::default()
        }
    } else {
        TcpParams {
            bandwidth_bps: 100_000_000,
            rtt: SimDuration::from_micros(200),
            rwnd_bytes: 1024 * 1024,
            ..TcpParams::default()
        }
    };
    let mut pipe = TcpPipe::new(params);
    let mut trace = PacketTrace::new();
    let mut client = ThincClient::new(W, H, PixelFormat::Rgb888);
    let mut now = SimTime::ZERO;
    for _ in 0..1_000_000 {
        let batch = buf.flush(now, &mut pipe, &mut trace);
        for (_, msg) in batch {
            client.apply(&msg);
        }
        if buf.is_empty() {
            break;
        }
        now = pipe.tx_free_at().max(now + SimDuration::from_millis(1));
    }
    assert!(buf.is_empty(), "buffer failed to drain");
    assert_eq!(client.stats().errors, 0, "client rejected a command");
    let mut fb = Framebuffer::new(W, H, PixelFormat::Rgb888);
    fb.put_raw(&Rect::new(0, 0, W, H), client.framebuffer().data());
    fb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reordered_delivery_preserves_final_state(
        cmds in prop::collection::vec(arb_command(), 1..24),
        rt in prop::collection::vec(any::<bool>(), 24),
    ) {
        let reference = replay_in_order(&cmds);
        let scheduled = replay_through_buffer(&cmds, &rt, false, false);
        prop_assert_eq!(reference.checksum(), scheduled.checksum());
    }

    #[test]
    fn compression_and_splitting_preserve_final_state(
        cmds in prop::collection::vec(arb_command(), 1..16),
    ) {
        let reference = replay_in_order(&cmds);
        let scheduled = replay_through_buffer(&cmds, &[], true, true);
        prop_assert_eq!(reference.checksum(), scheduled.checksum());
    }
}

#[test]
fn known_hard_case_copy_over_partial() {
    // COPY (transparent) depends on a RAW that a later fill partially
    // overwrites; ordering must be COPY-safe.
    let cmds = vec![
        DisplayCommand::Raw {
            rect: Rect::new(0, 0, 20, 20),
            encoding: RawEncoding::None,
            data: (0..20 * 20 * 3).map(|i| (i % 255) as u8).collect(),
        },
        DisplayCommand::Copy {
            src_rect: Rect::new(0, 0, 10, 10),
            dst_x: 30,
            dst_y: 30,
        },
        DisplayCommand::Sfill {
            rect: Rect::new(5, 5, 10, 10),
            color: Color::rgb(9, 9, 9),
        },
    ];
    let reference = replay_in_order(&cmds);
    let scheduled = replay_through_buffer(&cmds, &[], false, false);
    assert_eq!(reference.checksum(), scheduled.checksum());
}

#[test]
fn known_hard_case_transparent_chain() {
    // Transparent bitmap over a RAW, over another transparent bitmap.
    let bits = vec![0b1010_1010u8; 10];
    let cmds = vec![
        DisplayCommand::Raw {
            rect: Rect::new(0, 0, 8, 10),
            encoding: RawEncoding::None,
            data: (0..8 * 10 * 3).map(|i| (i * 7 % 256) as u8).collect(),
        },
        DisplayCommand::Bitmap {
            rect: Rect::new(0, 0, 8, 10),
            bits: bits.clone(),
            fg: Color::rgb(200, 0, 0),
            bg: None,
        },
        DisplayCommand::Bitmap {
            rect: Rect::new(4, 4, 8, 10),
            bits,
            fg: Color::rgb(0, 200, 0),
            bg: None,
        },
    ];
    let reference = replay_in_order(&cmds);
    let scheduled = replay_through_buffer(&cmds, &[], false, false);
    assert_eq!(reference.checksum(), scheduled.checksum());
}
