//! Session resilience under injected network faults: seeded loss,
//! payload corruption, and a mid-session link outage with a liveness
//! timeout and reconnect-with-resync. The invariants under test are
//! the ISSUE acceptance criteria: the client converges byte-exact
//! with zero panics, the bounded buffer never exceeds its bound, and
//! the telemetry shows nonzero fault / eviction / reconnect counts.
//!
//! The fault seed can be overridden (for CI matrices) with
//! `THINC_FAULT_SEED=<u64>`.

use thinc::client::StreamClient;
use thinc::core::liveness::{LivenessConfig, LivenessVerdict};
use thinc::core::server::{ServerConfig, ThincServer};
use thinc::display::request::DrawRequest;
use thinc::display::server::WindowServer;
use thinc::display::SCREEN;
use thinc::net::fault::FaultPlan;
use thinc::net::link::NetworkConfig;
use thinc::net::time::{SimDuration, SimTime};
use thinc::net::trace::PacketTrace;
use thinc::protocol::wire::encode_message;
use thinc::raster::{Color, PixelFormat, Rect};

const W: u32 = 128;
const H: u32 = 96;
const BUFFER_BOUND: u64 = 96 * 1024;

fn fault_seed() -> u64 {
    std::env::var("THINC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn server_config() -> ServerConfig {
    ServerConfig {
        width: W,
        height: H,
        buffer_bound_bytes: Some(BUFFER_BOUND),
        av_bound: Some(64),
        liveness: Some(LivenessConfig {
            timeout: SimDuration::from_secs_f64(5.0),
            ping_interval: SimDuration::from_secs_f64(1.0),
        }),
        ..ServerConfig::default()
    }
}

/// Noise image that defeats the RAW compressor (so the buffer bound
/// actually gets exercised).
fn noise(rect: Rect, salt: u64) -> DrawRequest {
    let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let data: Vec<u8> = (0..(rect.w as usize * rect.h as usize * 3))
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 33) as u8
        })
        .collect();
    DrawRequest::PutImage {
        target: SCREEN,
        rect,
        data,
    }
}

/// One delivery round: flush the server over the (possibly faulty)
/// pipe, run every message's bytes through the wire — where the
/// corruption model may damage them — into the stream client, answer
/// pings, and enforce the backlog invariant.
fn pump(
    ws: &mut WindowServer<ThincServer>,
    link: &mut thinc::net::link::DuplexLink,
    trace: &mut PacketTrace,
    client: &mut StreamClient,
    now: SimTime,
) {
    let batch = ws.driver_mut().flush(now, &mut link.down, trace);
    for (arrival, msg) in batch {
        let mut bytes = encode_message(&msg);
        link.down.corrupt(arrival, &mut bytes);
        client.feed(&bytes);
    }
    while let Some(pong) = client.take_pong() {
        ws.driver_mut().handle_message(&pong);
    }
    assert!(
        ws.driver().display_backlog_bytes() <= BUFFER_BOUND,
        "display backlog exceeded the bound at t={now:?}"
    );
}

fn drain(
    ws: &mut WindowServer<ThincServer>,
    link: &mut thinc::net::link::DuplexLink,
    trace: &mut PacketTrace,
    client: &mut StreamClient,
    mut now: SimTime,
) -> SimTime {
    for _ in 0..100_000 {
        pump(ws, link, trace, client, now);
        if ws.driver().display_backlog() == 0 && ws.driver().av_backlog() == 0 {
            break;
        }
        now = link.down.tx_free_at().max(now + SimDuration::from_millis(2));
    }
    now
}

#[test]
fn seeded_loss_converges_byte_exact_without_resync() {
    // 8% injected loss: TCP retransmits absorb it — the stream is
    // intact, just slower, and the client converges with no recovery
    // action at all.
    let seed = fault_seed();
    let net = NetworkConfig::wan_desktop()
        .with_faults(FaultPlan::seeded(seed).with_loss(0.08));
    let mut link = net.connect();
    let mut trace = PacketTrace::new();
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, ThincServer::new(server_config()));
    let mut client = StreamClient::new(W, H, PixelFormat::Rgb888);

    let mut now = SimTime::ZERO;
    for i in 0..40u64 {
        let x = (i as i32 * 11) % (W as i32 - 56);
        let y = (i as i32 * 7) % (H as i32 - 56);
        ws.driver_mut().set_time(now);
        ws.process(noise(Rect::new(x, y, 56, 56), seed ^ i));
        pump(&mut ws, &mut link, &mut trace, &mut client, now);
        now += SimDuration::from_millis(30);
    }
    drain(&mut ws, &mut link, &mut trace, &mut client, now);

    assert_eq!(
        client.client().framebuffer().data(),
        ws.screen().data(),
        "client must converge byte-exact under loss"
    );
    let faults = link.down.fault_stats();
    assert!(faults.segments_lost > 0, "the loss plan must have fired");
    assert_eq!(faults.retransmits, faults.segments_lost);
    assert_eq!(client.resilience_metrics().decode_errors(), 0);
    assert!(!client.needs_refresh());
}

#[test]
fn corruption_window_is_survived_and_resync_restores_the_screen() {
    // A corruption window damages wire bytes mid-session (a broken
    // middlebox). The client skips the damage with typed errors —
    // never a panic — flags that it wants a refresh, and one resync
    // restores byte-exact content.
    let seed = fault_seed().wrapping_add(1);
    let corrupt_from = SimTime(50_000);
    let net = NetworkConfig::wan_desktop().with_faults(
        FaultPlan::seeded(seed).with_corruption(
            corrupt_from,
            SimDuration::from_millis(150),
            0.02,
        ),
    );
    let mut link = net.connect();
    let mut trace = PacketTrace::new();
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, ThincServer::new(server_config()));
    let mut client = StreamClient::new(W, H, PixelFormat::Rgb888);

    let mut now = SimTime::ZERO;
    for i in 0..10u64 {
        let x = (i as i32 * 13) % (W as i32 - 32);
        let y = (i as i32 * 9) % (H as i32 - 32);
        ws.driver_mut().set_time(now);
        ws.process(noise(Rect::new(x, y, 32, 32), seed ^ i));
        pump(&mut ws, &mut link, &mut trace, &mut client, now);
        now += SimDuration::from_millis(25);
    }
    now = drain(&mut ws, &mut link, &mut trace, &mut client, now);

    let faults = link.down.fault_stats();
    assert!(faults.corrupt_events > 0, "corruption window must fire");
    let m = client.resilience_metrics().clone();
    assert!(m.decode_errors() > 0, "damage must surface as typed errors");
    assert!(m.stream_resyncs() > 0);
    assert!(m.skipped_bytes() > 0);

    // The client noticed and recovers: a corrupted length field may
    // have swallowed a frame boundary, so it drops its wire state
    // (reconnect) and asks the server for a full resync. Well past
    // the corruption window, one round restores exact content.
    assert!(client.take_needs_refresh());
    client.reconnect();
    let now = now.max(corrupt_from + SimDuration::from_millis(200));
    ws.driver_mut().set_time(now);
    let screen = ws.screen().clone();
    ws.driver_mut().resync(&screen);
    drain(&mut ws, &mut link, &mut trace, &mut client, now);
    assert_eq!(
        client.client().framebuffer().data(),
        ws.screen().data(),
        "resync must restore byte-exact content"
    );
    assert!(ws.driver().resilience_metrics().resyncs() >= 1);
}

#[test]
fn outage_timeout_reconnect_resyncs_byte_exact_with_bounded_backlog() {
    // Mid-session the link goes dark for 8 s — past the 5 s liveness
    // timeout. Updates keep arriving at the server, the bounded
    // buffer degrades gracefully (evicts stale, stays under bound),
    // the client is declared dead, and a reconnect + resync converges
    // byte-exact on a fresh link.
    let seed = fault_seed().wrapping_add(2);
    let outage_at = SimTime(100_000);
    let net = NetworkConfig::wan_desktop().with_faults(
        FaultPlan::seeded(seed)
            .with_loss(0.01)
            .with_outage(outage_at, SimDuration::from_secs_f64(8.0)),
    );
    let mut link = net.connect();
    let mut trace = PacketTrace::new();
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, ThincServer::new(server_config()));
    let mut client = StreamClient::new(W, H, PixelFormat::Rgb888);

    // Healthy start.
    let mut now = SimTime::ZERO;
    ws.driver_mut().set_time(now);
    ws.process(DrawRequest::FillRect {
        target: SCREEN,
        rect: Rect::new(0, 0, W, H),
        color: Color::rgb(20, 40, 60),
    });
    now = drain(&mut ws, &mut link, &mut trace, &mut client, now);

    // The outage begins; the session keeps drawing heavily. The
    // server's flush can't deliver (writes blocked), the backlog
    // grows, and the byte bound evicts stale commands instead of
    // letting memory run away.
    let mut dead_at = None;
    let mut saw_outage = false;
    let mut i = 0u64;
    while now < outage_at + SimDuration::from_secs_f64(7.0) {
        saw_outage |= link.down.is_down(now);
        let x = (i as i32 * 17) % (W as i32 - 64);
        let y = (i as i32 * 11) % (H as i32 - 64);
        ws.driver_mut().set_time(now);
        ws.process(noise(Rect::new(x, y, 64, 64), seed ^ i));
        i += 1;
        pump(&mut ws, &mut link, &mut trace, &mut client, now);
        if let LivenessVerdict::Dead = ws.driver_mut().poll_liveness(now) {
            dead_at = Some(now);
            break;
        }
        now += SimDuration::from_millis(200);
    }
    assert!(
        dead_at.is_some(),
        "silence through the outage must trip the liveness timeout"
    );
    assert!(ws.driver().client_dead());
    let server_m = ws.driver().resilience_metrics();
    assert!(server_m.liveness_timeouts() >= 1);
    assert!(server_m.pings_sent() >= 1, "the server must have probed first");
    assert!(
        server_m.overflow_evictions() > 0,
        "the bounded buffer must have evicted under outage backlog"
    );
    assert!(saw_outage, "the outage window must have gated the link");

    // Reconnect: fresh link (no outage), fresh wire state on the
    // client, full resync on the server.
    let mut link2 = NetworkConfig::wan_desktop().connect();
    let mut trace2 = PacketTrace::new();
    client.reconnect();
    let now = dead_at.unwrap() + SimDuration::from_secs_f64(1.0);
    ws.driver_mut().set_time(now);
    let screen = ws.screen().clone();
    ws.driver_mut().resync(&screen);
    assert!(!ws.driver().client_dead(), "resync revives the client");
    drain(&mut ws, &mut link2, &mut trace2, &mut client, now);

    assert_eq!(
        client.client().framebuffer().data(),
        ws.screen().data(),
        "reconnected client must converge byte-exact"
    );
    assert_eq!(client.resilience_metrics().reconnects(), 1);
    assert!(ws.driver().resilience_metrics().resyncs() >= 1);
}
