//! Session resilience under injected network faults: seeded loss,
//! payload corruption, and a mid-session link outage with a liveness
//! timeout and reconnect-with-resync. The invariants under test are
//! the ISSUE acceptance criteria: the client converges byte-exact
//! with zero panics, the bounded buffer never exceeds its bound, and
//! the telemetry shows nonzero fault / eviction / reconnect counts.
//!
//! The fault seed can be overridden (for CI matrices) with
//! `THINC_FAULT_SEED=<u64>`.

use thinc::client::{ReconnectConfig, ReconnectPolicy, StreamClient};
use thinc::core::degradation::{DegradationConfig, DegradationLevel};
use thinc::core::liveness::{LivenessConfig, LivenessVerdict};
use thinc::core::scaling::ScalePolicy;
use thinc::core::server::{ServerConfig, ThincServer};
use thinc::display::request::DrawRequest;
use thinc::display::server::WindowServer;
use thinc::display::SCREEN;
use thinc::net::fault::FaultPlan;
use thinc::net::link::NetworkConfig;
use thinc::net::time::{SimDuration, SimTime};
use thinc::net::trace::PacketTrace;
use thinc::protocol::commands::{DisplayCommand, RawEncoding};
use thinc::protocol::message::Message;
use thinc::raster::{Color, PixelFormat, Rect};

const W: u32 = 128;
const H: u32 = 96;
const BUFFER_BOUND: u64 = 96 * 1024;

fn fault_seed() -> u64 {
    std::env::var("THINC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn server_config() -> ServerConfig {
    ServerConfig {
        width: W,
        height: H,
        buffer_bound_bytes: Some(BUFFER_BOUND),
        av_bound: Some(64),
        liveness: Some(LivenessConfig {
            timeout: SimDuration::from_secs_f64(5.0),
            ping_interval: SimDuration::from_secs_f64(1.0),
        }),
        ..ServerConfig::default()
    }
}

/// Noise image that defeats the RAW compressor (so the buffer bound
/// actually gets exercised).
fn noise(rect: Rect, salt: u64) -> DrawRequest {
    let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let data: Vec<u8> = (0..(rect.w as usize * rect.h as usize * 3))
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 33) as u8
        })
        .collect();
    DrawRequest::PutImage {
        target: SCREEN,
        rect,
        data,
    }
}

/// A stream client whose reconnection is driven by a seeded
/// [`ReconnectPolicy`] instead of the test harness.
fn policy_client(w: u32, h: u32) -> StreamClient {
    StreamClient::new(w, h, PixelFormat::Rgb888).with_reconnect_policy(ReconnectPolicy::new(
        ReconnectConfig {
            seed: fault_seed(),
            ..ReconnectConfig::default()
        },
    ))
}

/// One delivery round: flush the server over the (possibly faulty)
/// pipe, run every message's bytes through the wire — where the
/// disturbance model may corrupt, reorder or duplicate them — into
/// the stream client, answer pings, and enforce the backlog
/// invariant. Frames are encoded at the server's negotiated wire
/// revision (legacy until a version ≥ 2 `ClientHello` lands).
/// Recovery is closed-loop: the client's reconnect policy turns a
/// stale display into [`Message::RefreshRequest`]s, and the server
/// answers a latched request with a full resync — the harness never
/// resyncs by hand.
fn pump(
    ws: &mut WindowServer<ThincServer>,
    link: &mut thinc::net::link::DuplexLink,
    trace: &mut PacketTrace,
    client: &mut StreamClient,
    now: SimTime,
) {
    let batch = ws.driver_mut().flush(now, &mut link.down, trace);
    if batch.is_empty() {
        // Idle round: release any segment a reorder window still
        // holds, so a quiet link never strands bytes. While traffic
        // flows the hold carries across rounds instead — that is what
        // makes the reordering real rather than a same-batch shuffle.
        if let Some(tail) = link.down.flush_disturbed() {
            client.feed(&tail);
        }
    }
    for (arrival, msg) in batch {
        let bytes = ws.driver_mut().encode_frame(&msg);
        for seg in link.down.disturb(arrival, bytes) {
            client.feed(&seg);
        }
    }
    while let Some(pong) = client.take_pong() {
        ws.driver_mut().handle_message(&pong);
    }
    // Cache misses flow upstream like pongs: the server answers each
    // with the byte-exact full payload (or owes a refresh when the
    // entry was evicted on both sides).
    while let Some(miss) = client.take_cache_miss() {
        ws.driver_mut().handle_message(&miss);
    }
    if let Some(req) = client.poll_reconnect(now) {
        ws.driver_mut().handle_message(&req);
    }
    if ws.driver_mut().take_resync_request() {
        let screen = ws.screen().clone();
        ws.driver_mut().set_time(now);
        ws.driver_mut().resync(&screen);
    }
    assert!(
        ws.driver().display_backlog_bytes() <= BUFFER_BOUND,
        "display backlog exceeded the bound at t={now:?}"
    );
}

fn drain(
    ws: &mut WindowServer<ThincServer>,
    link: &mut thinc::net::link::DuplexLink,
    trace: &mut PacketTrace,
    client: &mut StreamClient,
    mut now: SimTime,
) -> SimTime {
    for _ in 0..100_000 {
        pump(ws, link, trace, client, now);
        if ws.driver().display_backlog() == 0 && ws.driver().av_backlog() == 0 {
            break;
        }
        now = link.down.tx_free_at().max(now + SimDuration::from_millis(2));
    }
    now
}

#[test]
fn seeded_loss_converges_byte_exact_without_resync() {
    // 8% injected loss: TCP retransmits absorb it — the stream is
    // intact, just slower, and the client converges with no recovery
    // action at all.
    let seed = fault_seed();
    let net = NetworkConfig::wan_desktop()
        .with_faults(FaultPlan::seeded(seed).with_loss(0.08));
    let mut link = net.connect();
    let mut trace = PacketTrace::new();
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, ThincServer::new(server_config()));
    let mut client = policy_client(W, H);

    let mut now = SimTime::ZERO;
    for i in 0..40u64 {
        let x = (i as i32 * 11) % (W as i32 - 56);
        let y = (i as i32 * 7) % (H as i32 - 56);
        ws.driver_mut().set_time(now);
        ws.process(noise(Rect::new(x, y, 56, 56), seed ^ i));
        pump(&mut ws, &mut link, &mut trace, &mut client, now);
        now += SimDuration::from_millis(30);
    }
    drain(&mut ws, &mut link, &mut trace, &mut client, now);

    assert_eq!(
        client.client().framebuffer().data(),
        ws.screen().data(),
        "client must converge byte-exact under loss"
    );
    let faults = link.down.fault_stats();
    assert!(faults.segments_lost > 0, "the loss plan must have fired");
    assert_eq!(faults.retransmits, faults.segments_lost);
    assert_eq!(client.resilience_metrics().decode_errors(), 0);
    assert!(!client.needs_refresh());
}

#[test]
fn corruption_window_is_survived_and_resync_restores_the_screen() {
    // A corruption window damages wire bytes mid-session (a broken
    // middlebox). The client skips the damage with typed errors —
    // never a panic — latches that it wants a refresh, and its
    // reconnect policy closes the loop: refresh requests flow
    // upstream until a server resync restores byte-exact content.
    let seed = fault_seed().wrapping_add(1);
    let corrupt_from = SimTime(50_000);
    let net = NetworkConfig::wan_desktop().with_faults(
        FaultPlan::seeded(seed).with_corruption(
            corrupt_from,
            SimDuration::from_millis(150),
            0.02,
        ),
    );
    let mut link = net.connect();
    let mut trace = PacketTrace::new();
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, ThincServer::new(server_config()));
    let mut client = policy_client(W, H);

    let mut now = SimTime::ZERO;
    for i in 0..10u64 {
        let x = (i as i32 * 13) % (W as i32 - 32);
        let y = (i as i32 * 9) % (H as i32 - 32);
        ws.driver_mut().set_time(now);
        ws.process(noise(Rect::new(x, y, 32, 32), seed ^ i));
        pump(&mut ws, &mut link, &mut trace, &mut client, now);
        now += SimDuration::from_millis(25);
    }
    now = drain(&mut ws, &mut link, &mut trace, &mut client, now);

    let faults = link.down.fault_stats();
    assert!(faults.corrupt_events > 0, "corruption window must fire");
    let m = client.resilience_metrics().clone();
    assert!(m.decode_errors() > 0, "damage must surface as typed errors");
    assert!(m.stream_resyncs() > 0);
    assert!(m.skipped_bytes() > 0);

    // Recovery is policy-driven: the decode errors latched
    // `needs_refresh`, the client's backoff schedule issues refresh
    // requests through `pump`, and the server resyncs. Keep pumping
    // past the corruption window until the coverage-tracked latch
    // clears — the harness never calls `resync` itself.
    let mut now = now.max(corrupt_from + SimDuration::from_millis(200));
    for _ in 0..500 {
        if !client.needs_refresh() && ws.driver().display_backlog() == 0 {
            break;
        }
        pump(&mut ws, &mut link, &mut trace, &mut client, now);
        now = link.down.tx_free_at().max(now + SimDuration::from_millis(50));
    }
    assert!(
        !client.needs_refresh(),
        "the reconnect policy must have driven a covering resync"
    );
    assert_eq!(
        client.client().framebuffer().data(),
        ws.screen().data(),
        "resync must restore byte-exact content"
    );
    assert!(ws.driver().resilience_metrics().resyncs() >= 1);
}

#[test]
fn integrity_framing_survives_reorder_duplication_and_corruption() {
    // The hostile-transport scenario the integrity layer exists for:
    // after a version-2 handshake upgrades the session to checksummed
    // sequenced framing, a window of simultaneous byte corruption,
    // segment reordering and segment duplication hits the downlink.
    // CRC failures surface as typed errors (never a wrong pixel
    // command), duplicates are absorbed silently, gaps escalate
    // through the refresh-request path, and the session converges
    // byte-exact — with every cause attributed in the telemetry.
    use thinc::protocol::{PROTOCOL_VERSION, WIRE_REV_INTEGRITY};

    let seed = fault_seed().wrapping_add(7);
    // Staggered windows: corruption first, then reordering and
    // duplication on an un-corrupted stretch — so each cause leaves
    // its own attributable trace (a swap inside the corruption window
    // would just fail CRC before sequence accounting ever saw it).
    let corrupt_at = SimTime(40_000);
    let corrupt_len = SimDuration::from_millis(60);
    let shuffle_at = SimTime(150_000);
    let shuffle_len = SimDuration::from_millis(1_850);
    let window_end = SimTime(2_050_000);
    let net = NetworkConfig::wan_desktop().with_faults(
        FaultPlan::seeded(seed)
            .with_corruption(corrupt_at, corrupt_len, 0.02)
            .with_reorder(shuffle_at, shuffle_len, 0.3)
            .with_duplication(shuffle_at, shuffle_len, 0.3),
    );
    let mut link = net.connect();
    let mut trace = PacketTrace::new();
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, ThincServer::new(server_config()));
    let mut client = policy_client(W, H);

    // Handshake: ServerHello downstream (always legacy-framed, so it
    // decodes pre-negotiation), ClientHello upstream. Both sides
    // adopt integrity framing.
    let hello = ws.driver().hello();
    let hello_bytes = ws.driver_mut().encode_frame(&hello);
    client.feed(&hello_bytes);
    assert!(client.wire_revision() >= WIRE_REV_INTEGRITY);
    assert_eq!(client.wire_revision(), PROTOCOL_VERSION);
    ws.driver_mut().handle_message(&Message::ClientHello {
        version: PROTOCOL_VERSION,
        viewport_width: W,
        viewport_height: H,
    });
    assert_eq!(ws.driver().wire_revision(), PROTOCOL_VERSION);
    assert!(ws.driver().cache_enabled(), "revision 3 activates the cache");

    // Draw through the disturbance windows.
    let mut now = SimTime::ZERO;
    for i in 0..70u64 {
        let x = (i as i32 * 13) % (W as i32 - 32);
        let y = (i as i32 * 9) % (H as i32 - 32);
        ws.driver_mut().set_time(now);
        ws.process(noise(Rect::new(x, y, 32, 32), seed ^ i));
        pump(&mut ws, &mut link, &mut trace, &mut client, now);
        now += SimDuration::from_millis(25);
    }
    now = drain(&mut ws, &mut link, &mut trace, &mut client, now);

    // Every disturbance class must actually have fired on the link…
    let faults = link.down.fault_stats();
    assert!(faults.corrupt_events > 0, "corruption window must fire");
    assert!(faults.segments_reordered > 0, "reorder window must fire");
    assert!(faults.segments_duplicated > 0, "duplication window must fire");
    // …and be attributed per cause in the client's accounting.
    let m = client.resilience_metrics().clone();
    assert!(m.crc_failures() > 0, "damage must surface as CRC failures");
    assert!(m.seq_gaps() > 0, "dropped/reordered frames must gap the sequence");
    assert!(m.seq_dups() > 0, "duplicates/rollbacks must be counted");
    assert!(m.resyncs_triggered() > 0, "gaps must escalate to recovery");

    // Recovery is policy-driven through `pump`, exactly like the
    // corruption-only scenario: keep pumping past the window until
    // the coverage-tracked refresh latch clears.
    let mut now = now.max(window_end + SimDuration::from_millis(50));
    for _ in 0..500 {
        if !client.needs_refresh() && ws.driver().display_backlog() == 0 {
            break;
        }
        pump(&mut ws, &mut link, &mut trace, &mut client, now);
        now = link.down.tx_free_at().max(now + SimDuration::from_millis(50));
    }
    assert!(
        !client.needs_refresh(),
        "the refresh-request path must have driven a covering resync"
    );
    assert_eq!(
        client.client().framebuffer().data(),
        ws.screen().data(),
        "client must converge byte-exact through reorder+dup+corruption"
    );
    assert!(ws.driver().resilience_metrics().resyncs() >= 1);
}

#[test]
fn cached_session_matches_uncached_and_reconnect_repays_debt_from_cache() {
    // Protocol revision 3: two sessions over identically-faulted
    // links draw the same repeating desktop content; one negotiates
    // the content-addressed cache, the other is pinned uncached. The
    // cache must be invisible to content (byte-identical final
    // framebuffers) while measurably cutting wire bytes — and the
    // client's store must survive a reconnect so the resync's refresh
    // debt can be repaid out of cache.
    use thinc::protocol::PROTOCOL_VERSION;
    let seed = fault_seed().wrapping_add(8);

    type Run = (
        WindowServer<ThincServer>,
        thinc::net::link::DuplexLink,
        PacketTrace,
        StreamClient,
        SimTime,
    );
    let run = |cached: bool| -> Run {
        let net = NetworkConfig::wan_desktop().with_faults(
            FaultPlan::seeded(seed).with_corruption(
                SimTime(40_000),
                SimDuration::from_millis(80),
                0.02,
            ),
        );
        let mut link = net.connect();
        let mut trace = PacketTrace::new();
        let config = ServerConfig {
            cache_budget_bytes: cached.then_some(4 * 1024 * 1024),
            ..server_config()
        };
        let mut ws =
            WindowServer::new(W, H, PixelFormat::Rgb888, ThincServer::new(config));
        let mut client = policy_client(W, H);
        let hello = ws.driver().hello();
        let bytes = ws.driver_mut().encode_frame(&hello);
        client.feed(&bytes);
        ws.driver_mut().handle_message(&Message::ClientHello {
            version: PROTOCOL_VERSION,
            viewport_width: W,
            viewport_height: H,
        });
        assert_eq!(ws.driver().cache_enabled(), cached);

        // Four fixed tiles redrawn every round: desktop content
        // repeats, which is what the cache monetizes.
        let mut now = SimTime::ZERO;
        for _round in 0..6u64 {
            for slot in 0..4u64 {
                let x = slot as i32 * 32;
                let y = (slot as i32 % 3) * 24;
                ws.driver_mut().set_time(now);
                ws.process(noise(Rect::new(x, y, 24, 24), seed ^ slot));
                pump(&mut ws, &mut link, &mut trace, &mut client, now);
                now += SimDuration::from_millis(20);
            }
            now = drain(&mut ws, &mut link, &mut trace, &mut client, now);
        }
        // Pump past the corruption window until any latched refresh
        // has been covered by a policy-driven resync.
        let mut now = now.max(SimTime(200_000));
        for _ in 0..500 {
            if !client.needs_refresh() && ws.driver().display_backlog() == 0 {
                break;
            }
            pump(&mut ws, &mut link, &mut trace, &mut client, now);
            now = link.down.tx_free_at().max(now + SimDuration::from_millis(50));
        }
        assert!(!client.needs_refresh());
        (ws, link, trace, client, now)
    };

    let (mut ws_c, mut link_c, mut trace_c, mut client_c, now_c) = run(true);
    let (ws_u, _, _, client_u, _) = run(false);

    // Both converge; the cache is invisible to content.
    assert_eq!(client_c.client().framebuffer().data(), ws_c.screen().data());
    assert_eq!(client_u.client().framebuffer().data(), ws_u.screen().data());
    assert_eq!(ws_c.screen().data(), ws_u.screen().data(), "identical draws");
    assert_eq!(
        client_c.client().framebuffer().data(),
        client_u.client().framebuffer().data(),
        "cached and uncached sessions must render byte-identically"
    );
    // ...while measurably saving wire bytes.
    let m_c = ws_c.driver().resilience_metrics();
    assert!(m_c.cache_hits() > 0, "repeated tiles must travel as refs");
    assert!(m_c.cache_bytes_saved() > 0);
    assert_eq!(ws_u.driver().resilience_metrics().cache_hits(), 0);
    assert!(
        ws_c.driver().stats().buffer.sent_bytes < ws_u.driver().stats().buffer.sent_bytes,
        "references must shrink the display byte stream"
    );
    // Refs caught inside the corruption window are counted at send
    // time but never resolve (the frame fails CRC and recovery
    // repaints) — so the client resolves at most what was sent.
    let resolved = client_c.resilience_metrics().cache_hits();
    assert!(resolved > 0, "surviving refs must resolve client-side");
    assert!(resolved <= m_c.cache_hits());

    // Reconnect: the client's store deliberately survives the redial,
    // so the resync can repay refresh debt out of cache.
    assert!(client_c.cache_len() > 0);
    client_c.reconnect();
    let mut now = now_c + SimDuration::from_secs_f64(1.0);
    for _ in 0..500 {
        if !client_c.needs_refresh() && ws_c.driver().display_backlog() == 0 {
            break;
        }
        pump(&mut ws_c, &mut link_c, &mut trace_c, &mut client_c, now);
        now = link_c.down.tx_free_at().max(now + SimDuration::from_millis(50));
    }
    assert!(!client_c.needs_refresh(), "the reconnect resync must cover");
    assert_eq!(
        client_c.client().framebuffer().data(),
        ws_c.screen().data(),
        "reconnect with a persisted cache must converge byte-exact"
    );
    assert!(client_c.cache_len() > 0, "the store survived the redial");
}

#[test]
fn outage_timeout_reconnect_resyncs_byte_exact_with_bounded_backlog() {
    // Mid-session the link goes dark for 8 s — past the 5 s liveness
    // timeout. Updates keep arriving at the server, the bounded
    // buffer degrades gracefully (evicts stale, stays under bound),
    // the client is declared dead, and a reconnect + resync converges
    // byte-exact on a fresh link.
    let seed = fault_seed().wrapping_add(2);
    let outage_at = SimTime(100_000);
    let net = NetworkConfig::wan_desktop().with_faults(
        FaultPlan::seeded(seed)
            .with_loss(0.01)
            .with_outage(outage_at, SimDuration::from_secs_f64(8.0)),
    );
    let mut link = net.connect();
    let mut trace = PacketTrace::new();
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, ThincServer::new(server_config()));
    let mut client = policy_client(W, H);

    // Healthy start.
    let mut now = SimTime::ZERO;
    ws.driver_mut().set_time(now);
    ws.process(DrawRequest::FillRect {
        target: SCREEN,
        rect: Rect::new(0, 0, W, H),
        color: Color::rgb(20, 40, 60),
    });
    now = drain(&mut ws, &mut link, &mut trace, &mut client, now);

    // The outage begins; the session keeps drawing heavily. The
    // server's flush can't deliver (writes blocked), the backlog
    // grows, and the byte bound evicts stale commands instead of
    // letting memory run away.
    let mut dead_at = None;
    let mut saw_outage = false;
    let mut i = 0u64;
    while now < outage_at + SimDuration::from_secs_f64(7.0) {
        saw_outage |= link.down.is_down(now);
        let x = (i as i32 * 17) % (W as i32 - 64);
        let y = (i as i32 * 11) % (H as i32 - 64);
        ws.driver_mut().set_time(now);
        ws.process(noise(Rect::new(x, y, 64, 64), seed ^ i));
        i += 1;
        pump(&mut ws, &mut link, &mut trace, &mut client, now);
        if let LivenessVerdict::Dead = ws.driver_mut().poll_liveness(now) {
            dead_at = Some(now);
            break;
        }
        now += SimDuration::from_millis(200);
    }
    assert!(
        dead_at.is_some(),
        "silence through the outage must trip the liveness timeout"
    );
    assert!(ws.driver().client_dead());
    let server_m = ws.driver().resilience_metrics();
    assert!(server_m.liveness_timeouts() >= 1);
    assert!(server_m.pings_sent() >= 1, "the server must have probed first");
    assert!(
        server_m.overflow_evictions() > 0,
        "the bounded buffer must have evicted under outage backlog"
    );
    assert!(saw_outage, "the outage window must have gated the link");

    // Reconnect: fresh link (no outage), fresh wire state on the
    // client. `reconnect()` latches `needs_refresh` — a fresh link is
    // presumed stale — and the reconnect policy turns that into
    // refresh requests; the resync itself is server-answered inside
    // `pump`, not hand-driven by the harness.
    let mut link2 = NetworkConfig::wan_desktop().connect();
    let mut trace2 = PacketTrace::new();
    client.reconnect();
    let mut now = dead_at.unwrap() + SimDuration::from_secs_f64(1.0);
    ws.driver_mut().set_time(now);
    for _ in 0..500 {
        if !client.needs_refresh() && ws.driver().display_backlog() == 0 {
            break;
        }
        pump(&mut ws, &mut link2, &mut trace2, &mut client, now);
        now = link2.down.tx_free_at().max(now + SimDuration::from_millis(50));
    }
    assert!(!ws.driver().client_dead(), "the resync revives the client");
    assert!(
        !client.needs_refresh(),
        "the policy-driven resync must have covered the viewport"
    );
    assert_eq!(
        client.client().framebuffer().data(),
        ws.screen().data(),
        "reconnected client must converge byte-exact"
    );
    assert_eq!(client.resilience_metrics().reconnects(), 1);
    assert!(ws.driver().resilience_metrics().resyncs() >= 1);
}

#[test]
fn device_switch_mid_outage_converges_on_the_new_viewport() {
    // The client dies mid-outage and the user walks to a different
    // device: a second client with a *smaller* viewport announces
    // itself. The viewport change drops the stale full-size pending
    // commands (they target the wrong coordinate space), the new
    // client's reconnect policy drives the resync, and the session
    // converges byte-exact on the scaled rendition of the screen.
    let seed = fault_seed().wrapping_add(4);
    let outage_at = SimTime(100_000);
    let net = NetworkConfig::wan_desktop().with_faults(
        FaultPlan::seeded(seed).with_outage(outage_at, SimDuration::from_secs_f64(8.0)),
    );
    let mut link = net.connect();
    let mut trace = PacketTrace::new();
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, ThincServer::new(server_config()));
    let mut client = policy_client(W, H);

    let mut now = SimTime::ZERO;
    ws.driver_mut().set_time(now);
    ws.process(DrawRequest::FillRect {
        target: SCREEN,
        rect: Rect::new(0, 0, W, H),
        color: Color::rgb(60, 20, 80),
    });
    now = drain(&mut ws, &mut link, &mut trace, &mut client, now);

    // Draw through the outage until the first device is declared dead.
    let mut dead_at = None;
    let mut i = 0u64;
    while now < outage_at + SimDuration::from_secs_f64(7.0) {
        let x = (i as i32 * 19) % (W as i32 - 48);
        let y = (i as i32 * 13) % (H as i32 - 48);
        ws.driver_mut().set_time(now);
        ws.process(noise(Rect::new(x, y, 48, 48), seed ^ i));
        i += 1;
        pump(&mut ws, &mut link, &mut trace, &mut client, now);
        if let LivenessVerdict::Dead = ws.driver_mut().poll_liveness(now) {
            dead_at = Some(now);
            break;
        }
        now += SimDuration::from_millis(200);
    }
    assert!(dead_at.is_some(), "the first device must time out");

    // The new device: half-size viewport, fresh link, fresh client.
    let (vw, vh) = (W / 2, H / 2);
    ws.driver_mut().handle_message(&Message::ClientHello {
        version: 1,
        viewport_width: vw,
        viewport_height: vh,
    });
    assert!(ws.driver().scaling_active());
    let mut link2 = NetworkConfig::wan_desktop().connect();
    let mut trace2 = PacketTrace::new();
    let mut client2 = policy_client(vw, vh);
    client2.reconnect();
    let mut now = dead_at.unwrap() + SimDuration::from_secs_f64(1.0);
    ws.driver_mut().set_time(now);
    for _ in 0..500 {
        if !client2.needs_refresh()
            && ws.driver().display_backlog() == 0
            && !ws.driver().overflow_debt_outstanding()
        {
            break;
        }
        pump(&mut ws, &mut link2, &mut trace2, &mut client2, now);
        if ws.driver().overflow_debt_outstanding() {
            let screen = ws.screen().clone();
            ws.driver_mut().repay_overflow_debt(&screen);
        }
        now = link2.down.tx_free_at().max(now + SimDuration::from_millis(50));
    }
    assert!(!client2.needs_refresh(), "the resync must cover the new viewport");

    // Byte-exact against a one-shot scaled snapshot of the screen:
    // every delivered command was scaled exactly once into the new
    // viewport, stale full-size commands never leaked through.
    let screen = ws.screen();
    let (clip, data) = screen.get_raw(&Rect::new(0, 0, W, H));
    let snapshot = DisplayCommand::Raw {
        rect: clip,
        encoding: RawEncoding::None,
        data: data.into(),
    };
    let scaled = ScalePolicy::new(W, H, vw, vh)
        .transform(&snapshot, screen)
        .expect("full-screen snapshot survives scaling");
    let mut reference = thinc::client::ThincClient::new(vw, vh, PixelFormat::Rgb888);
    reference.apply(&Message::Display(scaled));
    assert_eq!(
        client2.client().framebuffer().data(),
        reference.framebuffer().data(),
        "new device must hold exactly the scaled screen"
    );

    // Attribution: the second device's reconnect and the server-side
    // resync(s) are visible in the metrics.
    assert_eq!(client2.resilience_metrics().reconnects(), 1);
    let server_m = ws.driver().resilience_metrics();
    assert!(server_m.resyncs() >= 1);
    assert!(server_m.liveness_timeouts() >= 1);
    assert_eq!(client.resilience_metrics().reconnects(), 0);
}

#[test]
fn adaptive_degradation_rides_out_a_collapse_and_recovers_byte_exact() {
    // A lossy WAN collapses to 5% capacity for two seconds. With the
    // adaptive controller on, the session measurably degrades
    // (telemetry-visible ladder steps, server-side scaling) instead
    // of drowning, then climbs back to full fidelity and converges
    // byte-exact — the full refresh owed by the promotion and any
    // resync are driven by the client's reconnect policy through
    // `pump`, never by the harness.
    let seed = fault_seed().wrapping_add(5);
    let collapse_at = SimTime(100_000);
    let net = NetworkConfig::lossy_wan().with_faults(
        FaultPlan::seeded(seed)
            .with_loss(0.02)
            .with_collapse(collapse_at, SimDuration::from_secs(2), 0.05),
    );
    let mut link = net.connect();
    let mut trace = PacketTrace::new();
    let config = ServerConfig {
        degradation: Some(DegradationConfig {
            degrade_after: 1,
            promote_after: 2,
            ..DegradationConfig::default()
        }),
        ..server_config()
    };
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, ThincServer::new(config));
    let mut client = policy_client(W, H);

    let mut now = SimTime::ZERO;
    ws.driver_mut().set_time(now);
    ws.process(DrawRequest::FillRect {
        target: SCREEN,
        rect: Rect::new(0, 0, W, H),
        color: Color::rgb(10, 70, 40),
    });
    now = drain(&mut ws, &mut link, &mut trace, &mut client, now);
    assert_eq!(ws.driver().degradation_level(), DegradationLevel::Full);

    // Keep drawing through the collapse window: the ladder steps down.
    let mut deepest = DegradationLevel::Full;
    let mut i = 0u64;
    while now < collapse_at + SimDuration::from_secs_f64(1.5) {
        let x = (i as i32 * 23) % (W as i32 - 40);
        let y = (i as i32 * 7) % (H as i32 - 40);
        ws.driver_mut().set_time(now);
        ws.process(noise(Rect::new(x, y, 40, 40), seed ^ i));
        i += 1;
        pump(&mut ws, &mut link, &mut trace, &mut client, now);
        deepest = deepest.max(ws.driver().degradation_level());
        now += SimDuration::from_millis(100);
    }
    assert!(
        deepest > DegradationLevel::Full,
        "the collapse must push the ladder below full fidelity"
    );
    let mid = ws.driver().resilience_metrics();
    assert!(mid.degrade_steps() > 0, "degradation must be telemetry-visible");
    assert!(mid.max_degradation_level() >= 1);

    // The window clears: quiet flush epochs climb back to Full, the
    // promotion owes a refresh, and the session converges byte-exact.
    now = now.max(collapse_at + SimDuration::from_secs(2) + SimDuration::from_millis(100));
    for _ in 0..1000 {
        ws.driver_mut().set_time(now);
        pump(&mut ws, &mut link, &mut trace, &mut client, now);
        if ws.driver().degradation_level() == DegradationLevel::Full
            && ws.driver().display_backlog() == 0
            && !ws.driver().overflow_debt_outstanding()
            && !client.needs_refresh()
        {
            break;
        }
        if ws.driver().overflow_debt_outstanding() {
            let screen = ws.screen().clone();
            ws.driver_mut().repay_overflow_debt(&screen);
        }
        now = link.down.tx_free_at().max(now + SimDuration::from_millis(100));
    }
    assert_eq!(ws.driver().degradation_level(), DegradationLevel::Full);
    let m = ws.driver().resilience_metrics();
    assert!(m.promote_steps() > 0, "recovery must be telemetry-visible");
    assert_eq!(m.degradation_level(), 0);

    // One more paint flushes through the repaid refresh.
    ws.driver_mut().set_time(now);
    ws.process(DrawRequest::FillRect {
        target: SCREEN,
        rect: Rect::new(4, 4, 24, 24),
        color: Color::rgb(220, 180, 40),
    });
    now = drain(&mut ws, &mut link, &mut trace, &mut client, now);
    for _ in 0..200 {
        if !client.needs_refresh() && ws.driver().display_backlog() == 0 {
            break;
        }
        pump(&mut ws, &mut link, &mut trace, &mut client, now);
        now = link.down.tx_free_at().max(now + SimDuration::from_millis(50));
    }
    assert_eq!(
        client.client().framebuffer().data(),
        ws.screen().data(),
        "session must recover byte-exact after the collapse"
    );
}

#[test]
fn shared_session_degrades_only_the_faulted_peer() {
    // Multi-client attribution: a shared session with a healthy owner
    // and a peer behind a collapse degrades *only the peer* — and the
    // outcome is identical for any flush worker count (override with
    // `THINC_FLUSH_WORKERS` in CI).
    use thinc::core::session::{ClientId, Credentials, SharedSession};
    use thinc::display::drawable::DrawableStore;
    use thinc::display::driver::VideoDriver;

    let workers: usize = std::env::var("THINC_FLUSH_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let seed = fault_seed().wrapping_add(6);
    let mut s = SharedSession::new(W, H, PixelFormat::Rgb888, "host")
        .with_degradation(DegradationConfig {
            degrade_after: 1,
            promote_after: 1,
            ..DegradationConfig::default()
        })
        .with_workers(workers);
    s.auth_mut().enable_sharing("pw");
    let owner = s
        .attach(&Credentials::Owner { user: "host".into() }, W, H)
        .unwrap();
    let peer = s
        .attach(
            &Credentials::Peer {
                user: "guest".into(),
                password: "pw".into(),
            },
            W,
            H,
        )
        .unwrap();

    let mut store = DrawableStore::new(W, H, PixelFormat::Rgb888);
    let plan = FaultPlan::seeded(seed).with_collapse(SimTime(0), SimDuration::from_secs(1), 0.05);
    let mut links = vec![
        (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
        (
            NetworkConfig::lan_desktop().with_faults(plan).connect().down,
            PacketTrace::new(),
        ),
    ];

    store
        .screen_mut()
        .fill_rect(&Rect::new(0, 0, W, H), Color::rgb(80, 40, 120));
    s.solid_fill(&store, SCREEN, Rect::new(0, 0, W, H), Color::rgb(80, 40, 120));

    let secs = |t: f64| SimTime((t * 1e6) as u64);
    let mut streams: Vec<Vec<Message>> = vec![Vec::new(), Vec::new()];
    let collect = |streams: &mut Vec<Vec<Message>>,
                       out: Vec<(ClientId, Vec<(SimTime, Message)>)>| {
        for (id, msgs) in out {
            let idx = usize::from(id != owner);
            streams[idx].extend(msgs.into_iter().map(|(_, m)| m));
        }
    };
    for i in 0..3 {
        let out = s.flush_all(secs(0.1 * (i + 1) as f64), &mut links);
        collect(&mut streams, out);
    }
    assert_eq!(s.client_degradation_level(owner), DegradationLevel::Full);
    assert!(s.client_degradation_level(peer) > DegradationLevel::Full);
    assert!(s.client_resilience(peer).unwrap().degrade_steps() > 0);
    assert_eq!(s.client_resilience(owner).unwrap().degrade_steps(), 0);

    // Past the window: the peer climbs back and both converge
    // byte-exact once the owed refresh is settled.
    for i in 0..4 {
        let out = s.flush_all(secs(1.5 + 0.1 * i as f64), &mut links);
        collect(&mut streams, out);
    }
    assert_eq!(s.client_degradation_level(peer), DegradationLevel::Full);
    let screen = store.screen().clone();
    s.repay_refreshes(&screen);
    for i in 0..50 {
        let out = s.flush_all(secs(3.0 + 0.2 * i as f64), &mut links);
        collect(&mut streams, out);
        if s.backlog(owner) == 0 && s.backlog(peer) == 0 {
            break;
        }
    }
    for stream in &streams {
        let mut c = thinc::client::ThincClient::new(W, H, PixelFormat::Rgb888);
        for m in stream {
            c.apply(m);
        }
        assert_eq!(c.framebuffer().data(), store.screen().data());
    }
}

#[test]
fn cache_degradation_reconnect_matrix_converges_with_lockstep_eviction() {
    // The three features the chaos engine exercises together, pinned
    // as a deterministic matrix: a content cache under two byte
    // budgets (one tight enough to force evictions), a peer driven
    // down the degradation ladder by a bandwidth collapse, and a soft
    // reconnect-with-resync — across the CI worker-count matrix
    // (`THINC_FLUSH_WORKERS`). After settling, both clients must hold
    // the screen byte-exact AND each client's content store must
    // mirror the server's per-client ledger key-for-key: collapse is
    // delay-only, so not one frame is lost and the strict
    // insert/eviction lockstep holds end to end.
    use thinc::core::session::{Credentials, SharedSession};
    use thinc::display::drawable::DrawableStore;
    use thinc::display::driver::VideoDriver;
    use thinc::net::tcp::TcpPipe;
    use thinc::protocol::wire::{self, FrameEncoder};
    use thinc::protocol::PROTOCOL_VERSION;

    let workers: usize = std::env::var("THINC_FLUSH_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    // 8 KiB cannot hold even the four-tile palette, so both stores
    // must evict in lockstep; 256 KiB holds everything. Both budgets
    // must converge identically.
    for &budget in &[8 * 1024u64, 256 * 1024] {
        let seed = fault_seed().wrapping_add(budget);
        let mut s = SharedSession::new(W, H, PixelFormat::Rgb888, "host")
            .with_degradation(DegradationConfig {
                degrade_after: 1,
                promote_after: 1,
                ..DegradationConfig::default()
            })
            .with_cache(budget)
            .with_workers(workers);
        s.auth_mut().enable_sharing("pw");
        let owner = s
            .attach(&Credentials::Owner { user: "host".into() }, W, H)
            .unwrap();
        let peer = s
            .attach(
                &Credentials::Peer {
                    user: "guest".into(),
                    password: "pw".into(),
                },
                W,
                H,
            )
            .unwrap();
        let ids = [owner, peer];

        let mut store = DrawableStore::new(W, H, PixelFormat::Rgb888);
        let collapse = FaultPlan::seeded(seed).with_collapse(
            SimTime((0.5 * 1e6) as u64),
            SimDuration::from_secs_f64(1.0),
            0.05,
        );
        let mut links: Vec<(TcpPipe, PacketTrace)> = vec![
            (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
            (
                NetworkConfig::lan_desktop().with_faults(collapse).connect().down,
                PacketTrace::new(),
            ),
        ];
        let mut streams: Vec<StreamClient> = ids
            .iter()
            .map(|_| {
                let mut c = policy_client(W, H).with_cache_budget(budget);
                c.feed(&wire::encode_message(&Message::ServerHello {
                    version: PROTOCOL_VERSION,
                    width: W,
                    height: H,
                    depth: 24,
                }));
                c
            })
            .collect();
        let mut encoders: Vec<FrameEncoder> = ids
            .iter()
            .map(|_| FrameEncoder::with_revision(PROTOCOL_VERSION))
            .collect();

        // A small palette of repeating payloads, so the cache sees
        // byte-identical repeats (refs) as well as fresh inserts.
        let tile = |idx: u64| -> (Rect, Vec<u8>) {
            let rect = Rect::new(((idx % 4) * 32) as i32, 16, 32, 24);
            let mut x = (0x7115_0000u64 | (idx % 4)).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let data: Vec<u8> = (0..(32 * 24 * 3))
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (x >> 33) as u8
                })
                .collect();
            (rect, data)
        };
        let draw_tile = |s: &mut SharedSession, store: &mut DrawableStore, idx: u64| {
            let (rect, data) = tile(idx);
            store.screen_mut().put_raw(&rect, &data);
            s.put_image(store, SCREEN, rect, &data);
        };

        let pump = |s: &mut SharedSession,
                        store: &DrawableStore,
                        links: &mut Vec<(TcpPipe, PacketTrace)>,
                        streams: &mut Vec<StreamClient>,
                        encoders: &mut Vec<FrameEncoder>,
                        now: SimTime| {
            let out = s.flush_all(now, links);
            for (id, msgs) in out {
                let idx = usize::from(id != owner);
                if msgs.is_empty() {
                    if let Some(tail) = links[idx].0.flush_disturbed() {
                        streams[idx].feed(&tail);
                    }
                    continue;
                }
                for (arrival, msg) in msgs {
                    let bytes = encoders[idx].encode(&msg);
                    for seg in links[idx].0.disturb(arrival, bytes) {
                        streams[idx].feed(&seg);
                    }
                }
            }
            for (idx, &id) in ids.iter().enumerate() {
                while let Some(miss) = streams[idx].take_cache_miss() {
                    if let Message::CacheMiss { hash } = miss {
                        s.client_cache_miss(id, hash);
                    }
                }
                if streams[idx].poll_reconnect(now).is_some() {
                    s.resync_client(id, store.screen());
                }
            }
        };
        let secs = |t: f64| SimTime((t * 1e6) as u64);

        // Phase 1: healthy traffic establishes cache state on both.
        for i in 0..4u64 {
            draw_tile(&mut s, &mut store, i);
            pump(&mut s, &store, &mut links, &mut streams, &mut encoders, secs(0.1 * (i + 1) as f64));
        }
        // Phase 2: traffic through the peer's collapse window drives
        // it down the ladder (repeats of the palette travel as refs).
        for i in 0..8u64 {
            draw_tile(&mut s, &mut store, i);
            pump(&mut s, &store, &mut links, &mut streams, &mut encoders, secs(0.55 + 0.1 * i as f64));
        }
        assert!(
            s.client_resilience(peer).unwrap().degrade_steps() > 0,
            "budget {budget}: the collapse must degrade the peer"
        );
        assert_eq!(
            s.client_resilience(owner).unwrap().degrade_steps(),
            0,
            "budget {budget}: the healthy owner never degrades"
        );
        // Phase 3: drain past the window, then softly reconnect the
        // peer: fresh pipe, wire state dropped, display and content
        // store survive, server resyncs.
        for i in 0..10 {
            pump(&mut s, &store, &mut links, &mut streams, &mut encoders, secs(1.6 + 0.1 * i as f64));
        }
        links[1] = (NetworkConfig::lan_desktop().connect().down, PacketTrace::new());
        streams[1].reconnect();
        s.resync_client(peer, store.screen());
        // Phase 4: post-reconnect traffic, then settle to quiescence.
        for i in 0..4u64 {
            draw_tile(&mut s, &mut store, i + 2);
            pump(&mut s, &store, &mut links, &mut streams, &mut encoders, secs(2.7 + 0.1 * i as f64));
        }
        let screen = store.screen().clone();
        for i in 0..120 {
            s.repay_refreshes(&screen);
            pump(&mut s, &store, &mut links, &mut streams, &mut encoders, secs(3.2 + 0.1 * i as f64));
            let settled = ids.iter().enumerate().all(|(idx, &id)| {
                s.backlog(id) == 0
                    && s.client_degradation_level(id) == DegradationLevel::Full
                    && !streams[idx].needs_refresh()
                    && streams[idx].pending_bytes() == 0
            });
            if settled {
                break;
            }
        }

        for (idx, &id) in ids.iter().enumerate() {
            let who = if id == owner { "owner" } else { "peer" };
            assert_eq!(
                streams[idx].client().framebuffer().data(),
                store.screen().data(),
                "budget {budget}: {who} must converge byte-exact"
            );
            assert_eq!(
                streams[idx].resilience_metrics().cache_misses(),
                0,
                "budget {budget}: collapse is delay-only, no entry may go missing"
            );
            let ledger = s.client_cache_keys(id);
            let held = streams[idx].cache_keys();
            assert!(
                !held.is_empty(),
                "budget {budget}: {who} must be holding cached payloads"
            );
            assert_eq!(
                ledger, held,
                "budget {budget}: {who} ledger/store eviction lockstep must hold"
            );
        }
        assert!(
            streams[1].resilience_metrics().reconnects() >= 1,
            "budget {budget}: the peer redialed"
        );
        if budget == 8 * 1024 {
            for (idx, &id) in ids.iter().enumerate() {
                let who = if id == owner { "owner" } else { "peer" };
                assert!(
                    streams[idx].resilience_metrics().cache_evictions() > 0,
                    "budget {budget}: {who} store must have evicted under the tight budget"
                );
            }
        }
    }
}

#[test]
fn sharded_fanout_rides_out_collapse_and_converges_byte_exact() {
    // The resilience scenario on the fan-out path: a 12-viewer
    // broadcast driven through the sharded session manager, with one
    // peer behind a bandwidth collapse. The shard count comes from
    // `THINC_SHARDS` and the worker count from `THINC_FLUSH_WORKERS`
    // (the CI matrix sweeps both) — the verdicts and the final bytes
    // must be identical for every combination. Only the faulted peer
    // degrades; past the window it recovers, every viewer converges
    // byte-exact, and the encode-once plane must have amortized real
    // work across the population.
    use thinc::core::session::Credentials;
    use thinc::core::ShardedManager;
    use thinc::core::session::SharedSession;
    use thinc::display::drawable::DrawableStore;
    use thinc::display::driver::VideoDriver;
    use thinc::net::tcp::TcpPipe;
    use thinc::protocol::wire::{self, FrameEncoder};
    use thinc::protocol::PROTOCOL_VERSION;

    let shards: usize = std::env::var("THINC_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let workers: usize = std::env::var("THINC_FLUSH_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    const CLIENTS: usize = 12;
    const FAULTED: usize = 5;
    let seed = fault_seed().wrapping_add(99);

    let mut session = SharedSession::new(W, H, PixelFormat::Rgb888, "host")
        .with_degradation(DegradationConfig {
            degrade_after: 1,
            promote_after: 1,
            ..DegradationConfig::default()
        })
        .with_workers(workers);
    session.auth_mut().enable_sharing("pw");
    let mut m = ShardedManager::new(session, shards);
    let link = |faulted: bool| -> (TcpPipe, PacketTrace) {
        let pipe = if faulted {
            let plan = FaultPlan::seeded(seed).with_collapse(
                SimTime(200_000),
                SimDuration::from_secs(1),
                0.05,
            );
            NetworkConfig::lan_desktop().with_faults(plan).connect().down
        } else {
            NetworkConfig::lan_desktop().connect().down
        };
        (pipe, PacketTrace::new())
    };
    let owner = m
        .attach(&Credentials::Owner { user: "host".into() }, W, H, link(false))
        .unwrap();
    let mut ids = vec![owner];
    for i in 1..CLIENTS {
        ids.push(
            m.attach(
                &Credentials::Peer {
                    user: format!("viewer{i}"),
                    password: "pw".into(),
                },
                W,
                H,
                link(i == FAULTED),
            )
            .unwrap(),
        );
    }

    let mut store = DrawableStore::new(W, H, PixelFormat::Rgb888);
    let mut streams: Vec<StreamClient> = ids
        .iter()
        .map(|_| {
            let mut c = policy_client(W, H);
            c.feed(&wire::encode_message(&Message::ServerHello {
                version: PROTOCOL_VERSION,
                width: W,
                height: H,
                depth: 24,
            }));
            c
        })
        .collect();
    let mut encoders: Vec<FrameEncoder> = ids
        .iter()
        .map(|_| FrameEncoder::with_revision(PROTOCOL_VERSION))
        .collect();

    let pump = |m: &mut ShardedManager,
                    store: &DrawableStore,
                    streams: &mut Vec<StreamClient>,
                    encoders: &mut Vec<FrameEncoder>,
                    ids: &[thinc::core::session::ClientId],
                    now: SimTime| {
        let out = m.flush_epoch(now);
        for (id, msgs) in out {
            let idx = ids.iter().position(|x| *x == id).unwrap();
            let link = m.link_mut(id).expect("attached");
            if msgs.is_empty() {
                if let Some(tail) = link.0.flush_disturbed() {
                    streams[idx].feed(&tail);
                }
                continue;
            }
            for (arrival, msg) in msgs {
                let bytes = encoders[idx].encode(&msg);
                for seg in link.0.disturb(arrival, bytes) {
                    streams[idx].feed(&seg);
                }
            }
        }
        for (idx, &id) in ids.iter().enumerate() {
            while let Some(miss) = streams[idx].take_cache_miss() {
                if let Message::CacheMiss { hash } = miss {
                    m.session_mut().client_cache_miss(id, hash);
                }
            }
            if streams[idx].poll_reconnect(now).is_some() {
                m.session_mut().resync_client(id, store.screen());
            }
        }
    };
    let secs = |t: f64| SimTime((t * 1e6) as u64);
    // Broadcast traffic: noise bands every viewer receives. The first
    // few epochs are healthy; the rest travel through the faulted
    // peer's collapse window (0.2s..1.2s).
    for i in 0..10u64 {
        let rect = Rect::new(0, ((i * 10) % (H as u64 - 24)) as i32, W, 24);
        let req = noise(rect, seed.wrapping_add(i));
        if let DrawRequest::PutImage { rect, data, .. } = req {
            store.screen_mut().put_raw(&rect, &data);
            m.session_mut().put_image(&store, SCREEN, rect, &data);
        }
        pump(&mut m, &store, &mut streams, &mut encoders, &ids, secs(0.1 * (i + 1) as f64));
    }
    let faulted_id = ids[FAULTED];
    assert!(
        m.session().client_resilience(faulted_id).unwrap().degrade_steps() > 0,
        "the collapse must degrade the faulted viewer"
    );
    for (i, &id) in ids.iter().enumerate() {
        if i != FAULTED {
            assert_eq!(
                m.session().client_resilience(id).unwrap().degrade_steps(),
                0,
                "viewer {i} is healthy and must not degrade"
            );
        }
    }
    // Past the window: settle to quiescence, repaying any refresh owed
    // by the degradation ladder.
    let screen = store.screen().clone();
    for i in 0..200 {
        m.session_mut().repay_refreshes(&screen);
        pump(&mut m, &store, &mut streams, &mut encoders, &ids, secs(1.5 + 0.1 * i as f64));
        let settled = ids.iter().enumerate().all(|(idx, &id)| {
            m.session().backlog(id) == 0
                && m.session().client_degradation_level(id) == DegradationLevel::Full
                && !m.session().client_refresh_owed(id)
                && !streams[idx].needs_refresh()
                && streams[idx].pending_bytes() == 0
        });
        if settled {
            break;
        }
    }
    for (idx, _) in ids.iter().enumerate() {
        assert_eq!(
            streams[idx].client().framebuffer().data(),
            store.screen().data(),
            "viewer {idx} must converge byte-exact (shards={shards} workers={workers})"
        );
    }
    // The perf half of the contract: the plane amortized encodes
    // across the population — far fewer wire forms than plane sends.
    let (mut sends, mut encodes) = (0u64, 0u64);
    for s in 0..m.shard_count() {
        sends += m.shard_metrics(s).shared_sends();
        encodes += m.shard_metrics(s).payload_encodes();
    }
    assert!(sends > 0, "the broadcast must engage the encode-once plane");
    assert!(
        encodes * 2 < sends,
        "encodes={encodes} not amortized over sends={sends}"
    );
}

#[test]
fn warm_resume_ships_fewer_bytes_than_cold_reconnect() {
    // The failover bandwidth contract, end to end over the real wire
    // framing: two converged viewers survive a server crash. One
    // redials with a valid resume token and is resumed warm — the
    // standby ships only the checkpoint-vs-live delta. The other
    // presents a stale token (digest mismatch) and falls back cold —
    // full-view retransmit. Both must converge byte-exact, the warm
    // bill must measurably undercut the cold one, and the telemetry
    // must count one warm resume and one cold fallback on both ends
    // of the wire.
    use thinc::core::checkpoint::ResumeOutcome;
    use thinc::core::session::{Credentials, SharedSession};
    use thinc::display::drawable::DrawableStore;
    use thinc::display::driver::VideoDriver;
    use thinc::protocol::wire::{self, FrameEncoder};
    use thinc::protocol::PROTOCOL_VERSION;

    let seed = fault_seed().wrapping_add(0xFA11);
    let mut session = SharedSession::new(W, H, PixelFormat::Rgb888, "host")
        .with_buffer_bound(BUFFER_BOUND)
        .with_cache(64 * 1024);
    session.auth_mut().enable_sharing("pw");
    let warm_id = session
        .attach(&Credentials::Owner { user: "host".into() }, W, H)
        .unwrap();
    let cold_id = session
        .attach(
            &Credentials::Peer { user: "viewer".into(), password: "pw".into() },
            W,
            H,
        )
        .unwrap();
    let ids = [warm_id, cold_id];
    let mut store = DrawableStore::new(W, H, PixelFormat::Rgb888);
    let mut streams: Vec<StreamClient> = (0..2)
        .map(|_| {
            let mut c = StreamClient::new(W, H, PixelFormat::Rgb888).with_cache_budget(64 * 1024);
            c.feed(&wire::encode_message(&Message::ServerHello {
                version: PROTOCOL_VERSION,
                width: W,
                height: H,
                depth: 24,
            }));
            c
        })
        .collect();
    let mut encoders =
        vec![FrameEncoder::with_revision(PROTOCOL_VERSION), FrameEncoder::with_revision(PROTOCOL_VERSION)];
    let mut links = vec![
        (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
        (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
    ];
    // One delivery round over the framed wire; returns bytes shipped
    // per client so the warm/cold bill can be compared.
    let pump = |session: &mut SharedSession,
                    streams: &mut Vec<StreamClient>,
                    encoders: &mut Vec<FrameEncoder>,
                    links: &mut Vec<(thinc::net::tcp::TcpPipe, PacketTrace)>,
                    now: SimTime|
     -> [u64; 2] {
        let mut shipped = [0u64; 2];
        for (j, (_, msgs)) in session.flush_all(now, links).into_iter().enumerate() {
            for (_, msg) in msgs {
                let bytes = encoders[j].encode(&msg);
                shipped[j] += bytes.len() as u64;
                streams[j].feed(&bytes);
            }
        }
        for (j, &id) in ids.iter().enumerate() {
            while let Some(Message::CacheMiss { hash }) = streams[j].take_cache_miss() {
                session.client_cache_miss(id, hash);
            }
        }
        shipped
    };
    let secs = |t: f64| SimTime((t * 1e6) as u64);
    // Converge both viewers on real traffic before the crash.
    for i in 0..8u64 {
        let rect = Rect::new(0, ((i * 12) % (H as u64 - 24)) as i32, W, 24);
        if let DrawRequest::PutImage { rect, data, .. } = noise(rect, seed.wrapping_add(i)) {
            store.screen_mut().put_raw(&rect, &data);
            session.put_image(&store, SCREEN, rect, &data);
        }
        for r in 0..50 {
            pump(&mut session, &mut streams, &mut encoders, &mut links, secs(0.1 * (i + 1) as f64 + 0.001 * r as f64));
            if ids.iter().all(|&id| session.backlog(id) == 0) {
                break;
            }
        }
    }
    for (j, _) in ids.iter().enumerate() {
        assert_eq!(
            streams[j].client().framebuffer().data(),
            store.screen().data(),
            "viewer {j} must be converged before the crash"
        );
    }

    // Crash instant: the image is taken, the old incarnation dies.
    let image = session.checkpoint(store.screen());
    drop(session);
    drop(links);

    // The desktop keeps moving while the standby spins up: one band
    // of the screen changes before anyone redials.
    let damage = Rect::new(0, 0, W, 24);
    if let DrawRequest::PutImage { rect, data, .. } = noise(damage, seed.wrapping_add(77)) {
        store.screen_mut().put_raw(&rect, &data);
        let mut standby = SharedSession::restore(&image).expect("image restores");
        standby.set_time(secs(5.0));
        standby.put_image(&store, SCREEN, rect, &data);

        // Warm redial: clean wire state, matching token. The standby
        // adopts the client's sequence stream and queues the delta.
        assert!(streams[0].resume(), "drained reader must allow a warm resume");
        let sid = standby.session_id();
        let Message::SessionResume { last_seq, store_digest, .. } =
            streams[0].resume_token(sid, warm_id.0)
        else {
            unreachable!("resume_token always builds SessionResume")
        };
        match standby.resume_client(sid, warm_id, store_digest, store.screen()) {
            ResumeOutcome::Warm { delta_area } => {
                assert!(delta_area > 0, "the screen changed while the server was down");
                assert!(
                    delta_area < (W * H) as u64,
                    "warm resume must not requeue the whole screen: {delta_area}"
                );
                encoders[0].set_next_seq(last_seq.wrapping_add(1));
            }
            cold => panic!("matching token must resume warm, got {cold:?}"),
        }

        // Stale redial: the token's store digest no longer matches
        // (the client lost its content store with the device). The
        // standby falls back cold — ledger reset, full view owed —
        // and answers with a fresh hello that settles the client's
        // pending resume as a cold restart.
        assert!(streams[1].resume());
        let Message::SessionResume { store_digest, .. } =
            streams[1].resume_token(sid, cold_id.0)
        else {
            unreachable!()
        };
        match standby.resume_client(sid, cold_id, store_digest ^ 0xDEAD, store.screen()) {
            ResumeOutcome::Cold { reason } => assert_eq!(reason, "cache digest mismatch"),
            warm => panic!("stale token must fall back cold, got {warm:?}"),
        }
        let hello = wire::encode_message(&Message::ServerHello {
            version: PROTOCOL_VERSION,
            width: W,
            height: H,
            depth: 24,
        });
        let mut shipped = [0u64, hello.len() as u64];
        streams[1].feed(&hello);
        encoders[1] = FrameEncoder::with_revision(PROTOCOL_VERSION);

        // Post-failover settle: both bills accumulate.
        let mut links = vec![
            (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
            (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
        ];
        for r in 0..200u64 {
            let round = pump(&mut standby, &mut streams, &mut encoders, &mut links, secs(5.1 + 0.01 * r as f64));
            shipped[0] += round[0];
            shipped[1] += round[1];
            if ids.iter().all(|&id| standby.backlog(id) == 0)
                && streams.iter().all(|s| s.pending_bytes() == 0)
            {
                break;
            }
        }
        for (j, _) in ids.iter().enumerate() {
            assert_eq!(
                streams[j].client().framebuffer().data(),
                store.screen().data(),
                "viewer {j} must converge byte-exact after the failover"
            );
        }
        // The bandwidth assertion: the warm bill covers one changed
        // band, the cold bill a full-screen retransmit.
        assert!(
            shipped[0] * 2 < shipped[1],
            "warm resume ({} B) must measurably undercut cold reconnect ({} B)",
            shipped[0],
            shipped[1]
        );
        // Telemetry, both ends of the wire: one warm resume honored,
        // one cold fallback taken — greppable nonzero in CI.
        assert_eq!(streams[0].resilience_metrics().resumes(), 1);
        assert_eq!(streams[0].resilience_metrics().cold_fallbacks(), 0);
        assert_eq!(streams[1].resilience_metrics().cold_fallbacks(), 1);
        assert_eq!(standby.client_resilience(warm_id).unwrap().resumes(), 1);
        assert_eq!(standby.client_resilience(cold_id).unwrap().cold_fallbacks(), 1);
    } else {
        unreachable!("noise always builds PutImage");
    }
}

#[test]
fn checkpoint_failover_converges_across_shards() {
    // Warm failover on the sharded fan-out path, swept by the CI
    // matrix: a broadcast session crashes mid-traffic (undelivered
    // backlog in flight), the standby restores the image under
    // `THINC_SHARDS` shards and `THINC_FLUSH_WORKERS` workers, every
    // viewer redials with a valid resume token, and all of them are
    // resumed warm — zero cold fallbacks — converging byte-exact on
    // the post-crash screen for every shard × worker combination.
    use thinc::core::checkpoint::ResumeOutcome;
    use thinc::core::session::{Credentials, SharedSession};
    use thinc::core::ShardedManager;
    use thinc::display::drawable::DrawableStore;
    use thinc::display::driver::VideoDriver;
    use thinc::protocol::wire::{self, FrameEncoder};
    use thinc::protocol::PROTOCOL_VERSION;

    let shards: usize = std::env::var("THINC_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let workers: usize = std::env::var("THINC_FLUSH_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    const CLIENTS: usize = 6;
    let seed = fault_seed().wrapping_add(0x0FF1);

    let mut session = SharedSession::new(W, H, PixelFormat::Rgb888, "host")
        .with_buffer_bound(BUFFER_BOUND)
        .with_cache(64 * 1024)
        .with_workers(workers);
    session.auth_mut().enable_sharing("pw");
    let mut m = ShardedManager::new(session, shards);
    let fresh_link = || (NetworkConfig::lan_desktop().connect().down, PacketTrace::new());
    let owner = m
        .attach(&Credentials::Owner { user: "host".into() }, W, H, fresh_link())
        .unwrap();
    let mut ids = vec![owner];
    for i in 1..CLIENTS {
        ids.push(
            m.attach(
                &Credentials::Peer {
                    user: format!("viewer{i}"),
                    password: "pw".into(),
                },
                W,
                H,
                fresh_link(),
            )
            .unwrap(),
        );
    }
    let mut store = DrawableStore::new(W, H, PixelFormat::Rgb888);
    let mut streams: Vec<StreamClient> = ids
        .iter()
        .map(|_| {
            let mut c = StreamClient::new(W, H, PixelFormat::Rgb888).with_cache_budget(64 * 1024);
            c.feed(&wire::encode_message(&Message::ServerHello {
                version: PROTOCOL_VERSION,
                width: W,
                height: H,
                depth: 24,
            }));
            c
        })
        .collect();
    let mut encoders: Vec<FrameEncoder> = ids
        .iter()
        .map(|_| FrameEncoder::with_revision(PROTOCOL_VERSION))
        .collect();
    let pump = |m: &mut ShardedManager,
                streams: &mut Vec<StreamClient>,
                encoders: &mut Vec<FrameEncoder>,
                ids: &[thinc::core::session::ClientId],
                now: SimTime| {
        let out = m.flush_epoch(now);
        for (id, msgs) in out {
            let idx = ids.iter().position(|x| *x == id).unwrap();
            for (_, msg) in msgs {
                let bytes = encoders[idx].encode(&msg);
                streams[idx].feed(&bytes);
            }
        }
        for (idx, &id) in ids.iter().enumerate() {
            while let Some(Message::CacheMiss { hash }) = streams[idx].take_cache_miss() {
                m.session_mut().client_cache_miss(id, hash);
            }
        }
    };
    let secs = |t: f64| SimTime((t * 1e6) as u64);
    // Broadcast traffic, partially delivered: the last band is drawn
    // but never flushed, so the crash image carries live backlog.
    for i in 0..6u64 {
        let rect = Rect::new(0, ((i * 14) % (H as u64 - 20)) as i32, W, 20);
        if let DrawRequest::PutImage { rect, data, .. } = noise(rect, seed.wrapping_add(i)) {
            store.screen_mut().put_raw(&rect, &data);
            m.session_mut().put_image(&store, SCREEN, rect, &data);
        }
        if i < 5 {
            for r in 0..50 {
                pump(&mut m, &mut streams, &mut encoders, &ids, secs(0.1 * (i + 1) as f64 + 0.001 * r as f64));
                if ids.iter().all(|&id| m.session().backlog(id) == 0) {
                    break;
                }
            }
        }
    }
    assert!(
        ids.iter().any(|&id| m.session().backlog(id) > 0),
        "the crash must strike with backlog in flight"
    );

    // Crash instant: live image, old incarnation gone.
    let image = m.session().checkpoint(store.screen());
    drop(m);

    // The standby restores under the swept shard count; the desktop
    // moved while it spun up.
    let mut m = ShardedManager::restore(&image, shards).expect("crash image restores");
    m.session_mut().set_time(secs(3.0));
    let damage = Rect::new(0, (H - 20) as i32, W, 20);
    if let DrawRequest::PutImage { rect, data, .. } = noise(damage, seed.wrapping_add(99)) {
        store.screen_mut().put_raw(&rect, &data);
        m.session_mut().put_image(&store, SCREEN, rect, &data);
    }
    // Every viewer redials: fresh link adopted by its shard, resume
    // token accepted, sequence stream carried forward.
    let sid = m.session().session_id();
    for (idx, &id) in ids.iter().enumerate() {
        m.adopt_link(id, fresh_link());
        assert!(streams[idx].resume(), "drained reader must allow a warm resume");
        let Message::SessionResume { last_seq, store_digest, .. } =
            streams[idx].resume_token(sid, id.0)
        else {
            unreachable!()
        };
        match m.session_mut().resume_client(sid, id, store_digest, store.screen()) {
            ResumeOutcome::Warm { .. } => encoders[idx].set_next_seq(last_seq.wrapping_add(1)),
            cold => panic!("viewer {idx} must resume warm (shards={shards}), got {cold:?}"),
        }
    }
    // Settle: the standby replays the checkpointed backlog and the
    // resume deltas through the sharded flush plane.
    for r in 0..200u64 {
        pump(&mut m, &mut streams, &mut encoders, &ids, secs(3.1 + 0.01 * r as f64));
        if ids.iter().all(|&id| m.session().backlog(id) == 0)
            && streams.iter().all(|s| s.pending_bytes() == 0)
        {
            break;
        }
    }
    for (idx, &id) in ids.iter().enumerate() {
        assert_eq!(
            streams[idx].client().framebuffer().data(),
            store.screen().data(),
            "viewer {idx} must converge byte-exact after failover \
             (shards={shards} workers={workers})"
        );
        let server_side = m.session().client_resilience(id).unwrap();
        assert_eq!(server_side.resumes(), 1, "viewer {idx}: warm resume counted");
        assert_eq!(server_side.cold_fallbacks(), 0, "viewer {idx}: no cold fallback");
        assert_eq!(streams[idx].resilience_metrics().resumes(), 1);
    }
}
