//! Screen sharing integration: one session, several authenticated
//! clients (including a small-viewport peer), all converging to the
//! host's screen content.

use thinc::client::ThincClient;
use thinc::core::session::{ClientId, Credentials, SharedSession};
use thinc::display::request::DrawRequest;
use thinc::display::server::WindowServer;
use thinc::display::SCREEN;
use thinc::net::link::NetworkConfig;
use thinc::net::time::{SimDuration, SimTime};
use thinc::net::trace::PacketTrace;
use thinc::raster::{Color, PixelFormat, Rect};

const W: u32 = 128;
const H: u32 = 96;

struct Peer {
    id: ClientId,
    client: ThincClient,
    link: thinc::net::link::DuplexLink,
    trace: PacketTrace,
}

fn drain(ws: &mut WindowServer<SharedSession>, peers: &mut [Peer]) {
    let mut now = SimTime::ZERO;
    for _ in 0..10_000 {
        let mut pending = false;
        for p in peers.iter_mut() {
            let batch = ws
                .driver_mut()
                .flush_client(p.id, now, &mut p.link.down, &mut p.trace);
            for (_, msg) in batch {
                p.client.apply(&msg);
            }
            pending |= ws.driver().backlog(p.id) > 0;
        }
        if !pending {
            break;
        }
        now += SimDuration::from_millis(1);
    }
}

#[test]
fn two_full_size_clients_see_identical_content() {
    let session = SharedSession::new(W, H, PixelFormat::Rgb888, "host");
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, session);
    ws.driver_mut().auth_mut().enable_sharing("sosp2005");
    let host_id = ws
        .driver_mut()
        .attach(&Credentials::Owner { user: "host".into() }, W, H)
        .expect("owner attaches");
    let peer_id = ws
        .driver_mut()
        .attach(
            &Credentials::Peer {
                user: "guest".into(),
                password: "sosp2005".into(),
            },
            W,
            H,
        )
        .expect("peer attaches");
    assert_eq!(ws.driver().client_count(), 2);
    assert_eq!(ws.driver().client_user(peer_id), Some("guest"));

    let net = NetworkConfig::lan_desktop();
    let mut peers = vec![
        Peer {
            id: host_id,
            client: ThincClient::new(W, H, PixelFormat::Rgb888),
            link: net.connect(),
            trace: PacketTrace::new(),
        },
        Peer {
            id: peer_id,
            client: ThincClient::new(W, H, PixelFormat::Rgb888),
            link: net.connect(),
            trace: PacketTrace::new(),
        },
    ];

    // Draw: background + offscreen-composed window.
    ws.process(DrawRequest::FillRect {
        target: SCREEN,
        rect: Rect::new(0, 0, W, H),
        color: Color::rgb(20, 60, 100),
    });
    let pm = match ws.process(DrawRequest::CreatePixmap { width: 64, height: 48 }) {
        thinc::display::request::RequestResult::Created(id) => id,
        other => panic!("{other:?}"),
    };
    ws.process_all(vec![
        DrawRequest::FillRect {
            target: pm,
            rect: Rect::new(0, 0, 64, 48),
            color: Color::WHITE,
        },
        DrawRequest::Text {
            target: pm,
            x: 4,
            y: 4,
            text: "shared".into(),
            fg: Color::BLACK,
        },
        DrawRequest::CopyArea {
            src: pm,
            dst: SCREEN,
            src_rect: Rect::new(0, 0, 64, 48),
            dst_x: 32,
            dst_y: 24,
        },
    ]);
    drain(&mut ws, &mut peers);

    // Both clients converged to the host screen, byte for byte.
    for p in &peers {
        assert_eq!(
            p.client.framebuffer().data(),
            ws.screen().data(),
            "client {:?} diverged",
            p.id
        );
    }
}

#[test]
fn small_viewport_peer_gets_scaled_updates() {
    let session = SharedSession::new(W, H, PixelFormat::Rgb888, "host");
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, session);
    ws.driver_mut().auth_mut().enable_sharing("pw");
    let full_id = ws
        .driver_mut()
        .attach(&Credentials::Owner { user: "host".into() }, W, H)
        .unwrap();
    let pda_id = ws
        .driver_mut()
        .attach(
            &Credentials::Peer {
                user: "pda".into(),
                password: "pw".into(),
            },
            W / 4,
            H / 4,
        )
        .unwrap();
    let net = NetworkConfig::pda_802_11g();
    let mut peers = vec![
        Peer {
            id: full_id,
            client: ThincClient::new(W, H, PixelFormat::Rgb888),
            link: net.connect(),
            trace: PacketTrace::new(),
        },
        Peer {
            id: pda_id,
            client: ThincClient::new(W / 4, H / 4, PixelFormat::Rgb888),
            link: net.connect(),
            trace: PacketTrace::new(),
        },
    ];
    // An incompressible image so byte counts reflect scaling.
    let mut x = 3u64;
    let data: Vec<u8> = (0..(W * H * 3) as usize)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 33) as u8
        })
        .collect();
    ws.process(DrawRequest::PutImage {
        target: SCREEN,
        rect: Rect::new(0, 0, W, H),
        data,
    });
    drain(&mut ws, &mut peers);

    let full_bytes = peers[0].trace.total_bytes();
    let pda_bytes = peers[1].trace.total_bytes();
    assert!(
        pda_bytes * 4 < full_bytes,
        "scaled peer got {pda_bytes} vs full {full_bytes}"
    );
    // The PDA peer's framebuffer is a downscale of the host screen;
    // its fill color at the center should be close to the original.
    let c_full = ws.screen().get_pixel(W as i32 / 2, H as i32 / 2).unwrap();
    let c_pda = peers[1]
        .client
        .framebuffer()
        .get_pixel(W as i32 / 8, H as i32 / 8)
        .unwrap();
    // Noise downscales to mid-grey-ish; just require it drew something
    // with plausible energy rather than staying black.
    assert!(c_pda.r as u32 + c_pda.g as u32 + c_pda.b as u32 > 60, "{c_pda:?} vs {c_full:?}");
}

#[test]
fn detach_stops_delivery() {
    let session = SharedSession::new(W, H, PixelFormat::Rgb888, "host");
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, session);
    let id = ws
        .driver_mut()
        .attach(&Credentials::Owner { user: "host".into() }, W, H)
        .unwrap();
    ws.driver_mut().detach(id);
    assert_eq!(ws.driver().client_count(), 0);
    ws.process(DrawRequest::FillRect {
        target: SCREEN,
        rect: Rect::new(0, 0, 8, 8),
        color: Color::WHITE,
    });
    assert_eq!(ws.driver().backlog(id), 0);
}
