//! Audio/video synchronization integration (§4.2): "THINC timestamps
//! both audio and video data at the server to ensure they are
//! delivered to the client with the same synchronization
//! characteristics present at the server."

use thinc::bench::thinc_system::ThincSystem;
use thinc::baselines::RemoteDisplay;
use thinc::net::link::NetworkConfig;
use thinc::net::time::{SimDuration, SimTime};
use thinc::raster::Rect;
use thinc::workloads::video::{AudioTrack, VideoClip};

#[test]
fn timestamps_are_monotonic_and_span_the_clip() {
    let net = NetworkConfig::lan_desktop();
    let mut sys = ThincSystem::new(&net, 512, 384);
    let clip = VideoClip::short(1_500);
    let track = AudioTrack {
        duration_ms: 1_500,
        ..AudioTrack::benchmark()
    };
    let start = SimTime(10_000);
    let mut next_audio = start;
    for i in 0..clip.frame_count() {
        let t = start + SimDuration::from_micros(clip.pts_us(i));
        while next_audio <= t {
            let off = (next_audio - start).as_micros() / 1000;
            if off >= track.duration_ms {
                break;
            }
            sys.audio(next_audio, &track.pcm(off, 100));
            next_audio += SimDuration::from_millis(100);
        }
        sys.video_frame(t, &clip.frame(i), Rect::new(0, 0, 512, 384));
    }
    sys.drain(start + SimDuration::from_millis(1_500));

    // Audio timestamps at the client are strictly increasing and
    // anchored at the device-open time.
    let ts = sys.client().client().audio_timestamps();
    assert!(ts.len() >= 10, "{} audio packets", ts.len());
    for w in ts.windows(2) {
        assert!(w[1] > w[0], "audio timestamps not monotonic: {w:?}");
    }
    let span_us = ts.last().unwrap() - ts.first().unwrap();
    assert!(
        span_us >= 1_200_000,
        "audio timestamps span only {span_us} us of a 1.5 s clip"
    );
    // Video arrived in full.
    assert_eq!(sys.av_stats().frames_delivered, clip.frame_count());
}

#[test]
fn audio_clock_matches_pcm_rate() {
    // Timestamps must advance at exactly the PCM byte rate: packet k
    // starts at (bytes before k) / bytes_per_sec.
    let net = NetworkConfig::lan_desktop();
    let mut sys = ThincSystem::new(&net, 64, 64);
    let track = AudioTrack::benchmark();
    let start = SimTime::ZERO;
    // Feed exactly 0.5 s of PCM in one write.
    sys.audio(start, &track.pcm(0, 500));
    sys.drain(SimTime(600_000));
    let ts = sys.client().client().audio_timestamps();
    assert!(!ts.is_empty());
    // Packets are DEFAULT_PACKET_BYTES (4096) apart: 4096 bytes at
    // 176400 B/s = 23219 us.
    let expect_step = 4096 * 1_000_000 / track.bytes_per_sec();
    for w in ts.windows(2) {
        let step = w[1] - w[0];
        assert!(
            (step as i64 - expect_step as i64).abs() <= 1,
            "step {step} vs expected {expect_step}"
        );
    }
}
