//! Screen sharing: one session, many collaborating clients (§7).
//!
//! The host enables sharing with a session password; a desktop peer
//! and a PDA-sized peer attach. Every drawing operation is translated
//! once and fanned out per client — the PDA peer's copy is resized
//! server-side. This is the collaboration scenario from §1: "groups
//! of users distributed over large geographical locations can
//! seamlessly collaborate using a single shared computing session."
//!
//! Run with: `cargo run --example screen_sharing`

use thinc::client::ThincClient;
use thinc::core::session::{ClientId, Credentials, SharedSession};
use thinc::display::request::DrawRequest;
use thinc::display::server::WindowServer;
use thinc::display::SCREEN;
use thinc::net::link::{DuplexLink, NetworkConfig};
use thinc::net::time::{SimDuration, SimTime};
use thinc::net::trace::PacketTrace;
use thinc::raster::{Color, PixelFormat, Rect};

const W: u32 = 320;
const H: u32 = 240;

struct Viewer {
    name: &'static str,
    id: ClientId,
    client: ThincClient,
    link: DuplexLink,
    trace: PacketTrace,
}

fn main() {
    let session = SharedSession::new(W, H, PixelFormat::Rgb888, "host");
    let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, session);
    ws.driver_mut().auth_mut().enable_sharing("brighton-2005");

    // A peer with the wrong password is refused.
    let rejected = ws.driver_mut().attach(
        &Credentials::Peer {
            user: "mallory".into(),
            password: "guess".into(),
        },
        W,
        H,
    );
    println!("mallory with wrong password: {rejected:?}");

    let mut viewers = Vec::new();
    for (name, creds, vw, vh, net) in [
        (
            "host",
            Credentials::Owner { user: "host".into() },
            W,
            H,
            NetworkConfig::lan_desktop(),
        ),
        (
            "colleague",
            Credentials::Peer {
                user: "colleague".into(),
                password: "brighton-2005".into(),
            },
            W,
            H,
            NetworkConfig::wan_desktop(),
        ),
        (
            "pda-peer",
            Credentials::Peer {
                user: "pda".into(),
                password: "brighton-2005".into(),
            },
            W / 2,
            H / 2,
            NetworkConfig::pda_802_11g(),
        ),
    ] {
        let id = ws.driver_mut().attach(&creds, vw, vh).expect("attach");
        viewers.push(Viewer {
            name,
            id,
            client: ThincClient::new(vw, vh, PixelFormat::Rgb888),
            link: net.connect(),
            trace: PacketTrace::new(),
        });
    }
    println!("attached clients: {}", ws.driver().client_count());

    // The host draws a small collaborative whiteboard scene.
    ws.process(DrawRequest::FillRect {
        target: SCREEN,
        rect: Rect::new(0, 0, W, H),
        color: Color::rgb(245, 245, 238),
    });
    ws.process(DrawRequest::Text {
        target: SCREEN,
        x: 12,
        y: 10,
        text: "shared session notes".into(),
        fg: Color::BLACK,
    });
    for (i, color) in [(0, Color::rgb(200, 40, 40)), (1, Color::rgb(40, 160, 40))] {
        ws.process(DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(20 + i * 140, 60, 120, 80),
            color,
        });
    }

    // Deliver to every viewer over its own link.
    let mut now = SimTime::ZERO;
    for _ in 0..10_000 {
        let mut pending = false;
        for v in viewers.iter_mut() {
            let batch = ws
                .driver_mut()
                .flush_client(v.id, now, &mut v.link.down, &mut v.trace);
            for (_, msg) in batch {
                v.client.apply(&msg);
            }
            pending |= ws.driver().backlog(v.id) > 0;
        }
        if !pending {
            break;
        }
        now += SimDuration::from_millis(1);
    }

    for v in &viewers {
        let fb = v.client.framebuffer();
        let synced = if fb.width() == W {
            fb.data() == ws.screen().data()
        } else {
            // Scaled peers converge to a resized view, not bytes.
            fb.get_pixel(fb.width() as i32 / 2, fb.height() as i32 / 2).is_some()
        };
        println!(
            "{:<10} viewport {}x{}  bytes {:>6}  {}",
            v.name,
            fb.width(),
            fb.height(),
            v.trace.total_bytes(),
            if synced { "OK" } else { "DIVERGED" }
        );
        assert!(synced);
    }
    println!("screen sharing OK: every authenticated viewer converged");
}
