//! Web browsing comparison: THINC against representative baselines
//! on the LAN and WAN configurations of §8.1.
//!
//! A shortened run of the Figure 2/3 experiment: the i-Bench-style
//! page sequence is rendered through each system (offscreen page
//! composition, text runs, images), and slow-motion page latency and
//! data-per-page are reported.
//!
//! Run with: `cargo run --release --example web_browsing`

use thinc::baselines::{Nx, RemoteDisplay, SunRay, Vnc, XSystem};
use thinc::net::link::NetworkConfig;
use thinc::bench::thinc_system::ThincSystem;
use thinc::bench::webbench::run_web;
use thinc::workloads::web::WebWorkload;

const PAGES: usize = 10;
const W: u32 = 1024;
const H: u32 = 768;

fn run_config(label: &str, net: &NetworkConfig) {
    println!("\n--- {label}: {PAGES} pages at {W}x{H} ---");
    println!("{:>10}  {:>10}  {:>12}", "system", "latency", "data/page");
    let wl = WebWorkload::standard();
    let mut systems: Vec<Box<dyn RemoteDisplay>> = vec![
        Box::new(ThincSystem::new(net, W, H)),
        Box::new(SunRay::new(net, W, H)),
        Box::new(Vnc::new(net, W, H)),
        Box::new(XSystem::new(net, W, H)),
        Box::new(Nx::new(net, W, H)),
    ];
    for sys in systems.iter_mut() {
        let res = run_web(sys.as_mut(), &wl, PAGES);
        println!(
            "{:>10}  {:>9.3}s  {:>9.1} KB",
            res.system, res.avg_latency_s, res.avg_page_kb
        );
    }
}

fn main() {
    run_config("LAN Desktop (100 Mbps, 0.2 ms RTT)", &NetworkConfig::lan_desktop());
    run_config("WAN Desktop (100 Mbps, 66 ms RTT)", &NetworkConfig::wan_desktop());
    println!(
        "\nExpected shape (paper Fig. 2/3): THINC fastest in both configs, nearly \
         flat LAN->WAN; X degrades ~2.5x; NX recovers most of it; VNC sends the most data."
    );
}
