//! Quickstart: a complete THINC session in one file.
//!
//! Builds a window server with the THINC virtual display driver
//! attached, draws a small desktop scene (including offscreen
//! composition, the pattern THINC's translation layer exists for),
//! flushes the resulting protocol commands over a simulated LAN —
//! exercising the *full* wire path: binary encoding, RC4 encryption,
//! decryption, frame reassembly — and verifies that the client's
//! framebuffer is byte-identical to the server's screen.
//!
//! Run with: `cargo run --example quickstart`

use thinc::client::ThincClient;
use thinc::compress::Rc4;
use thinc::core::server::{ServerConfig, ThincServer};
use thinc::display::request::DrawRequest;
use thinc::display::server::WindowServer;
use thinc::display::SCREEN;
use thinc::net::link::NetworkConfig;
use thinc::net::time::SimTime;
use thinc::net::trace::PacketTrace;
use thinc::protocol::wire::{encode_message, FrameReader};
use thinc::raster::{Color, PixelFormat, Rect};

fn main() {
    const KEY: &[u8] = b"quickstart-session-key!!";
    let (width, height) = (320, 240);

    // 1. Server: window server + THINC virtual display driver.
    let config = ServerConfig {
        width,
        height,
        rc4_key: Some(KEY.to_vec()),
        ..ServerConfig::default()
    };
    let mut ws = WindowServer::new(width, height, PixelFormat::Rgb888, ThincServer::new(config));
    println!("server: {:?}", ws.driver().hello());

    // 2. An application draws: desktop background, a window composed
    //    offscreen (as every modern toolkit does), then copied on.
    ws.process(DrawRequest::FillRect {
        target: SCREEN,
        rect: Rect::new(0, 0, width, height),
        color: Color::rgb(0, 90, 140),
    });
    let pm = match ws.process(DrawRequest::CreatePixmap { width: 200, height: 120 }) {
        thinc::display::request::RequestResult::Created(id) => id,
        other => panic!("pixmap creation failed: {other:?}"),
    };
    ws.process_all(vec![
        DrawRequest::FillRect {
            target: pm,
            rect: Rect::new(0, 0, 200, 120),
            color: Color::rgb(238, 238, 230),
        },
        DrawRequest::FillRect {
            target: pm,
            rect: Rect::new(0, 0, 200, 16),
            color: Color::rgb(60, 60, 90),
        },
        DrawRequest::Text {
            target: pm,
            x: 6,
            y: 4,
            text: "thinc quickstart".into(),
            fg: Color::WHITE,
        },
        DrawRequest::Text {
            target: pm,
            x: 10,
            y: 30,
            text: "hello remote desktop".into(),
            fg: Color::BLACK,
        },
        DrawRequest::CopyArea {
            src: pm,
            dst: SCREEN,
            src_rect: Rect::new(0, 0, 200, 120),
            dst_x: 40,
            dst_y: 50,
        },
    ]);

    // 3. Flush over a simulated 100 Mbps LAN, through the real wire
    //    format and RC4 in both directions.
    let mut link = NetworkConfig::lan_desktop().connect();
    let mut trace = PacketTrace::new();
    let mut server_rc4 = Rc4::new(KEY);
    let mut client_rc4 = Rc4::new(KEY);
    let mut reader = FrameReader::new();
    let mut client = ThincClient::new(width, height, PixelFormat::Rgb888);
    let mut now = SimTime::ZERO;
    let mut wire_bytes = 0usize;
    loop {
        let batch = ws.driver_mut().flush(now, &mut link.down, &mut trace);
        if batch.is_empty()
            && ws.driver().display_backlog() == 0
            && ws.driver().av_backlog() == 0
        {
            break;
        }
        for (_arrival, msg) in batch {
            // Encode, encrypt, "transmit", decrypt, reassemble, apply.
            let mut bytes = encode_message(&msg);
            server_rc4.apply(&mut bytes);
            wire_bytes += bytes.len();
            client_rc4.apply(&mut bytes);
            reader.feed(&bytes);
            while let Some(decoded) = reader.next_message().expect("valid stream") {
                client.apply(&decoded);
            }
        }
        now = link.down.tx_free_at();
    }

    // 4. Verify: the client saw exactly what the server drew.
    assert_eq!(
        client.framebuffer().data(),
        ws.screen().data(),
        "client framebuffer must equal server screen"
    );
    let stats = ws.driver().stats();
    println!(
        "translated commands: sfill={} bitmap={} copy={} raw={} (raw fallback bytes: {})",
        stats.translator.sfill,
        stats.translator.bitmap,
        stats.translator.copy,
        stats.translator.raw,
        stats.translator.raw_fallback_bytes,
    );
    println!("client executed: {:?}", client.stats());
    println!("encrypted wire bytes: {wire_bytes}");
    println!("quickstart OK: client framebuffer is byte-identical to the server screen");
}
