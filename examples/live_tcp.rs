//! Live operation over a real TCP socket.
//!
//! Everything else in this repository runs on the deterministic
//! virtual-time simulator; this example proves the same protocol
//! stack works over an actual network connection: a server thread
//! renders a web-style page through the THINC pipeline and streams
//! the encoded protocol over 127.0.0.1 TCP; the client (main thread)
//! reassembles frames from the socket and executes them. At the end
//! the client framebuffer checksum must equal the server screen's.
//!
//! Run with: `cargo run --example live_tcp`

use thinc::client::ThincClient;
use thinc::core::server::{ServerConfig, ThincServer};
use thinc::display::drawable::DrawableId;
use thinc::display::server::WindowServer;
use thinc::net::link::NetworkConfig;
use thinc::net::time::SimTime;
use thinc::net::trace::PacketTrace;
use thinc::net::transport::{TcpTransport, Transport, TransportError};
use thinc::protocol::wire::{encode_message, FrameReader};
use thinc::raster::PixelFormat;
use thinc::workloads::web::WebWorkload;

const W: u32 = 320;
const H: u32 = 240;

fn main() {
    let (listener, addr) = TcpTransport::listen("127.0.0.1:0".parse().unwrap())
        .expect("bind loopback listener");
    println!("server listening on {addr}");

    let server = std::thread::spawn(move || {
        let mut transport = TcpTransport::accept(&listener).expect("accept client");
        let config = ServerConfig {
            width: W,
            height: H,
            ..ServerConfig::default()
        };
        let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, ThincServer::new(config));
        // Render one synthetic web page, browser style.
        let wl = WebWorkload::new(W, H, 7);
        let mut reqs = vec![thinc::display::request::DrawRequest::CreatePixmap {
            width: W,
            height: H,
        }];
        reqs.extend(wl.render_requests(2, DrawableId(1)));
        ws.process_all(reqs);
        // Flush through the delivery pipeline (scheduling, eviction,
        // compression) and ship each message over the socket.
        let mut pipe = NetworkConfig::lan_desktop().connect().down;
        let mut trace = PacketTrace::new();
        let mut now = SimTime::ZERO;
        let mut sent = 0usize;
        let mut messages = 0usize;
        loop {
            let batch = ws.driver_mut().flush(now, &mut pipe, &mut trace);
            for (_, msg) in &batch {
                let bytes = encode_message(msg);
                transport.send_all(&bytes).expect("socket write");
                sent += bytes.len();
                messages += 1;
            }
            if ws.driver().display_backlog() == 0 && ws.driver().av_backlog() == 0 {
                break;
            }
            now = pipe.tx_free_at();
        }
        println!("server: sent {messages} messages, {sent} bytes over TCP");
        ws.screen().checksum()
    });

    let mut transport = TcpTransport::connect(addr).expect("connect to server");
    let mut client = ThincClient::new(W, H, PixelFormat::Rgb888);
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        match transport.try_recv(&mut buf) {
            Ok(0) => std::thread::yield_now(),
            Ok(n) => {
                reader.feed(&buf[..n]);
                while let Some(msg) = reader.next_message().expect("valid stream") {
                    client.apply(&msg);
                }
            }
            Err(TransportError::Closed) => break,
            Err(e) => panic!("socket error: {e}"),
        }
    }
    let server_checksum = server.join().expect("server thread");
    println!(
        "client: executed {:?}",
        client.stats()
    );
    assert_eq!(
        client.framebuffer().checksum(),
        server_checksum,
        "client framebuffer must match the server screen"
    );
    println!("live TCP OK: checksums match across a real socket");
}
