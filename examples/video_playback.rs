//! Fullscreen video playback: the experiment THINC wins outright.
//!
//! Plays a shortened version of the §8.2 clip (352×240 YV12 at 24 fps,
//! displayed fullscreen at 1024×768) with its audio track through
//! THINC and through representative baselines, and reports slow-motion
//! A/V quality and data transferred. THINC ships the YUV stream to the
//! client's hardware scaler, so fullscreen playback costs the same
//! bandwidth as windowed — every pixel-based system has to move (and
//! fails to move) the scaled RGB instead.
//!
//! Run with: `cargo run --release --example video_playback`

use thinc::baselines::{Nx, RdpClass, RemoteDisplay, SunRay, Vnc, XSystem};
use thinc::bench::avbench::run_av;
use thinc::bench::thinc_system::ThincSystem;
use thinc::net::link::NetworkConfig;
use thinc::raster::Rect;
use thinc::workloads::video::{AudioTrack, VideoClip};

const W: u32 = 1024;
const H: u32 = 768;
const CLIP_MS: u64 = 5_000;

fn run_config(label: &str, net: &NetworkConfig) {
    println!("\n--- {label}: {:.1}s clip, 352x240 YV12 @24fps, fullscreen {W}x{H} ---",
        CLIP_MS as f64 / 1000.0);
    println!("{:>10}  {:>8}  {:>9}  {:>9}", "system", "quality", "frames", "data");
    let clip = VideoClip::short(CLIP_MS);
    let audio = AudioTrack {
        duration_ms: CLIP_MS,
        ..AudioTrack::benchmark()
    };
    let dst = Rect::new(0, 0, W, H);
    let mut systems: Vec<Box<dyn RemoteDisplay>> = vec![
        Box::new(ThincSystem::new(net, W, H)),
        Box::new(SunRay::new(net, W, H)),
        Box::new(Vnc::new(net, W, H)),
        Box::new(XSystem::new(net, W, H)),
        Box::new(Nx::new(net, W, H)),
        Box::new(RdpClass::ica(net, W, H)),
    ];
    for sys in systems.iter_mut() {
        let res = run_av(sys.as_mut(), &clip, Some(&audio), dst);
        println!(
            "{:>10}  {:>7.1}%  {:>4}/{:<4}  {:>6.1} MB",
            res.system,
            res.quality * 100.0,
            res.frames.0,
            res.frames.0 + res.frames.1,
            res.data_mb
        );
    }
}

fn main() {
    run_config("LAN Desktop", &NetworkConfig::lan_desktop());
    run_config("WAN Desktop", &NetworkConfig::wan_desktop());
    println!(
        "\nExpected shape (paper Fig. 5/6): only THINC reaches 100% quality; NX is \
         worst on the LAN; VNC's client-pull halves its quality in the WAN."
    );
}
