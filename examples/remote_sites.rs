//! THINC from around the world (Table 2, Figures 4 and 7).
//!
//! Runs the web benchmark and a short A/V clip with the THINC client
//! placed at each of the paper's eleven remote sites. The network
//! parameters are derived from each site's distance to the New York
//! server; PlanetLab nodes carry the 256 KB TCP-window clamp that —
//! exactly as in the paper — is what breaks video playback from
//! Seoul while Helsinki (with a full 1 MB window) plays perfectly.
//!
//! Run with: `cargo run --release --example remote_sites`

use thinc::bench::avbench::run_av;
use thinc::bench::sites::remote_sites;
use thinc::bench::thinc_system::ThincSystem;
use thinc::bench::webbench::run_web;
use thinc::raster::Rect;
use thinc::workloads::video::{AudioTrack, VideoClip};
use thinc::workloads::web::WebWorkload;

const W: u32 = 1024;
const H: u32 = 768;
const PAGES: usize = 4;
const CLIP_MS: u64 = 3_000;

fn main() {
    let wl = WebWorkload::standard();
    let clip = VideoClip::short(CLIP_MS);
    let audio = AudioTrack {
        duration_ms: CLIP_MS,
        ..AudioTrack::benchmark()
    };
    println!(
        "{:>4}  {:>22}  {:>7}  {:>7}  {:>9}  {:>8}",
        "site", "location", "RTT", "window", "page lat.", "A/V qual"
    );
    for site in remote_sites() {
        let net = site.network();
        let mut web_sys = ThincSystem::new(&net, W, H);
        let web = run_web(&mut web_sys, &wl, PAGES);
        let mut av_sys = ThincSystem::new(&net, W, H);
        let av = run_av(&mut av_sys, &clip, Some(&audio), Rect::new(0, 0, W, H));
        println!(
            "{:>4}  {:>22}  {:>5.0}ms  {:>4}KB  {:>8.3}s  {:>7.1}%",
            site.name,
            site.location,
            site.rtt().as_secs_f64() * 1000.0,
            site.rwnd_bytes() / 1024,
            web.avg_latency_s,
            av.quality * 100.0
        );
    }
    println!(
        "\nExpected shape (paper Fig. 4/7): sub-second pages and 100% A/V everywhere \
         except Seoul, whose PlanetLab node is TCP-window-limited below the clip's bitrate."
    );
}
