//! Server-side screen scaling for small displays (§6).
//!
//! Renders a web page at the 1024×768 session size while the client
//! views it through a 320×240 PDA viewport. With server-side scaling
//! the server resizes every update with the anti-aliased Fant
//! resampler before transmission, cutting bandwidth; the per-command
//! policy (RAW resampled, BITMAP→RAW, SFILL coordinates-only) is
//! visible in the statistics. Both the full-size server screen and
//! the client's scaled view are written out as PPM images so the
//! anti-aliased downscale can be inspected.
//!
//! Run with: `cargo run --release --example pda_scaling`

use std::io::Write;

use thinc::baselines::RemoteDisplay;
use thinc::bench::thinc_system::ThincSystem;
use thinc::bench::webbench::run_web;
use thinc::net::link::NetworkConfig;
use thinc::net::trace::Direction;
use thinc::raster::Framebuffer;
use thinc::workloads::web::WebWorkload;

const W: u32 = 1024;
const H: u32 = 768;
const PDA_W: u32 = 320;
const PDA_H: u32 = 240;
const PAGES: usize = 4;

fn write_ppm(path: &str, fb: &Framebuffer) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "P6\n{} {}\n255", fb.width(), fb.height())?;
    // The framebuffer is RGB888 row-major: exactly PPM's body.
    f.write_all(fb.data())?;
    Ok(())
}

fn main() -> std::io::Result<()> {
    let net = NetworkConfig::pda_802_11g();
    let wl = WebWorkload::standard();

    println!("rendering {PAGES} pages at {W}x{H}, viewport {PDA_W}x{PDA_H} (802.11g PDA)...");
    let mut full = ThincSystem::new(&net, W, H);
    let full_res = run_web(&mut full, &wl, PAGES);
    let mut pda = ThincSystem::with_viewport(&net, W, H, PDA_W, PDA_H);
    let pda_res = run_web(&mut pda, &wl, PAGES);

    let full_down = full.trace().bytes(Direction::Down);
    let pda_down = pda.trace().bytes(Direction::Down);
    println!("\nfull viewport : {:>8.1} KB/page, latency {:.3}s",
        full_res.avg_page_kb, full_res.avg_latency_s);
    println!("PDA viewport  : {:>8.1} KB/page, latency {:.3}s",
        pda_res.avg_page_kb, pda_res.avg_latency_s);
    println!("server-side scaling cut downlink bytes by {:.1}x ({} -> {})",
        full_down as f64 / pda_down.max(1) as f64, full_down, pda_down);

    write_ppm("target/pda_server_screen.ppm", pda.server_screen())?;
    write_ppm("target/pda_client_view.ppm", pda.client().client().framebuffer())?;
    println!("\nwrote target/pda_server_screen.ppm ({W}x{H}) and");
    println!("      target/pda_client_view.ppm  ({PDA_W}x{PDA_H}, Fant anti-aliased)");
    Ok(())
}
